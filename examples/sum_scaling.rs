//! Section 5 of the paper: how the fork-based sum scales when the data
//! size doubles — the closed-form analytic model against the many-core
//! simulator.
//!
//! Run with `cargo run --release --example sum_scaling [max_n]`.

use parsecs::core::{analytic, ManyCoreSim, SimConfig};
use parsecs::workloads::sum;

fn main() {
    let max_n: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5);
    println!(
        "{:>3} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "n", "elements", "instructions", "fetch (sim)", "retire (sim)", "fetch IPC"
    );
    for n in 0..=max_n {
        let model = analytic::sum_model(n);
        let data = sum::dataset(n, 1);
        let program = sum::fork_program(&data);
        let sim = ManyCoreSim::new(SimConfig::with_cores(128));
        let result = sim.run(&program).expect("simulates");
        assert_eq!(result.outputs, sum::expected(&data));
        println!(
            "{:>3} {:>9} {:>12} {:>12} {:>12} {:>12.1}",
            n,
            model.elements,
            result.stats.instructions,
            result.stats.fetch_cycles,
            result.stats.total_cycles,
            result.stats.fetch_ipc
        );
    }
    println!("\nanalytic model for comparison (paper §5): fetch = 30 + 12n, retire = 43 + 15n");
}
