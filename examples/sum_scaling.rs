//! Section 5 of the paper: how the fork-based sum scales when the data
//! size doubles — the closed-form analytic model against the many-core
//! simulator, swept concurrently over the dataset axis.
//!
//! Run with `cargo run --release --example sum_scaling [max_n]`.

use parsecs::core::analytic;
use parsecs::driver::Sweep;
use parsecs::workloads::sum;

fn main() {
    let max_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    // One labelled program per dataset doubling — a dataset-size grid fanned
    // over one backend configuration.
    let mut sweep = Sweep::new().manycore_cores(&[128]);
    for n in 0..=max_n {
        sweep = sweep.program(format!("n={n}"), sum::fork_program(&sum::dataset(n, 1)));
    }
    let points = sweep.run();

    println!(
        "{:>3} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "n", "elements", "instructions", "fetch (sim)", "retire (sim)", "fetch IPC"
    );
    for (n, point) in points.iter().enumerate() {
        let model = analytic::sum_model(n as u32);
        let report = point.report().expect("simulates");
        assert_eq!(report.outputs, sum::expected(&sum::dataset(n as u32, 1)));
        println!(
            "{:>3} {:>9} {:>12} {:>12} {:>12} {:>12.1}",
            n,
            model.elements,
            report.instructions,
            report.fetch_cycles(),
            report.cycles,
            report.fetch_ipc
        );
    }
    println!("\nanalytic model for comparison (paper §5): fetch = 30 + 12n, retire = 43 + 15n");
}
