//! Quickstart: one program, all three engines, one uniform report each.
//!
//! Runs the paper's Figure 2 program (the recursive vector sum) through
//! the sequential reference machine, the ILP limit analyzer and the
//! many-core sectioned simulator via the unified `Runner`, printing one
//! `RunReport` line per backend — then shows the Figure 5 fork rewrite
//! beating sequential fetch on the same chip.
//!
//! Run with `cargo run --release --example quickstart`.

use parsecs::driver::{IlpBackend, ManyCoreBackend, Runner, SequentialBackend};
use parsecs::workloads::sum;

fn main() {
    let data = [4u64, 2, 6, 4, 5];

    println!("== Figure 2 sum (call version) on all three backends ==");
    let call = sum::call_program(&data);
    let reports = Runner::new(&call)
        .fuel(100_000)
        .on(SequentialBackend)
        .on(IlpBackend::parallel_ideal())
        .on(ManyCoreBackend::with_cores(8))
        .run_all()
        .expect("all three engines run");
    for report in &reports {
        println!("{report}");
    }

    println!("\n== Figure 5 sum (fork version) on the many-core chip ==");
    let fork = sum::fork_program(&data);
    let report = Runner::new(&fork)
        .fuel(100_000)
        .on(ManyCoreBackend::with_cores(8))
        .run()
        .expect("simulates");
    println!("{report}");
    assert!(report.fetch_ipc > 1.0, "forked sections fetch in parallel");
}
