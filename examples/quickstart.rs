//! Quickstart: the paper's running example end to end.
//!
//! Assembles the Figure 2 (call) and Figure 5 (fork) versions of the
//! recursive vector sum, runs the call version sequentially, splits the
//! fork version into sections, and simulates it on a many-core chip.
//!
//! Run with `cargo run --release --example quickstart`.

use parsecs::asm::listing_numbered;
use parsecs::core::{ManyCoreSim, SectionedTrace, SimConfig};
use parsecs::machine::Machine;
use parsecs::workloads::sum;

fn main() {
    let data = [4u64, 2, 6, 4, 5];

    // --- Figure 2: the call version, run sequentially --------------------
    let call = sum::call_program(&data);
    println!("== Figure 2: sum, call version ==");
    println!("{}", listing_numbered(&call));
    let mut machine = Machine::load(&call).expect("program loads");
    let outcome = machine.run(100_000).expect("program halts");
    println!(
        "sequential run: {} instructions, result {:?}\n",
        outcome.instructions, outcome.outputs
    );

    // --- Figure 5 / Figure 6: the fork version, split into sections ------
    let fork = sum::fork_program(&data);
    println!("== Figure 5: sum, fork version ==");
    println!("{}", listing_numbered(&fork));
    let sectioned = SectionedTrace::from_program(&fork, 100_000).expect("program runs");
    println!(
        "parallel run: {} instructions in {} sections (sizes {:?})\n",
        sectioned.len(),
        sectioned.sections().len(),
        sectioned.section_sizes()
    );

    // --- Figure 10: simulate the distributed execution -------------------
    let sim = ManyCoreSim::new(SimConfig::with_cores(8));
    let result = sim.run(&fork).expect("simulation succeeds");
    println!("== Many-core simulation ==");
    println!("result            : {:?}", result.outputs);
    println!("last fetch cycle  : {}", result.stats.fetch_cycles);
    println!("last retire cycle : {}", result.stats.total_cycles);
    println!("fetch IPC         : {:.2}", result.stats.fetch_ipc);
    println!("retire IPC        : {:.2}", result.stats.retire_ipc);
}
