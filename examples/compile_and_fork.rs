//! The whole pipeline the paper envisions: take an unchanged (mini-)C
//! program, compile it once with a conventional `call`/`ret` backend and
//! once with the paper's fork transformation, check both compute the same
//! result, and show how the fork version spreads over the cores of the
//! simulated many-core chip.
//!
//! Run with `cargo run --release --example compile_and_fork [elements]`.

use parsecs::cc::{compile, Backend, CompileOptions};
use parsecs::driver::{ManyCoreBackend, Runner, SequentialBackend};

const SOURCE: &str = "
fn sum(t, n) {
    if (n == 1) { return t[0]; } else { }
    if (n == 2) { return t[0] + t[1]; } else { }
    var half = n >> 1;
    return sum(t, half) + sum(t + 8 * half, n - half);
}
fn main() { out(sum(values, n_elements[0])); }
";

fn main() {
    let elements: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let data: Vec<u64> = (1..=elements as u64).collect();
    let expected: u64 = data.iter().sum();

    let options = |backend| {
        CompileOptions::new(backend)
            .with_data("values", data.clone())
            .with_data("n_elements", vec![elements as u64])
    };

    // Conventional compilation and sequential execution.
    let call_program = compile(SOURCE, &options(Backend::Calls)).expect("compiles");
    let sequential = Runner::new(&call_program)
        .fuel(100_000_000)
        .on(SequentialBackend)
        .run()
        .expect("halts");
    println!(
        "call backend : {} dynamic instructions, result {:?}",
        sequential.instructions, sequential.outputs
    );
    assert_eq!(sequential.outputs, vec![expected]);

    // The paper's rewrite: calls become forks, returns become endforks.
    let fork_program = compile(SOURCE, &options(Backend::Forks)).expect("compiles");
    let report = Runner::new(&fork_program)
        .fuel(100_000_000)
        .on(ManyCoreBackend::with_cores(64))
        .run()
        .expect("simulates");
    assert_eq!(report.outputs, vec![expected]);
    let stats = &report.sim().expect("many-core detail").stats;
    println!(
        "fork backend : {} dynamic instructions in {} sections on {} cores",
        report.instructions, stats.sections, stats.cores_used
    );
    println!(
        "               fetch IPC {:.1}, retire IPC {:.1} (a single core fetches at most 1 IPC)",
        report.fetch_ipc, report.retire_ipc
    );
    println!(
        "               remote renaming requests: {} register, {} memory; {} loader accesses",
        stats.remote_register_requests, stats.remote_memory_requests, stats.dmh_accesses
    );
}
