//! The whole pipeline the paper envisions: take an unchanged (mini-)C
//! program, compile it once with a conventional `call`/`ret` backend and
//! once with the paper's fork transformation, check both compute the same
//! result, and show how the fork version spreads over the cores of the
//! simulated many-core chip.
//!
//! Run with `cargo run --release --example compile_and_fork [elements]`.

use parsecs::cc::{compile, Backend, CompileOptions};
use parsecs::core::{ManyCoreSim, SimConfig};
use parsecs::machine::Machine;

const SOURCE: &str = "
fn sum(t, n) {
    if (n == 1) { return t[0]; } else { }
    if (n == 2) { return t[0] + t[1]; } else { }
    var half = n >> 1;
    return sum(t, half) + sum(t + 8 * half, n - half);
}
fn main() { out(sum(values, n_elements[0])); }
";

fn main() {
    let elements: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let data: Vec<u64> = (1..=elements as u64).collect();
    let expected: u64 = data.iter().sum();

    let options = |backend| {
        CompileOptions::new(backend)
            .with_data("values", data.clone())
            .with_data("n_elements", vec![elements as u64])
    };

    // Conventional compilation and sequential execution.
    let call_program = compile(SOURCE, &options(Backend::Calls)).expect("compiles");
    let mut machine = Machine::load(&call_program).expect("loads");
    let sequential = machine.run(100_000_000).expect("halts");
    println!(
        "call backend : {} dynamic instructions, result {:?}",
        sequential.instructions, sequential.outputs
    );
    assert_eq!(sequential.outputs, vec![expected]);

    // The paper's rewrite: calls become forks, returns become endforks.
    let fork_program = compile(SOURCE, &options(Backend::Forks)).expect("compiles");
    let sim = ManyCoreSim::new(SimConfig::with_cores(64));
    let result = sim.run(&fork_program).expect("simulates");
    assert_eq!(result.outputs, vec![expected]);
    println!(
        "fork backend : {} dynamic instructions in {} sections on {} cores",
        result.stats.instructions, result.stats.sections, result.stats.cores_used
    );
    println!(
        "               fetch IPC {:.1}, retire IPC {:.1} (a single core fetches at most 1 IPC)",
        result.stats.fetch_ipc, result.stats.retire_ipc
    );
    println!(
        "               remote renaming requests: {} register, {} memory; {} loader accesses",
        result.stats.remote_register_requests,
        result.stats.remote_memory_requests,
        result.stats.dmh_accesses
    );
}
