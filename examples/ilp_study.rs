//! The Figure 7 methodology on one benchmark: trace a PBBS-analog workload
//! on the reference machine and measure its ILP under the paper's
//! sequential-oracle and parallel-ideal dependence models, plus the
//! dependence-distance distribution that motivates multiple instruction
//! pointers.
//!
//! Run with `cargo run --release --example ilp_study [size]`.

use parsecs::cc::Backend;
use parsecs::ilp::{analyze, dependence_distances, IlpModel};
use parsecs::machine::Machine;
use parsecs::workloads::pbbs::Benchmark;

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(96);
    let benchmark = Benchmark::ComparisonSort;
    println!("benchmark: {} (n = {size})", benchmark.name());

    let program = benchmark.program(size, 1, Backend::Calls).expect("compiles");
    let mut machine = Machine::load(&program).expect("loads");
    let (outcome, trace) = machine.run_traced(1_000_000_000).expect("halts");
    assert_eq!(outcome.outputs, benchmark.expected(size, 1), "oracle check");
    println!("dynamic instructions: {}", trace.len());

    for (name, model) in [
        ("in-order (every dependence kept)", IlpModel::in_order()),
        ("speculative core (2K window, 64-wide)", IlpModel::speculative_core()),
        ("sequential oracle (paper's seq bars)", IlpModel::sequential_oracle()),
        ("parallel ideal (paper's numbered bars)", IlpModel::parallel_ideal()),
    ] {
        let result = analyze(&trace, &model);
        println!(
            "{name:<40} cycles {:>8}  ILP {:>8.2}  peak/cycle {:>6}",
            result.cycles, result.ilp, result.peak_parallelism
        );
    }

    let distances = dependence_distances(&trace, true);
    println!(
        "\ntrue dependences: {} (max distance {} instructions, {:.1}% at distance >= 64)",
        distances.total(),
        distances.max_distance(),
        100.0 * distances.fraction_at_least(64)
    );
}
