//! The Figure 7 methodology on one benchmark: run a PBBS-analog workload
//! through one `IlpBackend` per dependence model of the paper, plus the
//! dependence-distance distribution that motivates multiple instruction
//! pointers.
//!
//! Run with `cargo run --release --example ilp_study [size]`.

use parsecs::cc::Backend;
use parsecs::driver::{IlpBackend, Runner, SequentialBackend};
use parsecs::ilp::{dependence_distances, IlpModel};
use parsecs::workloads::pbbs::Benchmark;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);
    let benchmark = Benchmark::ComparisonSort;
    println!("benchmark: {} (n = {size})", benchmark.name());

    let program = benchmark
        .program(size, 1, Backend::Calls)
        .expect("compiles");
    let reports = Runner::new(&program)
        .fuel(1_000_000_000)
        .on(SequentialBackend)
        .on(IlpBackend::new("in-order", IlpModel::in_order()))
        .on(IlpBackend::new(
            "speculative-2K-64w",
            IlpModel::speculative_core(),
        ))
        .on(IlpBackend::sequential_oracle())
        .on(IlpBackend::parallel_ideal())
        .run_all()
        .expect("halts");
    assert_eq!(
        reports[0].outputs,
        benchmark.expected(size, 1),
        "oracle check"
    );
    println!("dynamic instructions: {}", reports[0].instructions);

    for report in &reports[1..] {
        println!(
            "{:<40} cycles {:>8}  ILP {:>8.2}  peak/cycle {:>6}",
            report.backend,
            report.cycles,
            report.fetch_ipc,
            report.ilp().expect("ilp backend").peak_parallelism
        );
    }

    let trace = reports[0]
        .trace()
        .expect("sequential backend records a trace");
    let distances = dependence_distances(trace, true);
    println!(
        "\ntrue dependences: {} (max distance {} instructions, {:.1}% at distance >= 64)",
        distances.total(),
        distances.max_distance(),
        100.0 * distances.fraction_at_least(64)
    );
}
