//! Differential tests of the streaming trace pipeline.
//!
//! The streaming sectioner (`parsecs::trace::StreamingSectioner`, fed by
//! `Machine::run_with_sink`) must produce **record-for-record** the same
//! sectioned, dependence-annotated trace as the retained two-pass
//! sequential analysis (`SectionedTrace::from_trace` over a materialised
//! `Trace`) — same sections, same provenance for every source, same
//! written locations, same outputs. A proptest drives random fork
//! programs (random arithmetic, scratch-array memory traffic, forward
//! conditional jumps, nested forks) through both front-ends and asserts
//! full equality in both representations.
//!
//! A second set of tests takes the pipeline to chip scale: at 256 cores
//! the event-driven and cycle-stepping engines must agree bit-for-bit on
//! arena-backed runs, and the driver's backends must agree with the
//! sequential machine on what the program computes.

use parsecs::core::{ManyCoreSim, SectionedTrace, SimConfig, TraceArena};
use parsecs::driver::{ManyCoreBackend, Runner, SequentialBackend};
use parsecs::machine::Machine;
use parsecs::workloads::data::{self, Rng};
use parsecs::workloads::scale;
use proptest::prelude::*;

/// Expands one proptest-drawn seed into a whole random program, over the
/// workspace's shared deterministic generator ([`data::rng`]).
struct Gen {
    rng: Rng,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: data::rng(seed),
        }
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound.max(1))
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len() as u64) as usize]
    }
}

/// Emits one straight-line operation. The generated programs only jump
/// forward, never touch `%rdi` (the data pointer) and address memory
/// through the data or scratch arrays, so every program halts.
fn push_op(out: &mut String, gen: &mut Gen) {
    let reg = ["%rax", "%rbx", "%rcx", "%rsi"];
    match gen.below(8) {
        0 => {
            let k = gen.below(100);
            let r = gen.pick(&reg);
            out.push_str(&format!("        movq ${k}, {r}\n"));
        }
        1 => {
            let k = gen.below(50);
            let r = gen.pick(&reg);
            out.push_str(&format!("        addq ${k}, {r}\n"));
        }
        2 => {
            let a = gen.pick(&reg);
            let b = gen.pick(&reg);
            out.push_str(&format!("        imulq {a}, {b}\n"));
        }
        3 => {
            let off = gen.below(3) * 8;
            let r = gen.pick(&reg);
            out.push_str(&format!("        movq {off}(%rdi), {r}\n"));
        }
        4 => {
            // Store into the scratch array: cross-section memory renaming.
            let off = gen.below(4) * 8;
            let r = gen.pick(&["%rax", "%rbx", "%rsi"]);
            out.push_str("        movq $scratch, %rcx\n");
            out.push_str(&format!("        movq {r}, {off}(%rcx)\n"));
        }
        5 => {
            // Load back from the scratch array.
            let off = gen.below(4) * 8;
            let r = gen.pick(&["%rax", "%rbx", "%rsi"]);
            out.push_str("        movq $scratch, %rcx\n");
            out.push_str(&format!("        movq {off}(%rcx), {r}\n"));
        }
        6 => {
            out.push_str("        pushq %rax\n        popq %rbx\n");
        }
        _ => {
            let r = gen.pick(&["%rbx", "%rsi"]);
            out.push_str(&format!("        shrq {r}\n"));
        }
    }
}

/// One random task body: blocks of ops, forward conditional jumps over
/// random suffixes of a block, and 0–2 forks of the next-deeper task.
fn push_task(out: &mut String, gen: &mut Gen, task: usize, depth: usize) {
    out.push_str(&format!("task{task}:\n"));
    let blocks = 1 + gen.below(3);
    let mut label = 0usize;
    let mut forks_left = if task + 1 < depth {
        1 + gen.below(2)
    } else {
        0
    };
    for block in 0..blocks {
        let ops = 1 + gen.below(4);
        for _ in 0..ops {
            push_op(out, gen);
        }
        if gen.below(2) == 0 {
            let cond = gen.pick(&["jne", "je", "ja", "jbe", "jge", "jl"]);
            let r = gen.pick(&["%rax", "%rbx", "%rsi"]);
            let k = gen.below(64);
            out.push_str(&format!("        cmpq ${k}, {r}\n"));
            out.push_str(&format!("        {cond} .t{task}_{label}\n"));
            for _ in 0..1 + gen.below(2) {
                push_op(out, gen);
            }
            out.push_str(&format!(".t{task}_{label}:\n"));
            label += 1;
        }
        if forks_left > 0 && (gen.below(2) == 0 || block + 1 == blocks) {
            out.push_str(&format!("        fork task{}\n", task + 1));
            forks_left -= 1;
        }
    }
    out.push_str("        endfork\n");
}

fn random_program(seed: u64) -> parsecs::isa::Program {
    let mut gen = Gen::new(seed);
    let len = 4 + gen.below(8);
    let data: Vec<String> = (0..len).map(|_| gen.below(1000).to_string()).collect();
    let depth = 1 + gen.below(3) as usize;
    let mut src = format!(
        "t:      .quad {}\nscratch: .quad 0, 0, 0, 0\nmain:   movq $t, %rdi\n        movq ${len}, %rsi\n        fork task0\n        out  %rax\n        halt\n",
        data.join(", ")
    );
    for task in 0..depth {
        push_task(&mut src, &mut gen, task, depth);
    }
    parsecs::asm::assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"))
}

proptest! {
    /// The tentpole contract of the pipeline: streaming sectioning is
    /// indistinguishable, record for record, from materialising the
    /// trace and post-processing it.
    #[test]
    fn streaming_sectioner_matches_the_sequential_analysis(seed in proptest::strategy::any::<u64>()) {
        let program = random_program(seed);
        let fuel = 1_000_000;

        // Two-pass: materialise the full event vector, then section it.
        let mut machine = Machine::load(&program).expect("loads");
        let (outcome, trace) = machine.run_traced(fuel).expect("halts");
        let legacy = SectionedTrace::from_trace(&trace, outcome.outputs);

        // Streaming: the machine pushes into the sectioner, no trace.
        let arena = TraceArena::from_program(&program, fuel).expect("halts");

        // Record-for-record equality in the record representation
        // (locations, provenance, writes, flags, sections, outputs)...
        prop_assert_eq!(&SectionedTrace::from_arena(&arena), &legacy, "seed {}", seed);
        // ...and column-for-column equality in the arena representation.
        prop_assert_eq!(&legacy.to_arena(), &arena, "seed {}", seed);
    }
}

proptest! {
    /// Arena-backed simulation equals record-backed simulation: the
    /// compatibility shim (`simulate(&SectionedTrace)`) and the direct
    /// arena path must produce the same `SimResult`, both engines must
    /// stay bit-identical on the arena path, a stats-only run must
    /// reproduce the recorded aggregates exactly, and the lean
    /// (write-free) arena must simulate identically to the full one. The
    /// `threads ∈ {1, 4}` axis rides along: the cluster-sharded parallel
    /// engine must reproduce the sequential run bit-for-bit, full and
    /// stats-only alike.
    #[test]
    fn arena_and_record_backed_simulation_agree(seed in proptest::strategy::any::<u64>()) {
        let program = random_program(seed.rotate_left(11));
        let arena = TraceArena::from_program(&program, 1_000_000).expect("halts");
        let legacy = SectionedTrace::from_arena(&arena);
        let mut gen = Gen::new(seed);
        let cores = [1usize, 3, 8, 64][gen.below(4) as usize];
        let sim = ManyCoreSim::new(SimConfig::with_cores(cores));
        let via_arena = sim.simulate_arena(&arena).expect("simulates");
        let via_records = sim.simulate(&legacy).expect("simulates");
        prop_assert_eq!(&via_arena, &via_records, "seed {} at {} cores", seed, cores);
        let reference = sim.simulate_arena_reference(&arena).expect("simulates");
        prop_assert_eq!(&via_arena, &reference, "seed {} at {} cores", seed, cores);

        // The stats axis: streaming aggregates == post-hoc aggregates.
        let stats_sim = ManyCoreSim::new(SimConfig::with_cores(cores).stats_only());
        let stats = stats_sim.simulate_arena(&arena).expect("simulates");
        prop_assert_eq!(&stats.stats, &via_arena.stats, "seed {} at {} cores", seed, cores);
        prop_assert!(stats.timings.is_empty(), "seed {}", seed);
        prop_assert_eq!(
            &stats,
            &stats_sim.simulate_arena_reference(&arena).expect("simulates"),
            "seed {} at {} cores: engines diverge stats-only",
            seed,
            cores
        );
        prop_assert_eq!(stats.stats.forced_stall_releases, 0, "seed {}", seed);

        // The threads axis: the cluster-sharded engine (threads = 4) must
        // reproduce the sequential arena run — already pinned to the
        // cycle-stepping reference above — bit-for-bit, and its
        // stats-only aggregates must match the recorded ones exactly.
        let par = ManyCoreSim::new(SimConfig::with_cores(cores).with_threads(4));
        let via_threads = par.simulate_arena(&arena).expect("threaded engine simulates");
        prop_assert_eq!(
            &via_threads,
            &via_arena,
            "seed {} at {} cores: threaded run diverges",
            seed,
            cores
        );
        let stats_par =
            ManyCoreSim::new(SimConfig::with_cores(cores).stats_only().with_threads(4));
        let stats_threads = stats_par
            .simulate_arena(&arena)
            .expect("threaded stats-only simulates");
        prop_assert_eq!(
            &stats_threads,
            &stats,
            "seed {} at {} cores: threaded stats-only run diverges",
            seed,
            cores
        );

        // The lean arena drops only the written-locations columns, which
        // the simulators never read: identical result modulo the smaller
        // reported arena footprint — and, on validated runs, modulo the
        // attached check report (the writer-discipline replay needs the
        // write columns, so a lean arena's report legitimately skips it).
        let lean = TraceArena::from_program_lean(&program, 1_000_000).expect("halts");
        let mut via_lean = sim.simulate_arena(&lean).expect("simulates");
        prop_assert!(
            via_lean.stats.trace_arena_bytes <= via_arena.stats.trace_arena_bytes,
            "seed {}: lean arena is not leaner",
            seed
        );
        via_lean.stats.trace_arena_bytes = via_arena.stats.trace_arena_bytes;
        via_lean.check.clone_from(&via_arena.check);
        prop_assert_eq!(&via_lean, &via_arena, "seed {} at {} cores: lean diverges", seed, cores);
    }
}

#[test]
fn generated_programs_exercise_forks_and_memory() {
    let mut sections = 0usize;
    let mut deps = 0usize;
    for seed in 0..32u64 {
        let arena =
            TraceArena::from_program(&random_program(seed * 6151 + 3), 1_000_000).expect("halts");
        sections += arena.sections().len();
        deps += (0..arena.len())
            .map(|i| arena.sources(i).len())
            .sum::<usize>();
    }
    assert!(sections >= 64, "only {sections} sections over 32 programs");
    assert!(deps > 1_000, "only {deps} dependences over 32 programs");
}

/// The scale satellite: at 256 cores the two engines stay bit-identical
/// on an arena-backed synthetic-histogram run, the outputs match the
/// Rust oracle, and the deadlock detector stays silent.
#[test]
fn engines_agree_bit_for_bit_at_256_cores() {
    let (keys, buckets, seed) = (12_000, 256, 11);
    let arena = TraceArena::from_program(
        &scale::synth_histogram_program(keys, buckets, seed),
        scale::synth_histogram_fuel(keys, buckets),
    )
    .expect("halts");
    assert!(
        arena.len() > 150_000,
        "scale cell too small: {}",
        arena.len()
    );
    let sim = ManyCoreSim::new(SimConfig::with_cores(256));
    let event = sim.simulate_arena(&arena).expect("simulates");
    let reference = sim.simulate_arena_reference(&arena).expect("simulates");
    assert_eq!(event, reference, "engines diverge at 256 cores");
    assert_eq!(
        event.outputs,
        scale::synth_histogram_expected(keys, buckets, seed)
    );
    assert_eq!(event.stats.forced_stall_releases, 0);
    assert!(
        event.stats.cores_used > 64,
        "a 256-core run must spread past 64 cores"
    );
}

/// Backend agreement at 256 cores through the driver: the many-core
/// backend computes what the sequential machine computes, and the
/// arena's memory accounting rides along on the report.
#[test]
fn driver_backends_agree_at_256_cores() {
    let (chains, links, seed) = (256, 12, 5);
    let program = scale::fan_chain_program(chains, links, seed);
    let reports = Runner::new(&program)
        .fuel(scale::fan_chain_fuel(chains, links))
        .on(SequentialBackend)
        .on(ManyCoreBackend::with_cores(256))
        .run_all()
        .expect("both backends run");
    assert_eq!(
        reports[0].outputs,
        scale::fan_chain_expected(chains, links, seed)
    );
    assert_eq!(reports[0].outputs, reports[1].outputs);
    assert_eq!(reports[1].forced_stall_releases(), Some(0));
    let per_insn = reports[1]
        .trace_bytes_per_instruction()
        .expect("arena accounting");
    assert!(
        per_insn > 0.0 && per_insn <= 120.0,
        "{per_insn:.1} B/insn exceeds the arena budget"
    );
    // 256 chains genuinely occupy a 256-core chip.
    assert!(reports[1].sim().unwrap().stats.cores_used > 128);
}
