//! Integration tests for the Figure 7 reproduction: the qualitative claims
//! of §3 must hold on the PBBS-analog workloads.

use parsecs::cc::Backend;
use parsecs::driver::{IlpBackend, Runner};
use parsecs::workloads::pbbs::{Benchmark, Catalog};

fn ilp_pair(benchmark: Benchmark, size: usize) -> (f64, f64, u64) {
    let program = benchmark.program(size, 1, Backend::Calls).unwrap();
    let reports = Runner::new(&program)
        .fuel(1_000_000_000)
        .on(IlpBackend::parallel_ideal())
        .on(IlpBackend::sequential_oracle())
        .run_all()
        .unwrap();
    assert_eq!(reports[0].outputs, benchmark.expected(size, 1));
    let parallel = reports[0].ilp().expect("ilp detail");
    let sequential = reports[1].ilp().expect("ilp detail");
    (parallel.ilp, sequential.ilp, parallel.instructions)
}

#[test]
fn table1_catalog_is_complete() {
    let table = Catalog::table1();
    assert_eq!(table.len(), 10);
    let names: Vec<&str> = table.iter().map(|b| b.name()).collect();
    assert!(names.contains(&"breadthFirstSearch/ndBFS"));
    assert!(names.contains(&"minSpanningTree/parallelKruskal"));
}

#[test]
fn parallel_model_ilp_dwarfs_the_sequential_oracle_on_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let (parallel, sequential, instructions) = ilp_pair(benchmark, 40);
        assert!(
            instructions > 1_000,
            "{}: trace too small",
            benchmark.name()
        );
        assert!(
            parallel >= 3.0 * sequential,
            "{}: parallel ILP {parallel:.1} should dwarf sequential {sequential:.1}",
            benchmark.name()
        );
        // The paper's sequential-oracle ILP sits between 3.2 and 5.6; our
        // smaller kernels land in a similar single-digit band.
        assert!(
            (1.0..16.0).contains(&sequential),
            "{}: sequential {sequential}",
            benchmark.name()
        );
    }
}

#[test]
fn data_parallel_benchmarks_gain_ilp_with_the_dataset() {
    // The paper observes the parallel-run ILP growing with the dataset for
    // the data-parallel benchmarks. Our kernels are written with sequential
    // loops, so the effect is milder; require growth for the most clearly
    // data-parallel analogue (nearest neighbours) and non-collapse for the
    // others.
    let (small, _, _) = ilp_pair(Benchmark::NearestNeighbors, 24);
    let (large, _, _) = ilp_pair(Benchmark::NearestNeighbors, 96);
    assert!(
        large > 1.5 * small,
        "nearest neighbours: {small:.1} -> {large:.1}"
    );

    for benchmark in [Benchmark::Bfs, Benchmark::Mis, Benchmark::RemoveDuplicates] {
        let (small, _, _) = ilp_pair(benchmark, 24);
        let (large, _, _) = ilp_pair(benchmark, 96);
        assert!(
            large > 0.8 * small,
            "{}: parallel ILP should not collapse with size ({small:.1} -> {large:.1})",
            benchmark.name()
        );
    }
}
