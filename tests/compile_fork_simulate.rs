//! End-to-end pipeline tests: mini-C source → compiler → (call | fork)
//! backends → reference machine / many-core simulator, checked against the
//! Rust oracles.

use parsecs::cc::Backend;
use parsecs::core::{verify_single_assignment, SectionedTrace};
use parsecs::driver::{ManyCoreBackend, Runner, SequentialBackend};
use parsecs::workloads::pbbs::Benchmark;

#[test]
fn fork_compiled_benchmarks_simulate_to_the_oracle_result() {
    // The recursive benchmarks are where the fork transformation actually
    // creates sections; run them through the full many-core model.
    for benchmark in [Benchmark::ComparisonSort, Benchmark::Mst] {
        let program = benchmark.program(24, 5, Backend::Forks).unwrap();
        let report = Runner::new(&program)
            .on(ManyCoreBackend::with_cores(32))
            .run()
            .unwrap();
        assert_eq!(
            report.outputs,
            benchmark.expected(24, 5),
            "{}",
            benchmark.name()
        );
        let stats = &report.sim().unwrap().stats;
        assert!(
            stats.sections > 4,
            "{} should fork sections",
            benchmark.name()
        );
        assert!(stats.cores_used > 1);
    }
}

#[test]
fn loop_based_benchmarks_also_run_on_the_many_core_model() {
    // Loop-only kernels stay a single section: the simulator must still
    // produce the right answer and an at-most-1 fetch IPC.
    let benchmark = Benchmark::Matching;
    let program = benchmark.program(32, 2, Backend::Forks).unwrap();
    let report = Runner::new(&program)
        .on(ManyCoreBackend::with_cores(8))
        .run()
        .unwrap();
    assert_eq!(report.outputs, benchmark.expected(32, 2));
    assert_eq!(report.sim().unwrap().stats.sections, 1);
    assert!(report.fetch_ipc <= 1.0);
}

#[test]
fn call_and_fork_backends_agree_for_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let call = benchmark.program(20, 9, Backend::Calls).unwrap();
        let fork = benchmark.program(20, 9, Backend::Forks).unwrap();
        let a = Runner::new(&call)
            .fuel(500_000_000)
            .on(SequentialBackend)
            .run()
            .unwrap();
        let b = Runner::new(&fork)
            .fuel(500_000_000)
            .on(SequentialBackend)
            .run()
            .unwrap();
        assert_eq!(
            a.outputs,
            b.outputs,
            "{} backends disagree",
            benchmark.name()
        );
        assert_eq!(
            a.outputs,
            benchmark.expected(20, 9),
            "{} oracle disagrees",
            benchmark.name()
        );
    }
}

#[test]
fn renaming_is_single_assignment_for_fork_compiled_programs() {
    let program = Benchmark::ComparisonSort
        .program(20, 1, Backend::Forks)
        .unwrap();
    let trace = SectionedTrace::from_program(&program, 10_000_000).unwrap();
    let renamed = verify_single_assignment(&trace);
    assert!(renamed > 0);
}
