//! Property-based differential test of the two simulator engines.
//!
//! The event-driven scheduler ([`ManyCoreSim::simulate`]) and the retained
//! cycle-stepping reference ([`ManyCoreSim::simulate_reference`]) must
//! produce **bit-identical** [`parsecs::core::SimResult`]s — the same
//! per-instruction stage table, statistics and NoC counters — on every
//! program and every configuration. This test generates random small fork
//! programs (random arithmetic, memory traffic through a scratch array,
//! forward conditional jumps over random blocks, nested forks) and random
//! chip configurations (core count, placement policy, topology, NoC
//! timing, ejection bandwidth, section capacity, renaming-walk and DMH
//! charges, fetch-stall mode) and asserts full equality. Every
//! configuration is additionally exercised on the `threads ∈ {1, 4}`
//! axis: the cluster-sharded parallel engine must reproduce the
//! sequential run bit-for-bit, in recording and stats-only mode alike.

use parsecs::core::{ChainAffine, CountingProbe, LoadAware, ManyCoreSim, Placement, SimConfig};
use parsecs::noc::{NocConfig, Topology};
use proptest::prelude::*;

/// A tiny deterministic generator used to expand one proptest-drawn seed
/// into a whole random program (splitmix64).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len() as u64) as usize]
    }
}

/// Emits one straight-line operation. The generated programs only jump
/// forward, never touch `%rdi` (the data pointer) and address memory
/// through the data array or the scratch array, so every program halts.
fn push_op(out: &mut String, gen: &mut Gen) {
    let reg = ["%rax", "%rbx", "%rcx", "%rsi"];
    match gen.below(8) {
        0 => {
            let k = gen.below(100);
            let r = gen.pick(&reg);
            out.push_str(&format!("        movq ${k}, {r}\n"));
        }
        1 => {
            let k = gen.below(50);
            let r = gen.pick(&reg);
            out.push_str(&format!("        addq ${k}, {r}\n"));
        }
        2 => {
            let a = gen.pick(&reg);
            let b = gen.pick(&reg);
            out.push_str(&format!("        imulq {a}, {b}\n"));
        }
        3 => {
            let off = gen.below(3) * 8;
            let r = gen.pick(&reg);
            out.push_str(&format!("        movq {off}(%rdi), {r}\n"));
        }
        4 => {
            // Store into the scratch array: cross-section memory renaming.
            let off = gen.below(4) * 8;
            let r = gen.pick(&["%rax", "%rbx", "%rsi"]);
            out.push_str("        movq $scratch, %rcx\n");
            out.push_str(&format!("        movq {r}, {off}(%rcx)\n"));
        }
        5 => {
            // Load back from the scratch array.
            let off = gen.below(4) * 8;
            let r = gen.pick(&["%rax", "%rbx", "%rsi"]);
            out.push_str("        movq $scratch, %rcx\n");
            out.push_str(&format!("        movq {off}(%rcx), {r}\n"));
        }
        6 => {
            let a = gen.pick(&reg);
            let b = gen.pick(&reg);
            if a != b {
                out.push_str(&format!("        subq {a}, {b}\n"));
            } else {
                out.push_str("        addq $1, %rax\n");
            }
        }
        _ => {
            let r = gen.pick(&["%rbx", "%rsi"]);
            out.push_str(&format!("        shrq {r}\n"));
        }
    }
}

/// One random task body: blocks of ops, forward conditional jumps over
/// random suffixes of a block, and 0–2 forks of the next-deeper task.
fn push_task(out: &mut String, gen: &mut Gen, task: usize, depth: usize) {
    out.push_str(&format!("task{task}:\n"));
    let blocks = 1 + gen.below(3);
    let mut label = 0usize;
    let mut forks_left = if task + 1 < depth {
        1 + gen.below(2)
    } else {
        0
    };
    for block in 0..blocks {
        let ops = 1 + gen.below(4);
        for _ in 0..ops {
            push_op(out, gen);
        }
        // A forward conditional jump over the next couple of ops. The
        // comparison may read a value loaded from memory, exercising the
        // fetch stage's control-stall machinery.
        if gen.below(2) == 0 {
            let cond = gen.pick(&["jne", "je", "ja", "jbe", "jge", "jl"]);
            let r = gen.pick(&["%rax", "%rbx", "%rsi"]);
            let k = gen.below(64);
            out.push_str(&format!("        cmpq ${k}, {r}\n"));
            out.push_str(&format!("        {cond} .t{task}_{label}\n"));
            for _ in 0..1 + gen.below(2) {
                push_op(out, gen);
            }
            out.push_str(&format!(".t{task}_{label}:\n"));
            label += 1;
        }
        if forks_left > 0 && (gen.below(2) == 0 || block + 1 == blocks) {
            out.push_str(&format!("        fork task{}\n", task + 1));
            forks_left -= 1;
        }
    }
    out.push_str("        endfork\n");
}

fn random_program(seed: u64) -> parsecs::isa::Program {
    let mut gen = Gen::new(seed);
    let len = 4 + gen.below(8);
    let data: Vec<String> = (0..len).map(|_| gen.below(1000).to_string()).collect();
    let depth = 1 + gen.below(3) as usize;
    let mut src = format!(
        "t:      .quad {}\nscratch: .quad 0, 0, 0, 0\nmain:   movq $t, %rdi\n        movq ${len}, %rsi\n        fork task0\n        out  %rax\n        halt\n",
        data.join(", ")
    );
    for task in 0..depth {
        push_task(&mut src, &mut gen, task, depth);
    }
    parsecs::asm::assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"))
}

fn random_config(gen: &mut Gen) -> SimConfig {
    let cores = [1usize, 2, 3, 4, 6, 8, 16, 64][gen.below(8) as usize];
    let mut config = SimConfig::with_cores(cores);
    config = match gen.below(4) {
        0 => config.with_placement(Placement::RoundRobin),
        1 => config.with_placement(Placement::LeastLoaded),
        2 => config.with_placement(LoadAware),
        _ => config.with_placement(ChainAffine),
    };
    config.noc = NocConfig {
        base_latency: gen.below(4),
        per_hop_latency: gen.below(4),
        link_bandwidth: match gen.below(3) {
            0 => None,
            1 => Some(1),
            _ => Some(2),
        },
    };
    if cores == 4 && gen.below(2) == 0 {
        config.topology = Some(Topology::mesh(2, 2));
    }
    if cores == 16 && gen.below(2) == 0 {
        config.topology = Some(Topology::mesh(4, 4));
    }
    config.max_sections_per_core = [1usize, 2, 8][gen.below(3) as usize];
    config.dmh_latency = 1 + gen.below(7);
    config.per_section_hop = gen.below(3);
    config.fetch_stalls_on_unresolved_control = gen.below(4) != 0;
    config
}

proptest! {
    #[test]
    fn random_programs_times_random_chips_are_engine_invariant(seed in proptest::strategy::any::<u64>()) {
        let program = random_program(seed);
        let mut gen = Gen::new(seed.rotate_left(17) ^ 0xabcd);
        // Several configurations per generated program, each exercised on
        // the full `record_timings` axis: the recording run on both
        // engines, then the stats-only run on both engines, with the
        // streaming aggregates held bit-identical to the recorded ones.
        // Every run is validated: the static analysis must pass on every
        // generated trace, and both engines must retire at or above the
        // analyzer's configuration-independent critical path.
        for _ in 0..3 {
            let config = random_config(&mut gen).validated();
            let sim = ManyCoreSim::new(config);
            let event = sim.run(&program).expect("event-driven engine simulates");
            let reference = sim
                .run_reference(&program)
                .expect("reference engine simulates");
            prop_assert_eq!(
                &event,
                &reference,
                "seed {} under {:?}: engines diverge",
                seed,
                sim.config()
            );
            // The probe axis: an observing CountingProbe must not steer —
            // the probed run reproduces the unprobed one bit-for-bit on
            // both engines — and the per-core event streams are engine-
            // invariant, so the two probes count the same section, stall
            // and NoC events (ticks/walks/drain rounds differ by design:
            // the event engine skips quiet cycles).
            let mut counting = CountingProbe::default();
            let probed = sim
                .run_probed(&program, &mut counting)
                .expect("probed event engine simulates");
            prop_assert_eq!(
                &probed,
                &event,
                "seed {} under {:?}: the counting probe steered the event engine",
                seed,
                sim.config()
            );
            prop_assert!(counting.events() > 0, "seed {}: the probe observed nothing", seed);
            let arena = parsecs::core::TraceArena::from_program(&program, sim.config().fuel)
                .expect("generated programs halt");
            let mut ref_counting = CountingProbe::default();
            let probed_reference = sim
                .simulate_arena_reference_probed(&arena, &mut ref_counting)
                .expect("probed reference engine simulates");
            prop_assert_eq!(
                &probed_reference,
                &reference,
                "seed {} under {:?}: the counting probe steered the reference engine",
                seed,
                sim.config()
            );
            prop_assert_eq!(
                (counting.begins, counting.ends, counting.parks, counting.requeues,
                 counting.retires, counting.stalls, counting.noc_sends, counting.noc_delivers),
                (ref_counting.begins, ref_counting.ends, ref_counting.parks,
                 ref_counting.requeues, ref_counting.retires, ref_counting.stalls,
                 ref_counting.noc_sends, ref_counting.noc_delivers),
                "seed {} under {:?}: probe event streams diverge between engines",
                seed,
                sim.config()
            );
            // The always-on attribution table covers every configured core
            // and tiles the whole cycle budget additively.
            prop_assert_eq!(event.stats.attribution.len(), sim.config().cores);
            for (core, breakdown) in event.stats.attribution.iter().enumerate() {
                prop_assert_eq!(
                    breakdown.total(),
                    event.stats.total_cycles,
                    "seed {} under {:?}: core {}'s attribution buckets do not sum \
                     to total_cycles",
                    seed,
                    sim.config(),
                    core
                );
            }
            let report = event.check.as_ref().expect("validated run attaches a report");
            prop_assert!(report.is_clean(), "seed {}: {}", seed, report);
            prop_assert!(
                report.drain.is_certified(),
                "seed {}: drain not certified: {}",
                seed,
                report
            );
            let progress = report
                .progress
                .as_ref()
                .expect("validated runs attach a progress verdict");
            // One direction of the progress prover's contract, checked on
            // every cell of the random grid: a run the prover certified
            // must never wake the runtime deadlock detector. (The
            // converse — a quiet detector on a `PotentialCycle` cell —
            // is expected: the park model releases the slots the
            // hold-slot abstraction pessimistically keeps occupied.)
            if progress.is_proven() {
                prop_assert_eq!(
                    event.stats.forced_stall_releases,
                    0,
                    "seed {} under {:?}: statically proven cell deadlocked",
                    seed,
                    sim.config()
                );
            }
            prop_assert!(
                report.walk.is_certified(),
                "seed {}: trivial partition not walk-certified: {:?}",
                seed,
                report.walk
            );
            let bounds = report.bounds.as_ref().expect("clean arenas are bounded");
            prop_assert!(
                event.stats.total_cycles >= bounds.critical_path,
                "seed {} under {:?}: {} cycles undercut the static critical path {}",
                seed,
                sim.config(),
                event.stats.total_cycles,
                bounds.critical_path
            );
            // The schedule-bound sandwich, on every random cell: the
            // config-aware certified bound dominates the
            // config-independent critical path and never overshoots the
            // measured cycle count.
            let schedule = report
                .schedule
                .as_ref()
                .expect("validated runs attach schedule bounds");
            prop_assert!(
                schedule.lb >= bounds.critical_path,
                "seed {} under {:?}: schedule lb {} undercuts the critical path {}",
                seed,
                sim.config(),
                schedule.lb,
                bounds.critical_path
            );
            prop_assert!(
                event.stats.total_cycles >= schedule.lb,
                "seed {} under {:?}: {} cycles undercut the certified schedule bound {} \
                 ({} binding)",
                seed,
                sim.config(),
                event.stats.total_cycles,
                schedule.lb,
                schedule.binding
            );
            // Every stall has a modeled release event under the handoff
            // model, so the deadlock detector must never fire on a
            // well-formed trace, whatever the chip looks like.
            prop_assert_eq!(
                event.stats.forced_stall_releases,
                0,
                "seed {} under {:?}: detector fired",
                seed,
                sim.config()
            );
            let stats_sim = ManyCoreSim::new(sim.config().clone().stats_only());
            let stats = stats_sim.run(&program).expect("stats-only simulates");
            let stats_reference = stats_sim
                .run_reference(&program)
                .expect("stats-only reference simulates");
            prop_assert_eq!(
                &stats,
                &stats_reference,
                "seed {} under {:?}: engines diverge stats-only",
                seed,
                stats_sim.config()
            );
            prop_assert_eq!(
                &stats.stats,
                &event.stats,
                "seed {} under {:?}: stats-only aggregates diverge from full mode",
                seed,
                stats_sim.config()
            );
            prop_assert_eq!(&stats.outputs, &event.outputs, "seed {}", seed);
            prop_assert!(
                stats.timings.is_empty(),
                "seed {}: stats-only run materialised a stage table",
                seed
            );
            // The threads axis: the cluster-sharded engine (threads = 4,
            // certified drain fork armed) must stay bit-identical to the
            // single-cluster sequential walk (threads = 1), in both the
            // recording and the stats-only mode.
            let seq = ManyCoreSim::new(sim.config().clone().with_threads(1));
            let par = ManyCoreSim::new(sim.config().clone().with_threads(4));
            let par_result = par.run(&program).expect("threaded engine simulates");
            // Never silent: a threaded run either carries both static
            // certificates (drain and walk) or a typed fallback reason.
            let par_report = par_result
                .check
                .as_ref()
                .expect("threaded validated run attaches a report");
            prop_assert!(
                par_result.fork_fallback.is_some()
                    || (par_report.drain.is_certified() && par_report.walk.is_certified()),
                "seed {} under {:?}: threaded run is silent about its fork decision",
                seed,
                par.config()
            );
            // The lb sandwich holds on the threaded engine too (the
            // bounds are placement-, not thread-, dependent, so they
            // must be bit-identical to the sequential report's).
            let par_schedule = par_report
                .schedule
                .as_ref()
                .expect("threaded validated runs attach schedule bounds");
            prop_assert!(
                bounds.critical_path <= par_schedule.lb
                    && par_schedule.lb <= par_result.stats.total_cycles,
                "seed {} under {:?}: threaded lb sandwich broken ({} / {} / {})",
                seed,
                par.config(),
                bounds.critical_path,
                par_schedule.lb,
                par_result.stats.total_cycles
            );
            prop_assert_eq!(
                &par_result,
                &seq.run(&program).expect("sequential engine simulates"),
                "seed {} under {:?}: threaded run diverges",
                seed,
                par.config()
            );
            let stats_par =
                ManyCoreSim::new(sim.config().clone().stats_only().with_threads(4));
            prop_assert_eq!(
                &stats_par.run(&program).expect("threaded stats-only simulates"),
                &stats,
                "seed {} under {:?}: threaded stats-only run diverges",
                seed,
                stats_par.config()
            );
            // The probe axis crossed with the threads axis: probes only
            // fire at the sequential seams of the forked walk/drain, so a
            // probed threaded run stays bit-identical and observes the
            // exact event stream of the probed sequential run.
            let mut par_counting = CountingProbe::default();
            prop_assert_eq!(
                &par.run_probed(&program, &mut par_counting)
                    .expect("probed threaded engine simulates"),
                &par_result,
                "seed {} under {:?}: the counting probe steered the threaded engine",
                seed,
                par.config()
            );
            prop_assert_eq!(
                par_counting.events(),
                counting.events(),
                "seed {} under {:?}: probe event streams diverge across thread counts",
                seed,
                par.config()
            );
        }
    }
}

/// One random histogram-family program: `tasks` forked leaves walk random
/// key streams and bump shared bucket counters through a
/// load–conditional–store sequence whose (functionally redundant)
/// conditional depends on the *loaded* counter — the fork-heavy pattern
/// whose cross-section writer chains made the retired force-release
/// heuristic fire ~1× per key. Bucket count, leaf count, keys per leaf
/// and the key stream all vary with the seed.
fn histogram_family_program(seed: u64) -> parsecs::isa::Program {
    let mut gen = Gen::new(seed ^ 0x5ca1_ab1e);
    let buckets = 2 + gen.below(6);
    let leaves = 2 + gen.below(4);
    let mut src = format!(
        "table:  .quad {}\nmain:   movq $0, %rax\n",
        vec!["0"; buckets as usize].join(", ")
    );
    for leaf in 0..leaves {
        src.push_str(&format!("        fork leaf{leaf}\n"));
    }
    // After the fork subtree, fold the table into a checksum.
    src.push_str(&format!(
        "        movq $table, %rdi
        movq ${buckets}, %rcx
        movq $0, %rax
        movq $1, %rbx
chk:    movq (%rdi), %rdx
        imulq %rbx, %rdx
        addq %rdx, %rax
        addq $8, %rdi
        addq $1, %rbx
        subq $1, %rcx
        jne chk
        out  %rax
        halt
"
    ));
    let mut label = 0usize;
    for leaf in 0..leaves {
        src.push_str(&format!("leaf{leaf}:\n"));
        let keys = 2 + gen.below(6);
        for _ in 0..keys {
            let bucket = gen.below(buckets) * 8;
            src.push_str(&format!(
                "        movq $table, %rcx
        movq {bucket}(%rcx), %rax
        cmpq $0, %rax
        je .l{label}
.l{label}: addq $1, %rax
        movq %rax, {bucket}(%rcx)\n"
            ));
            label += 1;
        }
        src.push_str("        endfork\n");
    }
    parsecs::asm::assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"))
}

proptest! {
    /// The fork-heavy differential: random histogram-family programs ×
    /// random chips. These runs used to lean on the forced-release
    /// heuristic (~1 release per key); under the handoff model both
    /// engines must agree bit-for-bit *and* never force a release.
    #[test]
    fn fork_heavy_writer_chains_never_force_releases(seed in proptest::strategy::any::<u64>()) {
        let program = histogram_family_program(seed);
        let mut gen = Gen::new(seed.rotate_left(29) ^ 0x1234);
        for _ in 0..2 {
            let config = random_config(&mut gen).validated();
            let sim = ManyCoreSim::new(config);
            let event = sim.run(&program).expect("event-driven engine simulates");
            let reference = sim
                .run_reference(&program)
                .expect("reference engine simulates");
            prop_assert_eq!(
                &event,
                &reference,
                "seed {} under {:?}: engines diverge",
                seed,
                sim.config()
            );
            prop_assert_eq!(
                event.stats.forced_stall_releases,
                0,
                "seed {} under {:?}: detector fired on a well-formed fork-heavy run",
                seed,
                sim.config()
            );
            // The stats axis: the fork-heavy contended chains must yield
            // the same aggregates (and a silent detector) stats-only.
            let stats_sim = ManyCoreSim::new(sim.config().clone().stats_only());
            let stats = stats_sim.run(&program).expect("stats-only simulates");
            prop_assert_eq!(
                &stats.stats,
                &event.stats,
                "seed {} under {:?}: stats-only aggregates diverge",
                seed,
                stats_sim.config()
            );
            prop_assert_eq!(
                &stats,
                &stats_sim.run_reference(&program).expect("stats-only reference"),
                "seed {} under {:?}: engines diverge stats-only",
                seed,
                stats_sim.config()
            );
            // The threads axis on the contended writer chains: the
            // parallel completion drain commits in sequence order, so the
            // threaded run reproduces `event` (already pinned to the
            // cycle-stepping reference above) bit-for-bit.
            let par = ManyCoreSim::new(sim.config().clone().with_threads(4));
            let par_result = par.run(&program).expect("threaded engine simulates");
            prop_assert!(
                par_result.fork_fallback.is_some()
                    || par_result
                        .check
                        .as_ref()
                        .is_some_and(|r| r.drain.is_certified() && r.walk.is_certified()),
                "seed {} under {:?}: threaded run is silent about its fork decision",
                seed,
                par.config()
            );
            prop_assert_eq!(
                &par_result,
                &event,
                "seed {} under {:?}: threaded run diverges",
                seed,
                par.config()
            );
        }
    }
}

#[test]
fn histogram_family_programs_chain_writers_across_sections() {
    // The generator must produce the contended cross-section writer
    // chains it exists for: multiple sections, remote operands, and a
    // deterministic checksum.
    let mut forked = 0usize;
    let mut remote = 0u64;
    for seed in 0..24u64 {
        let program = histogram_family_program(seed * 6151 + 7);
        let sim = ManyCoreSim::new(SimConfig::with_cores(4));
        let result = sim.run(&program).expect("simulates");
        forked += result.stats.sections;
        remote += result.stats.remote_register_requests + result.stats.remote_memory_requests;
        assert_eq!(result.stats.forced_stall_releases, 0);
    }
    assert!(forked >= 24 * 3, "only {forked} sections over 24 programs");
    assert!(remote > 0, "no remote operands — chains never cross cores");
}

#[test]
fn attribution_buckets_tile_total_cycles_exactly() {
    // Deterministic spot check of the always-on cycle attribution: every
    // configured core's busy/stalled/parked/idle buckets sum to the
    // run's total_cycles, the chip-wide occupancy is a proper fraction,
    // and cores the placement never used still account their cycles
    // (all idle), keeping the denominator consistent.
    for seed in [3u64, 11, 42] {
        let program = random_program(seed * 7919 + 13);
        let sim = ManyCoreSim::new(SimConfig::with_cores(8));
        let result = sim.run(&program).expect("simulates");
        assert_eq!(result.stats.attribution.len(), 8);
        for breakdown in &result.stats.attribution {
            assert_eq!(breakdown.total(), result.stats.total_cycles, "seed {seed}");
        }
        let occupancy = result.stats.occupancy();
        assert!(
            occupancy > 0.0 && occupancy <= 1.0,
            "seed {seed}: {occupancy}"
        );
        let busy: u64 = result.stats.attribution.iter().map(|b| b.busy).sum();
        assert!(busy > 0, "seed {seed}: no fetch cycles attributed");
    }
}

/// Two hub sections, each executing a run of `fork` instructions whose
/// fall-throughs are 1-instruction sections — a two-senders,
/// many-producers star. With every tiny section pinned on one consumer
/// core and a per-cycle ejection budget of 1, the 14 creation messages
/// serialise through that core's ejection port and the contention term
/// is the binding lower bound.
#[test]
fn ejection_contention_binds_a_many_producers_one_consumer_cell() {
    use parsecs::core::{bound_schedule, BindingTerm, TraceArena};

    // `fork` is call-style: control continues into the target while the
    // fall-through code becomes a new section, so a run of forks through
    // 1-instruction bodies puts all the fork instructions — and all the
    // spawned continuations — in ONE hub section. The root hub chains
    // through `a1..a7`; its first continuation (the code after
    // `fork a1`) is hub B chaining through `b1..b7`; continuations pop
    // LIFO, so hub B's first continuation runs last and carries `halt`.
    let mut src =
        String::from("main:   fork a1\n        fork b1\n        out %rax\n        halt\n");
    for k in 1..7 {
        src.push_str(&format!("b{k}:     fork b{}\n        endfork\n", k + 1));
    }
    src.push_str("b7:     endfork\n");
    for k in 1..7 {
        src.push_str(&format!("a{k}:     fork a{}\n        endfork\n", k + 1));
    }
    src.push_str("a7:     endfork\n");
    let program = parsecs::asm::assemble(&src).expect("assembles");
    let arena = TraceArena::from_program(&program, 10_000).expect("runs");

    // Root hub on core 0, hub B on core 2, every spawned leaf on the
    // consumer core 1.
    let core_of: Vec<usize> = arena
        .sections()
        .iter()
        .map(|span| {
            if span.creator.is_none() {
                0
            } else if span.len() > 2 {
                2
            } else {
                1
            }
        })
        .collect();
    assert_eq!(
        core_of.iter().filter(|&&c| c == 1).count(),
        13,
        "the two hubs must spawn 13 leaf sections for the consumer core"
    );

    let mut config = SimConfig::with_cores(4);
    config.noc = NocConfig {
        base_latency: 1,
        per_hop_latency: 1,
        link_bandwidth: Some(1),
    };
    let bounds = bound_schedule(&arena, &core_of, &config.chip_model());
    assert_eq!(
        bounds.binding,
        BindingTerm::Ejection,
        "path {} work {} ejection {}",
        bounds.path_bound,
        bounds.work_bound,
        bounds.ejection_bound
    );
    // 13 messages through a budget-1 port, cheapest transit 2, then the
    // last section's single fetch and its retirement.
    assert_eq!(bounds.ejection_bound, 13 + 2 + 1 + 1);
    assert!(bounds.ejection_bound > bounds.path_bound);
    assert!(bounds.ejection_bound > bounds.work_bound);

    // The engine's own (policy-chosen) placement on the same chip still
    // satisfies the sandwich.
    let result = ManyCoreSim::new(config.validated())
        .run(&program)
        .expect("simulates");
    let schedule = result
        .check
        .as_ref()
        .and_then(|r| r.schedule.as_ref())
        .expect("validated run attaches schedule bounds");
    assert!(result.stats.total_cycles >= schedule.lb);
}

/// On a 1-core chip a wide dependence-free program is bound by fetch
/// work, not by any dependence path: the engine's own placement is the
/// trivial one, so the attached report must name the work term.
#[test]
fn per_core_work_binds_a_one_core_cell() {
    use parsecs::core::BindingTerm;

    // Control runs into each forked body (`a`, then `b` from `a`'s
    // continuation); the final continuation carries the halt. Three
    // sections, two of them wide and dependence-free.
    let mut src = String::from("main:   fork a\n        fork b\n        out %rax\n        halt\n");
    src.push_str("a:    ");
    for k in 0..8 {
        src.push_str(&format!("  movq ${k}, %rax\n      "));
    }
    src.push_str("  endfork\nb:    ");
    for k in 0..8 {
        src.push_str(&format!("  movq ${k}, %rbx\n      "));
    }
    src.push_str("  endfork\n");
    let program = parsecs::asm::assemble(&src).expect("assembles");

    let result = ManyCoreSim::new(SimConfig::with_cores(1).validated())
        .run(&program)
        .expect("simulates");
    let report = result.check.as_ref().expect("validated run");
    let schedule = report.schedule.as_ref().expect("schedule bounds attached");
    assert_eq!(
        schedule.binding,
        BindingTerm::Work,
        "path {} work {} ejection {}",
        schedule.path_bound,
        schedule.work_bound,
        schedule.ejection_bound
    );
    assert_eq!(
        schedule.work_bound,
        result.stats.instructions + 1,
        "one core must fetch every instruction plus the final retirement"
    );
    let critical_path = report.bounds.as_ref().expect("bounded").critical_path;
    assert!(critical_path <= schedule.lb && schedule.lb <= result.stats.total_cycles);
}

#[test]
fn generated_programs_are_nontrivial() {
    let mut total_sections = 0usize;
    let mut max_sections = 0usize;
    let mut total_insns = 0u64;
    for seed in 0..40u64 {
        let program = random_program(seed * 7919 + 13);
        let sim = ManyCoreSim::new(SimConfig::with_cores(8));
        let result = sim.run(&program).expect("simulates");
        total_sections += result.stats.sections;
        max_sections = max_sections.max(result.stats.sections);
        total_insns += result.stats.instructions;
    }
    // The generator must regularly emit forking, branching programs, not
    // degenerate straight lines.
    assert!(max_sections >= 4, "max sections only {max_sections}");
    assert!(total_sections >= 80, "total sections only {total_sections}");
    assert!(
        total_insns >= 1_000,
        "total instructions only {total_insns}"
    );
}
