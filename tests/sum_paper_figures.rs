//! Integration tests pinning the paper's concrete numbers for the running
//! example (Figures 2–6 and 10, §5).

use parsecs::core::{analytic, SectionId, SectionedTrace};
use parsecs::driver::{ManyCoreBackend, Runner, SequentialBackend};
use parsecs::machine::Machine;
use parsecs::workloads::sum;

const PAPER_DATA: [u64; 5] = [4, 2, 6, 4, 5];

#[test]
fn figure2_listing_has_25_instructions_and_figure5_has_18() {
    assert_eq!(
        parsecs::asm::assemble(sum::SUM_CALL_BODY)
            .map(|p| p.len())
            .unwrap(),
        25
    );
    assert_eq!(
        parsecs::asm::assemble(sum::SUM_FORK_BODY)
            .map(|p| p.len())
            .unwrap(),
        18
    );
}

#[test]
fn figure3_the_call_run_of_sum_t5_is_a_59_instruction_trace() {
    let mut machine = Machine::load(&sum::call_program(&PAPER_DATA)).unwrap();
    let (outcome, trace) = machine.run_traced(10_000).unwrap();
    assert_eq!(outcome.outputs, vec![21]);
    // 59 sum instructions plus the 5-instruction main/out/halt wrapper.
    assert_eq!(trace.len(), 59 + 5);
}

#[test]
fn figure4_and_6_the_fork_run_has_five_sections_of_the_published_sizes() {
    let sectioned = SectionedTrace::from_program(&sum::fork_program(&PAPER_DATA), 10_000).unwrap();
    assert_eq!(sectioned.outputs(), &[21]);
    // 45 sum instructions plus the wrapper; the paper's five sections are
    // 11, 16, 12, 3 and 3 instructions (our first section carries the
    // 3-instruction main prologue, and the main continuation adds a sixth,
    // 2-instruction section).
    assert_eq!(sectioned.len(), 45 + 5);
    assert_eq!(sectioned.section_sizes(), vec![14, 16, 12, 3, 3, 2]);
    assert_eq!(sectioned.longest_section(), 16);
}

#[test]
fn figure6_renaming_matches_the_papers_producer_consumer_pairs() {
    use parsecs::core::SourceKind;
    use parsecs::machine::Location;

    let sectioned = SectionedTrace::from_program(&sum::fork_program(&PAPER_DATA), 10_000).unwrap();
    // 5-1 (addq 0(%rsp), %rax) reads the stack word written by 2-2.
    let section5 = sectioned.section_records(SectionId(4));
    let final_add = &section5[0];
    assert_eq!(final_add.mnemonic, "addq");
    match final_add.mem_sources[0].kind {
        SourceKind::Remote {
            producer_section, ..
        } => assert_eq!(producer_section, SectionId(1)),
        other => panic!("expected remote memory renaming, found {other:?}"),
    }
    // ... and its %rax comes from section 4 (the second half of the sum).
    let rax = final_add
        .reg_sources
        .iter()
        .find(|d| d.location == Location::Reg(parsecs::isa::Reg::Rax))
        .unwrap();
    match rax.kind {
        SourceKind::Remote {
            producer_section, ..
        } => assert_eq!(producer_section, SectionId(3)),
        other => panic!("expected remote register renaming, found {other:?}"),
    }
}

#[test]
fn figure10_the_many_core_run_fetches_fast_and_retires_shortly_after() {
    let program = sum::fork_program(&PAPER_DATA);
    let report = Runner::new(&program)
        .fuel(10_000)
        .on(ManyCoreBackend::with_cores(8))
        .run()
        .unwrap();
    assert_eq!(report.outputs, vec![21]);
    assert_eq!(report.sim().unwrap().stats.sections, 6);
    // Paper: 45 instructions fetched by cycle 30, retired by cycle 43.
    // Our charge model is slightly more expensive; check the band and the
    // ordering rather than the exact constants.
    assert!(report.fetch_cycles() >= 30 && report.fetch_cycles() <= 45);
    assert!(report.cycles > report.fetch_cycles());
    assert!(report.cycles <= 90);
    assert!(
        report.fetch_ipc > 1.0,
        "parallel fetch beats one-per-cycle sequential fetch"
    );
}

#[test]
fn section5_scaling_doubles_instructions_but_adds_constant_fetch_cycles() {
    let mut previous_fetch = 0;
    for n in 0..5u32 {
        let model = analytic::sum_model(n);
        let data = sum::dataset(n, 3);
        let program = sum::fork_program(&data);
        let report = Runner::new(&program)
            .on(ManyCoreBackend::with_cores(128))
            .run()
            .unwrap();
        assert_eq!(report.outputs, sum::expected(&data));
        // Instruction counts match the closed form exactly.
        assert_eq!(report.instructions - 5, model.instructions);
        // Fetch time grows by a small additive step per doubling (12 in the
        // paper; allow up to 25 for our more expensive NoC charge), not
        // multiplicatively.
        if n > 0 {
            let step = report.fetch_cycles() - previous_fetch;
            assert!(step <= 25, "fetch step {step} too large at n={n}");
        }
        previous_fetch = report.fetch_cycles();
    }
}

#[test]
fn the_fork_rewrite_preserves_the_result_on_random_datasets() {
    for seed in 0..5u64 {
        let data = sum::dataset(3, seed);
        let call_program = sum::call_program(&data);
        let fork_program = sum::fork_program(&data);
        let call = Runner::new(&call_program)
            .fuel(1_000_000)
            .on(SequentialBackend)
            .run()
            .unwrap();
        let fork = Runner::new(&fork_program)
            .fuel(1_000_000)
            .on(SequentialBackend)
            .run()
            .unwrap();
        assert_eq!(call.outputs, fork.outputs);
    }
}
