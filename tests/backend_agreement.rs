//! The point of the unified driver: the three engines are
//! interchangeable on *what* a program computes, and differ only in the
//! timing model. Functional agreement is asserted across workloads,
//! dataset sizes and backends; the chip-size axis is swept concurrently
//! and must never slow the simulated run down.

use parsecs::cc::Backend;
use parsecs::driver::{IlpBackend, ManyCoreBackend, Runner, SequentialBackend, Sweep};
use parsecs::isa::Program;
use parsecs::workloads::pbbs::Benchmark;
use parsecs::workloads::{scale, sum};

fn fork_workloads(size: usize) -> Vec<(String, Program)> {
    let data: Vec<u64> = (1..=size as u64).collect();
    vec![
        (format!("sum-{size}"), sum::fork_program(&data)),
        (
            format!("quicksort-{size}"),
            Benchmark::ComparisonSort
                .program(size, 5, Backend::Forks)
                .expect("compiles"),
        ),
        (
            format!("kruskal-{size}"),
            Benchmark::Mst
                .program(size, 5, Backend::Forks)
                .expect("compiles"),
        ),
    ]
}

#[test]
fn all_three_backends_report_identical_outputs_across_sizes() {
    for size in [12, 24, 48] {
        for (label, program) in fork_workloads(size) {
            let reports = Runner::new(&program)
                .fuel(500_000_000)
                .on(SequentialBackend)
                .on(IlpBackend::parallel_ideal())
                .on(ManyCoreBackend::with_cores(16))
                .run_all()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(reports.len(), 3);
            let reference = &reports[0].outputs;
            assert!(!reference.is_empty(), "{label}: no outputs");
            for report in &reports[1..] {
                assert_eq!(
                    &report.outputs, reference,
                    "{label}: {} disagrees with sequential",
                    report.backend
                );
                // The simulated timings must never rest on the deadlock
                // heuristic: a forced release means optimistic timings.
                assert_eq!(
                    report.forced_stall_releases().unwrap_or(0),
                    0,
                    "{label}: {} needed forced stall releases",
                    report.backend
                );
            }
        }
    }
}

#[test]
fn fork_heavy_histogram_runs_cleanly_through_the_driver() {
    // The unsorted histogram's cross-section writer chains used to lean
    // on the forced-stall-release heuristic (~1 release per key at
    // benchmark scale). Under the in-order handoff model the run must
    // complete with the detector silent — a firing now surfaces as
    // `DriverError::Deadlock` instead of an optimistic report.
    let (keys, buckets, seed) = (300, 8, 11);
    let program = scale::histogram_program(keys, buckets, seed);
    for cores in [1, 4, 64] {
        let report = Runner::new(&program)
            .fuel(10_000_000)
            .on(ManyCoreBackend::with_cores(cores))
            .run()
            .unwrap_or_else(|e| panic!("{cores} cores: {e}"));
        assert_eq!(
            report.outputs,
            scale::histogram_expected(keys, buckets, seed),
            "{cores} cores"
        );
        assert_eq!(report.forced_stall_releases(), Some(0), "{cores} cores");
    }
}

#[test]
fn sum_outputs_also_match_the_oracle_under_every_backend() {
    let data = sum::dataset(3, 11);
    let program = sum::fork_program(&data);
    let reports = Runner::new(&program)
        .fuel(1_000_000)
        .on(SequentialBackend)
        .on(IlpBackend::sequential_oracle())
        .on(ManyCoreBackend::with_cores(8))
        .run_all()
        .expect("runs");
    for report in &reports {
        assert_eq!(report.outputs, sum::expected(&data), "{}", report.backend);
    }
}

#[test]
fn seven_point_core_sweep_is_concurrent_and_cycles_never_increase() {
    let data: Vec<u64> = (1..=40).collect();
    let points = Sweep::new()
        .fuel(1_000_000)
        .program("sum-40", sum::fork_program(&data))
        .manycore_cores(&[1, 2, 4, 8, 16, 32, 64])
        .run();
    assert_eq!(points.len(), 7);

    let mut previous_fetch = u64::MAX;
    let mut previous_total = u64::MAX;
    for point in &points {
        let report = point
            .report()
            .unwrap_or_else(|| panic!("{} failed", point.backend));
        assert_eq!(report.outputs, vec![820], "{}", point.backend);
        assert_eq!(
            report.forced_stall_releases(),
            Some(0),
            "{}: forced stall releases",
            point.backend
        );
        let fetch = report.fetch_cycles();
        assert!(
            fetch <= previous_fetch,
            "{}: fetch cycles went up ({previous_fetch} -> {fetch})",
            point.backend
        );
        assert!(
            report.cycles <= previous_total,
            "{}: total cycles went up ({previous_total} -> {})",
            point.backend,
            report.cycles
        );
        previous_fetch = fetch;
        previous_total = report.cycles;
    }
}
