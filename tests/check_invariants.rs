//! Mutation corpus for the `parsecs::check` static analysis.
//!
//! Every workload generator's arena must come back clean, certified for
//! the parallel drain, and bounded (`total_cycles ≥ critical_path` on
//! every chip size). And the validator must actually *detect* broken
//! invariants: these tests rebuild real arenas record-by-record through
//! the public column builder, inject one targeted corruption — a swapped
//! dependence edge, an overlapping section span, a stale writer claim, a
//! truncated dependence slice, an invalid 16-byte packing, a bogus
//! creator link, an unclosed record — and assert the report names the
//! matching [`InvariantViolation`] variant. A proptest then sweeps the
//! same mutations across random seeds and all five generators.

use parsecs::check::{check_arena, DrainSafety, InvariantViolation, Progress};
use parsecs::core::{ManyCoreSim, SimConfig};
use parsecs::trace::{PackedDep, SectionId, SectionSpan, TraceArena};
use parsecs::workloads::scale;
use proptest::prelude::*;

/// Mirrors of the arena's packed provenance tags (pinned inside
/// `parsecs-check` against the arena's encoder).
const KIND_LOCAL: u32 = 0;
const KIND_REMOTE: u32 = 1;

/// One small instance of each `workloads::scale` generator.
fn base_arena(which: usize, seed: u64) -> (&'static str, TraceArena) {
    let (name, program, fuel) = match which % 5 {
        0 => (
            "histogram",
            scale::histogram_program(48, 8, seed),
            scale::histogram_fuel(48, 8),
        ),
        1 => (
            "tree_sum",
            scale::tree_sum_program(32, seed),
            scale::tree_sum_fuel(32),
        ),
        2 => (
            "chain_sum",
            scale::chain_sum_program(24, seed),
            scale::chain_sum_fuel(24),
        ),
        3 => (
            "synth_histogram",
            scale::synth_histogram_program(64, 16, seed),
            scale::synth_histogram_fuel(64, 16),
        ),
        _ => (
            "fan_chain",
            scale::fan_chain_program(4, 4, seed),
            scale::fan_chain_fuel(4, 4),
        ),
    };
    let arena = TraceArena::from_program(&program, fuel).expect("workload halts within fuel");
    (name, arena)
}

/// Rebuilds `src` through the public column builder, mapping each column
/// through the given hooks (identity hooks reproduce `src` exactly).
fn rebuild(
    src: &TraceArena,
    mut map_section_col: impl FnMut(usize, SectionId) -> SectionId,
    mut map_dep: impl FnMut(usize, usize, PackedDep) -> PackedDep,
    mut map_reg_count: impl FnMut(usize, usize) -> usize,
    mut map_span: impl FnMut(usize, SectionSpan) -> SectionSpan,
) -> TraceArena {
    let mut out = TraceArena::new();
    let raw = src.raw();
    for seq in 0..src.len() {
        let id = out.intern_mnemonic(src.mnemonic(seq));
        out.begin_record(
            src.ip(seq),
            id,
            map_section_col(seq, src.section(seq)),
            src.kind(seq),
            src.is_control(seq),
            src.is_load(seq),
            src.is_store(seq),
        );
        let deps = raw.dep_off[seq] as usize..raw.dep_off[seq + 1] as usize;
        for (j, &dep) in raw.deps[deps].iter().enumerate() {
            out.push_dep(map_dep(seq, j, dep));
        }
        for loc in src.written(seq) {
            out.push_write(loc);
        }
        out.end_record(map_reg_count(seq, raw.reg_deps[seq] as usize));
    }
    for (i, span) in src.sections().iter().enumerate() {
        out.push_section(map_span(i, span.clone()));
    }
    out.set_outputs(src.outputs().to_vec());
    out
}

/// First dependence `(seq, dep, packed)` satisfying the predicate.
fn find_dep(
    src: &TraceArena,
    pred: impl Fn(usize, usize, PackedDep) -> bool,
) -> Option<(usize, usize, PackedDep)> {
    let raw = src.raw();
    for seq in 0..src.len() {
        let start = raw.dep_off[seq] as usize;
        for (j, &dep) in raw.deps[start..raw.dep_off[seq + 1] as usize]
            .iter()
            .enumerate()
        {
            if pred(seq, j, dep) {
                return Some((seq, j, dep));
            }
        }
    }
    None
}

/// The corpus: each entry corrupts one invariant and names the variant
/// the validator must report. Returns `None` when `src` has no site for
/// the mutation (e.g. a single-section trace cannot overlap spans).
fn mutate(src: &TraceArena, mutation: usize) -> Option<(TraceArena, &'static str)> {
    let identity = |src: &TraceArena,
                    sec: Option<(usize, SectionId)>,
                    dep: Option<(usize, usize, PackedDep)>,
                    reg: Option<(usize, usize)>,
                    span: Option<(usize, SectionSpan)>| {
        rebuild(
            src,
            |seq, s| sec.as_ref().filter(|m| m.0 == seq).map_or(s, |m| m.1),
            |seq, j, d| dep.filter(|m| (m.0, m.1) == (seq, j)).map_or(d, |m| m.2),
            |seq, r| reg.filter(|m| m.0 == seq).map_or(r, |m| m.1),
            |i, s| span.clone().filter(|m| m.0 == i).map_or(s, |m| m.1),
        )
    };
    match mutation % 8 {
        // Swapped dependence edge: a producer at/after its consumer.
        0 => {
            let (seq, j, dep) = find_dep(src, |_, _, d| {
                matches!(d.raw_parts().2 & 7, KIND_LOCAL | KIND_REMOTE)
            })?;
            let (loc, _, section_kind) = dep.raw_parts();
            let cyclic = PackedDep::from_raw_parts(loc, seq as u32, section_kind);
            Some((
                identity(src, None, Some((seq, j, cyclic)), None, None),
                "DependenceCycle",
            ))
        }
        // Invalid 16-byte packing: a bogus location tag in the register
        // prefix.
        1 => {
            let raw = src.raw();
            let (seq, j, dep) = find_dep(src, |seq, j, _| j < raw.reg_deps[seq] as usize)?;
            let (loc, producer, section_kind) = dep.raw_parts();
            let broken = PackedDep::from_raw_parts((loc & !7) | 5, producer, section_kind);
            Some((
                identity(src, None, Some((seq, j, broken)), None, None),
                "DepPackingBroken",
            ))
        }
        // Truncated dependence slice: the register prefix claims more
        // sources than the slice holds.
        2 => {
            let raw = src.raw();
            let seq = 0;
            let len = (raw.dep_off[1] - raw.dep_off[0]) as usize;
            Some((
                identity(src, None, None, Some((seq, len + 1)), None),
                "DepSliceBroken",
            ))
        }
        // Stale writer: a local dependence re-pointed at a same-section
        // record that is not the closest preceding writer.
        3 => {
            let spans = src.sections();
            let (seq, j, dep) = find_dep(src, |seq, _, d| {
                let (_, producer, section_kind) = d.raw_parts();
                section_kind & 7 == KIND_LOCAL
                    && seq - spans[src.section(seq).0].start >= 2
                    && producer as usize + 1 < seq
            })?;
            let (loc, producer, section_kind) = dep.raw_parts();
            let stale = PackedDep::from_raw_parts(loc, producer + 1, section_kind);
            Some((
                identity(src, None, Some((seq, j, stale)), None, None),
                "WriterDiscipline",
            ))
        }
        // Overlapping sections: the first span ends one record early, so
        // the second no longer starts where the tiling demands.
        4 => {
            if src.sections().len() < 2 || src.sections()[0].is_empty() {
                return None;
            }
            let span = SectionSpan {
                end: src.sections()[0].end - 1,
                ..src.sections()[0].clone()
            };
            Some((
                identity(src, None, None, None, Some((0, span))),
                "SectionSpanBroken",
            ))
        }
        // A record's section column disagreeing with the span tiling.
        5 => {
            let seq = src.sections().get(1)?.start;
            Some((
                identity(src, Some((seq, SectionId(0))), None, None, None),
                "SectionColumnMismatch",
            ))
        }
        // Bogus creator link: the fork claimed at the section's own start.
        6 => {
            let (i, span) = src
                .sections()
                .iter()
                .enumerate()
                .find(|(_, s)| s.creator.is_some())?;
            let (creator, _) = span.creator.expect("just matched");
            let broken = SectionSpan {
                creator: Some((creator, span.start)),
                ..span.clone()
            };
            Some((
                identity(src, None, None, None, Some((i, broken))),
                "CreatorBroken",
            ))
        }
        // Unclosed record: `begin_record` with no matching `end_record`
        // desynchronises every fixed-width column.
        _ => {
            let mut out = identity(src, None, None, None, None);
            let id = out.intern_mnemonic("dangling");
            out.begin_record(0, id, SectionId(0), src.kind(0), false, false, false);
            Some((out, "ColumnBroken"))
        }
    }
}

fn is_variant(violation: &InvariantViolation, name: &str) -> bool {
    match violation {
        InvariantViolation::SectionSpanBroken { .. } => name == "SectionSpanBroken",
        InvariantViolation::SectionColumnMismatch { .. } => name == "SectionColumnMismatch",
        InvariantViolation::CreatorBroken { .. } => name == "CreatorBroken",
        InvariantViolation::ColumnBroken { .. } => name == "ColumnBroken",
        InvariantViolation::DepSliceBroken { .. } => name == "DepSliceBroken",
        InvariantViolation::DepPackingBroken { .. } => name == "DepPackingBroken",
        InvariantViolation::DependenceCycle { .. } => name == "DependenceCycle",
        InvariantViolation::WriterDiscipline { .. } => name == "WriterDiscipline",
        _ => false,
    }
}

/// Runs one mutation against one base arena and asserts the validator
/// reports the matching variant (and withholds the drain certificate).
fn assert_detected(which: usize, seed: u64, mutation: usize) {
    let (name, src) = base_arena(which, seed);
    let Some((mutated, expected)) = mutate(&src, mutation) else {
        panic!("{name}: no mutation site for corpus entry {mutation}");
    };
    let report = check_arena(&mutated);
    assert!(
        !report.is_clean(),
        "{name}: mutation {mutation} went undetected"
    );
    assert!(
        report.violations.iter().any(|v| is_variant(v, expected)),
        "{name}: mutation {mutation} should report {expected}, got: {report}"
    );
    assert!(
        matches!(report.drain, DrainSafety::Unchecked),
        "{name}: a corrupt arena must not be certified"
    );
    assert!(
        report.bounds.is_none(),
        "{name}: corrupt arenas have no bounds"
    );
    assert!(
        report.schedule.is_none(),
        "{name}: corrupt arenas must not carry schedule bounds"
    );
}

/// The identity rebuild is bit-identical to the source and stays clean —
/// the corpus harness itself introduces no corruption.
#[test]
fn identity_rebuild_is_faithful_and_clean() {
    for which in 0..5 {
        let (name, src) = base_arena(which, 11);
        let rebuilt = rebuild(&src, |_, s| s, |_, _, d| d, |_, r| r, |_, s| s);
        assert_eq!(rebuilt, src, "{name}: identity rebuild diverged");
        let report = check_arena(&rebuilt);
        assert!(report.is_clean(), "{name}: {report}");
    }
}

/// Every corpus entry is demonstrably triggered on the fork-heavy
/// histogram arena — all eight `InvariantViolation` variants fire.
#[test]
fn every_violation_variant_is_detected() {
    for mutation in 0..8 {
        assert_detected(0, 11, mutation);
    }
}

/// Every `workloads::scale` generator is clean, certified for the
/// parallel drain, and the engine retires at or above the static
/// critical path at 64, 256 and 1024 cores.
#[test]
fn scale_generators_are_certified_and_bounded_across_chip_sizes() {
    for which in 0..5 {
        let (name, arena) = base_arena(which, 23);
        let report = check_arena(&arena);
        assert!(report.is_clean(), "{name}: {report}");
        assert!(
            matches!(report.drain, DrainSafety::Certified { .. }),
            "{name}: drain not certified: {report}"
        );
        let bounds = report.bounds.as_ref().expect("clean arenas are bounded");
        for cores in [64, 256, 1024] {
            let result = ManyCoreSim::new(SimConfig::with_cores(cores).stats_only().validated())
                .simulate_arena(&arena)
                .expect("validated simulation succeeds");
            let attached = result
                .check
                .as_ref()
                .expect("validated run attaches a report");
            assert!(attached.drain.is_certified(), "{name} at {cores} cores");
            assert!(
                result.stats.total_cycles >= bounds.critical_path,
                "{name} at {cores} cores: {} cycles undercut the critical path {}",
                result.stats.total_cycles,
                bounds.critical_path
            );
            // The config-aware pass sandwiches between the
            // config-independent critical path and the measurement on
            // every chip size.
            let schedule = attached
                .schedule
                .as_ref()
                .expect("validated runs attach schedule bounds");
            assert!(
                bounds.critical_path <= schedule.lb && schedule.lb <= result.stats.total_cycles,
                "{name} at {cores} cores: lb sandwich broken \
                 ({} / {} / {}, {} binding)",
                bounds.critical_path,
                schedule.lb,
                result.stats.total_cycles,
                schedule.binding
            );
            assert!(
                schedule.predicted_cycles >= schedule.path_bound,
                "{name} at {cores} cores: the predictor fell below its own path term"
            );
        }
    }
}

proptest! {
    /// Capacity-starved placements of a dependent chain: more sections
    /// than core slots (`sections > cores × max_sections_per_core`) with
    /// producer edges linking every section to its predecessor. The
    /// progress prover must flag `Progress::PotentialCycle` with a
    /// closed concrete witness, both engines must attach the identical
    /// verdict bit-for-bit, and the verdict must stay consistent with
    /// the runtime deadlock detector in the one direction the model
    /// promises: a run the detector flags is never `Proven`. (The
    /// park/handoff runtime relaxes capacity and completes these runs —
    /// `PotentialCycle` with a quiet detector is the expected,
    /// consistent outcome; the prover's hold-slot model is strictly
    /// stricter.)
    #[test]
    fn capacity_starved_chains_are_flagged_and_consistent_with_the_detector(
        seed in proptest::strategy::any::<u64>(),
        elements in 265usize..300,
    ) {
        let program = scale::chain_sum_program(elements, seed);
        let arena = TraceArena::from_program(&program, scale::chain_sum_fuel(elements))
            .expect("workload halts within fuel");
        let sections = arena.sections().len();
        prop_assert!(
            sections > 256,
            "a {}-element chain made only {} sections", elements, sections
        );
        for cores in [64usize, 256] {
            let mut config = SimConfig::with_cores(cores).stats_only().validated();
            config.max_sections_per_core = 1;
            let sim = ManyCoreSim::new(config);
            let event = sim.simulate_arena(&arena).expect("event engine simulates");
            let reference = sim
                .simulate_arena_reference(&arena)
                .expect("reference engine simulates");
            prop_assert_eq!(&event, &reference, "engines diverge at {} cores", cores);
            let report = event.check.as_ref().expect("validated run attaches a report");
            let progress = report
                .progress
                .as_ref()
                .expect("validated runs attach the progress verdict");
            prop_assert!(
                !progress.is_proven(),
                "{} sections on {} single-slot cores must not be proven: {:?}",
                sections, cores, progress
            );
            let Progress::PotentialCycle { witness } = progress else {
                unreachable!("not proven, so a potential cycle");
            };
            prop_assert!(!witness.is_empty());
            for pair in witness.windows(2) {
                prop_assert_eq!(pair[0].to_section, pair[1].from_section, "witness chains");
            }
            prop_assert_eq!(
                witness.last().expect("non-empty").to_section,
                witness[0].from_section,
                "witness must close on its first section"
            );
            // One-directional consistency with the runtime detector: a
            // deadlocked run must never carry a proof.
            prop_assert!(event.stats.forced_stall_releases == 0 || !progress.is_proven());
        }
        // The same chain with the default per-core capacity is proven —
        // and the proof is consistent with the detector staying quiet.
        let roomy = ManyCoreSim::new(SimConfig::with_cores(64).stats_only().validated())
            .simulate_arena(&arena)
            .expect("roomy chip simulates");
        let progress = roomy
            .check
            .as_ref()
            .expect("validated run attaches a report")
            .progress
            .as_ref()
            .expect("attached")
            .clone();
        prop_assert!(
            progress.is_proven(),
            "default capacity must prove progress, got {:?}", progress
        );
        // The chain's serial structure shows up in the certificate: the
        // longest producer-edge chain spans at least the link sections.
        prop_assert!(progress.longest_wait_chain().expect("proven") >= sections / 2);
        prop_assert_eq!(roomy.stats.forced_stall_releases, 0);
    }

    /// The corpus swept across random seeds and all five generators:
    /// whenever a mutation site exists, the matching variant is reported.
    #[test]
    fn mutated_arenas_never_pass_validation(
        seed in proptest::strategy::any::<u64>(),
        which in 0usize..5,
        mutation in 0usize..8,
    ) {
        let (name, src) = base_arena(which, seed);
        prop_assert!(check_arena(&src).is_clean(), "{}: base arena dirty", name);
        if let Some((mutated, expected)) = mutate(&src, mutation) {
            let report = check_arena(&mutated);
            prop_assert!(!report.is_clean(), "{}: mutation {} undetected", name, mutation);
            prop_assert!(
                report.violations.iter().any(|v| is_variant(v, expected)),
                "{}: mutation {} should report {}, got: {}",
                name, mutation, expected, report
            );
        }
    }
}
