//! # parsecs — Parallel Sections Execution
//!
//! A reproduction of *"Toward a Core Design to Distribute an Execution on a
//! Many-Core Processor"* (Goossens, Parello, Porada, Rahmoune — PaCT 2015).
//!
//! This facade crate re-exports the workspace crates so that examples and
//! integration tests can use a single dependency:
//!
//! * [`isa`] — the x86-64-style instruction set with the paper's
//!   `fork`/`endfork` extension.
//! * [`asm`] — gas-syntax assembler and pretty printer.
//! * [`machine`] — sequential reference machine and dynamic tracer.
//! * [`trace`] — the streaming arena-backed trace pipeline: the machine
//!   streams retired instructions into a sectioner that renames and
//!   resolves dependences on the fly, into flat [`trace::TraceArena`]
//!   columns.
//! * [`check`] — static analysis over trace arenas: the invariant
//!   validator, the parallel-drain race certifier
//!   ([`check::DrainSafety`]), the dependence-DAG critical-path /
//!   ILP-width bounds the engines are grounded against, and the
//!   config-aware schedule analyzer ([`check::ScheduleBounds`]) whose
//!   certified NoC/placement-weighted lower bound and scored
//!   list-schedule predictor price a chip cell without simulating it.
//! * [`ilp`] — trace-based ILP limit analysis (the paper's Figure 7
//!   methodology).
//! * [`noc`] — network-on-chip substrate.
//! * [`obs`] — zero-cost telemetry: the [`obs::SimProbe`] hook trait the
//!   engines are monomorphized over, exact per-core
//!   [`obs::CycleAttribution`], bounded [`obs::TimeSeries`] gauges, and
//!   the Perfetto-loadable [`obs::ChromeTraceWriter`].
//! * [`core`] — the paper's contribution: the sectioned parallel execution
//!   model, its many-core six-stage-pipeline simulator, and the pluggable
//!   [`core::PlacementPolicy`] deciding which core hosts each section.
//! * [`cc`] — a mini-C compiler with the call→fork transformation.
//! * [`workloads`] — the sum running example and the ten PBBS-analog
//!   benchmarks.
//! * [`driver`] — **the front door**: one [`driver::ExecutionBackend`]
//!   abstraction over the three engines, the [`driver::Runner`] builder,
//!   and parallel design-space [`driver::Sweep`]s.
//!
//! ## Quickstart
//!
//! Run the paper's Figure 5 program once on each engine and compare the
//! uniform [`driver::RunReport`]s:
//!
//! ```
//! use parsecs::driver::{IlpBackend, ManyCoreBackend, Runner, SequentialBackend};
//! use parsecs::workloads::sum;
//!
//! let program = sum::fork_program(&[4, 2, 6, 4, 5]);
//! let reports = Runner::new(&program)
//!     .fuel(100_000)
//!     .on(SequentialBackend)
//!     .on(IlpBackend::parallel_ideal())
//!     .on(ManyCoreBackend::with_cores(8))
//!     .run_all()
//!     .expect("all three engines run");
//! for report in &reports {
//!     assert_eq!(report.outputs, vec![21]);
//! }
//! // The many-core simulator fetches in parallel; the reference machine
//! // fetches one instruction per cycle.
//! assert!(reports[2].fetch_ipc > reports[0].fetch_ipc);
//! ```
//!
//! And sweep a design space concurrently (here: the chip-size axis):
//!
//! ```
//! use parsecs::driver::Sweep;
//! use parsecs::workloads::sum;
//!
//! let points = Sweep::new()
//!     .fuel(100_000)
//!     .program("sum-20", sum::fork_program(&(1..=20).collect::<Vec<u64>>()))
//!     .manycore_cores(&[1, 4, 16])
//!     .run();
//! assert_eq!(points.len(), 3);
//! assert!(points.iter().all(|p| p.report().unwrap().outputs == vec![210]));
//! ```

pub use parsecs_asm as asm;
pub use parsecs_cc as cc;
pub use parsecs_check as check;
pub use parsecs_core as core;
pub use parsecs_driver as driver;
pub use parsecs_ilp as ilp;
pub use parsecs_isa as isa;
pub use parsecs_machine as machine;
pub use parsecs_noc as noc;
pub use parsecs_obs as obs;
pub use parsecs_trace as trace;
pub use parsecs_workloads as workloads;
