//! # parsecs — Parallel Sections Execution
//!
//! A reproduction of *"Toward a Core Design to Distribute an Execution on a
//! Many-Core Processor"* (Goossens, Parello, Porada, Rahmoune — PaCT 2015).
//!
//! This facade crate re-exports the workspace crates so that examples and
//! integration tests can use a single dependency:
//!
//! * [`isa`] — the x86-64-style instruction set with the paper's
//!   `fork`/`endfork` extension.
//! * [`asm`] — gas-syntax assembler and pretty printer.
//! * [`machine`] — sequential reference machine and dynamic tracer.
//! * [`ilp`] — trace-based ILP limit analysis (the paper's Figure 7
//!   methodology).
//! * [`noc`] — network-on-chip substrate.
//! * [`core`] — the paper's contribution: the sectioned parallel execution
//!   model and its many-core, six-stage-pipeline simulator.
//! * [`cc`] — a mini-C compiler with the call→fork transformation.
//! * [`workloads`] — the sum running example and the ten PBBS-analog
//!   benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use parsecs::workloads::sum;
//! use parsecs::machine::Machine;
//!
//! // Build the paper's Figure 2 program for a 5-element array and run it
//! // sequentially on the reference machine.
//! let data = [4u64, 2, 6, 4, 5];
//! let program = sum::call_program(&data);
//! let mut machine = Machine::load(&program).expect("program loads");
//! let outcome = machine.run(100_000).expect("program halts");
//! assert_eq!(outcome.outputs, vec![21]);
//! ```

pub use parsecs_asm as asm;
pub use parsecs_cc as cc;
pub use parsecs_core as core;
pub use parsecs_ilp as ilp;
pub use parsecs_isa as isa;
pub use parsecs_machine as machine;
pub use parsecs_noc as noc;
pub use parsecs_workloads as workloads;
