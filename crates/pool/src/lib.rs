//! # parsecs-pool — a tiny vendored scoped broadcast pool
//!
//! The event-driven simulator forks two fixed-shape jobs on every hot
//! cycle: the per-cluster fetch walk and the completion drain's
//! read-only resolution pass. Both are *broadcasts* — "run `f(worker)`
//! once per worker, then barrier" — over borrowed engine state, repeated
//! hundreds of thousands of times per run. That shape needs a persistent
//! pool (a `std::thread::spawn` per cycle would cost more than the
//! cycle) with scoped borrows, and the workspace builds offline with no
//! external dependencies (the same reason `crates/proptest` and
//! `crates/criterion` are vendored stand-ins), so this crate provides
//! the ~minimal implementation on `std::thread` alone.
//!
//! The only entry point is [`Pool::with`]: it spawns `threads - 1`
//! workers inside a [`std::thread::scope`], hands the caller a [`Pool`]
//! handle, and tears the workers down when the closure returns (or
//! unwinds). [`Pool::broadcast`] publishes one `&(dyn Fn(usize) + Sync)`
//! job, runs slice `0` on the calling thread, and returns only after
//! every worker has finished its slice — so the job may freely borrow
//! from the caller's stack.
//!
//! Jobs must not panic: a worker that unwinds out of its job dies
//! without signalling completion and the broadcast never returns. The
//! simulator's jobs are pure array sweeps with no panicking paths on
//! certified input.
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let totals: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
//! let data: Vec<u64> = (0..1000).collect();
//! let sum = parsecs_pool::Pool::with(4, |pool| {
//!     pool.broadcast(&|worker| {
//!         let chunk = data.len().div_ceil(pool.threads());
//!         let slice = data.chunks(chunk).nth(worker).unwrap_or(&[]);
//!         totals[worker].fetch_add(slice.iter().sum::<u64>(), Ordering::Relaxed);
//!     });
//!     totals.iter().map(|t| t.load(Ordering::Relaxed)).sum::<u64>()
//! });
//! assert_eq!(sum, 1000 * 999 / 2);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Spins before parking on the condvar. Broadcasts arrive every few
/// microseconds on the hot path, so a short spin usually catches the
/// next job without a syscall; the park path keeps idle pools (and
/// single-CPU hosts) from burning the core.
const SPIN: u32 = 256;

/// A published job: a lifetime-erased fat pointer to the caller's
/// closure. Sound because [`Pool::broadcast`] does not return until
/// every worker has finished calling it, and the pointee outlives the
/// `broadcast` call by construction (it is a borrow of the caller's
/// frame).
#[derive(Clone, Copy)]
struct Task(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and `broadcast` upholds the lifetime contract above.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

struct Shared {
    /// Broadcast generation; a change releases the workers.
    generation: AtomicU64,
    shutdown: AtomicBool,
    /// The job of the current generation (valid while `done < workers`).
    task: Mutex<Option<Task>>,
    /// Park/wake for workers waiting on the next generation.
    park: Mutex<()>,
    park_cv: Condvar,
    /// Workers finished with the current generation.
    done: AtomicUsize,
    done_park: Mutex<()>,
    done_cv: Condvar,
}

/// A fixed-width broadcast pool; see the crate docs. Obtain one through
/// [`Pool::with`] — the workers live exactly as long as the closure.
pub struct Pool {
    shared: Shared,
    threads: usize,
}

impl Pool {
    /// Runs `f` with a pool of `threads` execution slots (the calling
    /// thread plus `threads - 1` workers; a count of 0 or 1 means no
    /// workers and [`Pool::broadcast`] degenerates to a plain call).
    /// Workers are joined before `with` returns, even if `f` unwinds.
    pub fn with<R>(threads: usize, f: impl FnOnce(&Pool) -> R) -> R {
        let threads = threads.max(1);
        let pool = Pool {
            shared: Shared {
                generation: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                task: Mutex::new(None),
                park: Mutex::new(()),
                park_cv: Condvar::new(),
                done: AtomicUsize::new(0),
                done_park: Mutex::new(()),
                done_cv: Condvar::new(),
            },
            threads,
        };
        if threads == 1 {
            return f(&pool);
        }
        std::thread::scope(|scope| {
            for worker in 1..threads {
                let shared = &pool.shared;
                let total = threads - 1;
                scope.spawn(move || worker_loop(shared, worker, total));
            }
            // Shut the workers down even if `f` unwinds, so the scope's
            // implicit join cannot hang on a panicking caller.
            let _stop = ShutdownGuard(&pool.shared);
            f(&pool)
        })
    }

    /// Number of execution slots (worker index range of a broadcast).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(worker)` once for every `worker in 0..threads()` —
    /// slice 0 on the calling thread — and returns when all calls have
    /// finished. The job may borrow the caller's stack; per-slice
    /// mutable state is typically a `Vec<Mutex<_>>` indexed by the
    /// worker number (each slice locks only its own entry, so the locks
    /// never contend).
    pub fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 {
            job(0);
            return;
        }
        let workers = self.threads - 1;
        // SAFETY (lifetime erasure): the pointer is only dereferenced by
        // workers between the generation bump below and their `done`
        // signal, and this function does not return before `done`
        // reaches `workers` — the borrow of `job` is live throughout.
        let task = Task(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                job as *const _,
            )
        });
        *self.shared.task.lock().unwrap() = Some(task);
        self.shared.done.store(0, Ordering::Release);
        self.shared.generation.fetch_add(1, Ordering::Release);
        {
            let _guard = self.shared.park.lock().unwrap();
            self.shared.park_cv.notify_all();
        }
        job(0);
        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) < workers {
            spins += 1;
            if spins < SPIN {
                std::hint::spin_loop();
            } else {
                spins = 0;
                let guard = self.shared.done_park.lock().unwrap();
                if self.shared.done.load(Ordering::Acquire) < workers {
                    // Timed: belt-and-braces against a lost wakeup.
                    let _ = self
                        .shared
                        .done_cv
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        }
        *self.shared.task.lock().unwrap() = None;
    }
}

struct ShutdownGuard<'a>(&'a Shared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown.store(true, Ordering::Release);
        let _guard = self.0.park.lock().unwrap();
        self.0.park_cv.notify_all();
    }
}

fn worker_loop(shared: &Shared, worker: usize, workers: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for the next generation (spin, then park).
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let generation = shared.generation.load(Ordering::Acquire);
            if generation != seen {
                seen = generation;
                break;
            }
            spins += 1;
            if spins < SPIN {
                std::hint::spin_loop();
            } else {
                spins = 0;
                let guard = shared.park.lock().unwrap();
                // Re-check under the lock so a publish+notify between
                // our load and this wait cannot be missed; the timeout
                // is belt-and-braces on top.
                if shared.generation.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    let _ = shared
                        .park_cv
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        }
        let task = shared.task.lock().unwrap().expect("generation implies job");
        // SAFETY: see `Pool::broadcast` — the pointee outlives this call.
        unsafe { (*task.0)(worker) };
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == workers {
            let _guard = shared.done_park.lock().unwrap();
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_covers_every_worker_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            let hits: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
            Pool::with(threads, |pool| {
                assert_eq!(pool.threads(), threads);
                pool.broadcast(&|w| {
                    hits[w].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{threads} threads: {:?}",
                hits.iter()
                    .map(|h| h.load(Ordering::Relaxed))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeated_broadcasts_reuse_the_workers_and_barrier_correctly() {
        const ROUNDS: u64 = 200;
        let counter = AtomicU64::new(0);
        Pool::with(4, |pool| {
            for round in 0..ROUNDS {
                pool.broadcast(&|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                // The barrier property: after a broadcast returns, every
                // slice of this round has run.
                assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 4);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), ROUNDS * 4);
    }

    #[test]
    fn jobs_borrow_and_mutate_caller_state_through_per_worker_locks() {
        let data: Vec<u64> = (1..=10_000).collect();
        let partials: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        Pool::with(3, |pool| {
            pool.broadcast(&|w| {
                let chunk = data.len().div_ceil(3);
                let slice = data.chunks(chunk).nth(w).unwrap_or(&[]);
                *partials[w].lock().unwrap() += slice.iter().sum::<u64>();
            });
        });
        let total: u64 = partials.iter().map(|p| *p.lock().unwrap()).sum();
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn zero_threads_clamps_to_an_inline_pool() {
        let ran = AtomicU64::new(0);
        Pool::with(0, |pool| {
            assert_eq!(pool.threads(), 1);
            pool.broadcast(&|w| {
                assert_eq!(w, 0);
                ran.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
