//! The [`ExecutionBackend`] trait and its three engine implementations.

use parsecs_core::{ManyCoreSim, SimConfig, SimProbe};
use parsecs_ilp::{analyze, IlpModel};
use parsecs_isa::Program;
use parsecs_machine::Machine;

use crate::{DriverError, ReportDetail, RunReport};

/// Fuel used when the caller does not specify one: matches the many-core
/// simulator's default functional pre-execution budget.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// A uniform way to execute one [`Program`] on one of the three engines
/// (sequential reference machine, trace-based ILP analyzer, many-core
/// sectioned simulator) and get back a comparable [`RunReport`].
///
/// Backends are stateless with respect to programs — `execute` borrows the
/// backend immutably — and `Send + Sync`, so one backend can serve many
/// programs from many threads (the property [`crate::Sweep`] relies on).
pub trait ExecutionBackend: Send + Sync {
    /// A short, stable name identifying the backend and its configuration
    /// (used in reports and sweep labels).
    fn name(&self) -> String;

    /// Executes `program` with an explicit fuel (maximum dynamic
    /// instruction count for the functional execution).
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError`] when the program fails to load, does not
    /// halt within `fuel` instructions, faults, or the backend is
    /// misconfigured.
    fn execute_fueled(&self, program: &Program, fuel: u64) -> Result<RunReport, DriverError>;

    /// Executes `program` with [`DEFAULT_FUEL`].
    ///
    /// # Errors
    ///
    /// Same as [`ExecutionBackend::execute_fueled`].
    fn execute(&self, program: &Program) -> Result<RunReport, DriverError> {
        self.execute_fueled(program, DEFAULT_FUEL)
    }
}

/// Boxed backends execute by delegation, so `Runner`/`Sweep` can hold
/// heterogeneous backend lists.
impl ExecutionBackend for Box<dyn ExecutionBackend> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn execute_fueled(&self, program: &Program, fuel: u64) -> Result<RunReport, DriverError> {
        self.as_ref().execute_fueled(program, fuel)
    }
}

/// The sequential reference machine as a backend: one instruction per
/// cycle, and the dynamic [`parsecs_machine::Trace`] as detail.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialBackend;

impl ExecutionBackend for SequentialBackend {
    fn name(&self) -> String {
        "sequential".into()
    }

    fn execute_fueled(&self, program: &Program, fuel: u64) -> Result<RunReport, DriverError> {
        let mut machine = Machine::load(program)?;
        let (outcome, trace) = machine.run_traced(fuel)?;
        Ok(RunReport {
            backend: self.name(),
            outputs: outcome.outputs,
            instructions: outcome.instructions,
            // The reference machine models a scalar in-order core: one
            // instruction fetched and retired per cycle.
            cycles: outcome.instructions,
            fetch_ipc: 1.0,
            retire_ipc: 1.0,
            detail: ReportDetail::Trace(trace),
        })
    }
}

/// The trace-based ILP limit analyzer as a backend: the program is traced
/// on the reference machine and scheduled under an [`IlpModel`]; `cycles`
/// is the dataflow schedule length and both IPC fields report the
/// achieved ILP.
#[derive(Debug, Clone)]
pub struct IlpBackend {
    label: String,
    model: IlpModel,
}

impl IlpBackend {
    /// An analyzer backend under an explicit model, labelled for reports.
    pub fn new(label: impl Into<String>, model: IlpModel) -> IlpBackend {
        IlpBackend {
            label: label.into(),
            model,
        }
    }

    /// The paper's *parallel ideal* model (every destination renamed,
    /// control computed, stack-pointer dependences excluded).
    pub fn parallel_ideal() -> IlpBackend {
        IlpBackend::new("parallel-ideal", IlpModel::parallel_ideal())
    }

    /// The paper's *sequential oracle* model (unlimited register renaming
    /// and perfect prediction, but no memory renaming).
    pub fn sequential_oracle() -> IlpBackend {
        IlpBackend::new("sequential-oracle", IlpModel::sequential_oracle())
    }

    /// The dependence model this backend schedules under.
    pub fn model(&self) -> &IlpModel {
        &self.model
    }
}

impl ExecutionBackend for IlpBackend {
    fn name(&self) -> String {
        format!("ilp:{}", self.label)
    }

    fn execute_fueled(&self, program: &Program, fuel: u64) -> Result<RunReport, DriverError> {
        let mut machine = Machine::load(program)?;
        let (outcome, trace) = machine.run_traced(fuel)?;
        let result = analyze(&trace, &self.model);
        Ok(RunReport {
            backend: self.name(),
            outputs: outcome.outputs,
            instructions: result.instructions,
            cycles: result.cycles,
            fetch_ipc: result.ilp,
            retire_ipc: result.ilp,
            detail: ReportDetail::Ilp(result),
        })
    }
}

/// The many-core sectioned simulator as a backend: `cycles` is the last
/// retirement cycle and the full [`parsecs_core::SimResult`] rides along
/// as detail.
#[derive(Debug, Clone)]
pub struct ManyCoreBackend {
    config: SimConfig,
}

impl ManyCoreBackend {
    /// A simulator backend over an explicit configuration.
    pub fn new(config: SimConfig) -> ManyCoreBackend {
        ManyCoreBackend { config }
    }

    /// A simulator backend with `cores` cores and default parameters.
    pub fn with_cores(cores: usize) -> ManyCoreBackend {
        ManyCoreBackend::new(SimConfig::with_cores(cores))
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Turns on the pre-simulation static analysis (builder style): the
    /// run is rejected with a typed report when the trace arena violates
    /// the sectioned-trace invariants, and a clean
    /// [`parsecs_core::CheckReport`] rides along on [`RunReport::check`].
    pub fn validated(mut self) -> ManyCoreBackend {
        self.config.validate = true;
        self
    }

    /// Sets the event engine's worker-thread count (builder style) — see
    /// [`SimConfig::threads`]: above one, the run forks its fetch walk
    /// and drain rounds, bit-identically to the sequential path and only
    /// under a `Certified` static drain verdict.
    pub fn threaded(mut self, threads: usize) -> ManyCoreBackend {
        self.config.threads = threads;
        self
    }

    /// Like [`ExecutionBackend::execute`], with a telemetry probe
    /// observing the timing run (see
    /// [`parsecs_core::ManyCoreSim::simulate_arena_probed`]). Probes are
    /// monomorphized into the engine — [`parsecs_core::SimProbe`] is not
    /// object-safe — so this lives on the concrete backend rather than
    /// the trait; the produced [`RunReport`] is bit-identical to the
    /// unprobed one.
    ///
    /// # Errors
    ///
    /// Same as [`ExecutionBackend::execute`].
    pub fn execute_probed<P: SimProbe>(
        &self,
        program: &Program,
        probe: &mut P,
    ) -> Result<RunReport, DriverError> {
        self.execute_probed_fueled(program, self.config.fuel, probe)
    }

    /// [`ManyCoreBackend::execute_probed`] with an explicit fuel
    /// overriding the configuration's.
    ///
    /// # Errors
    ///
    /// Same as [`ExecutionBackend::execute_fueled`].
    pub fn execute_probed_fueled<P: SimProbe>(
        &self,
        program: &Program,
        fuel: u64,
        probe: &mut P,
    ) -> Result<RunReport, DriverError> {
        let mut config = self.config.clone();
        config.fuel = fuel;
        let result = ManyCoreSim::new(config).run_probed(program, probe)?;
        self.report(result)
    }

    /// Wraps a finished [`parsecs_core::SimResult`] as a [`RunReport`],
    /// refusing untrustworthy timings: a forced stall release means the
    /// stall/wake model broke down, surfaced as
    /// [`DriverError::Deadlock`] instead of a report.
    fn report(&self, result: parsecs_core::SimResult) -> Result<RunReport, DriverError> {
        if result.stats.forced_stall_releases > 0 {
            return Err(DriverError::Deadlock {
                forced_stall_releases: result.stats.forced_stall_releases,
            });
        }
        Ok(RunReport {
            backend: self.name(),
            outputs: result.outputs.clone(),
            instructions: result.stats.instructions,
            cycles: result.stats.total_cycles,
            fetch_ipc: result.stats.fetch_ipc,
            retire_ipc: result.stats.retire_ipc,
            detail: ReportDetail::Sim(Box::new(result)),
        })
    }
}

/// The backend label of a many-core configuration: a `manycore:…` prefix
/// with the core count and placement policy, then one `:suffix` per
/// setting that differs from [`SimConfig::default`] — the single place
/// every label suffix is assembled, so no two distinct sweep
/// configurations can share a label and no call site can disagree on
/// suffix order. Defaults follow the environment (`PARSECS_VALIDATE`,
/// `PARSECS_THREADS`), so forcing validation or threading on for a whole
/// suite leaves every label unchanged.
pub(crate) fn manycore_label(config: &SimConfig) -> String {
    let defaults = SimConfig::default();
    let mut name = format!("manycore:{}c:{}", config.cores, config.placement.name());
    if config.noc.base_latency != defaults.noc.base_latency
        || config.noc.per_hop_latency != defaults.noc.per_hop_latency
    {
        name.push_str(&format!(
            ":noc{}+{}",
            config.noc.base_latency, config.noc.per_hop_latency
        ));
    }
    if let Some(bandwidth) = config.noc.link_bandwidth {
        name.push_str(&format!(":bw{bandwidth}"));
    }
    if let Some(topology) = config.topology {
        name.push_str(&format!(":{}", topology.to_string().replace(' ', "-")));
    }
    if config.max_sections_per_core != defaults.max_sections_per_core {
        name.push_str(&format!(":cap{}", config.max_sections_per_core));
    }
    if config.dmh_latency != defaults.dmh_latency {
        name.push_str(&format!(":dmh{}", config.dmh_latency));
    }
    if config.per_section_hop != defaults.per_section_hop {
        name.push_str(&format!(":walk{}", config.per_section_hop));
    }
    if !config.fetch_stalls_on_unresolved_control {
        name.push_str(":nostall");
    }
    if !config.record_timings {
        name.push_str(":stats");
    }
    if config.threads != defaults.threads {
        name.push_str(&format!(":t{}", config.threads));
    }
    if config.validate != defaults.validate {
        name.push_str(if config.validate {
            ":validate"
        } else {
            ":novalidate"
        });
    }
    name
}

impl ExecutionBackend for ManyCoreBackend {
    /// Encodes the configuration through the crate's single
    /// `manycore_label` assembler — core count, placement policy, and
    /// every other setting that differs from [`SimConfig::default`] — so
    /// that no two distinct sweep configurations share a label.
    fn name(&self) -> String {
        manycore_label(&self.config)
    }

    /// Runs with the *configuration's* own fuel budget (unlike the trait
    /// default, which would substitute [`DEFAULT_FUEL`]).
    fn execute(&self, program: &Program) -> Result<RunReport, DriverError> {
        self.execute_fueled(program, self.config.fuel)
    }

    /// The explicit `fuel` overrides the configuration's `fuel` field.
    fn execute_fueled(&self, program: &Program, fuel: u64) -> Result<RunReport, DriverError> {
        let mut config = self.config.clone();
        config.fuel = fuel;
        let result = ManyCoreSim::new(config).run(program)?;
        self.report(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_machine::MachineError;
    use parsecs_workloads::sum;

    #[test]
    fn sequential_backend_reports_one_ipc_and_a_trace() {
        let program = sum::call_program(&[4, 2, 6, 4, 5]);
        let report = SequentialBackend.execute(&program).unwrap();
        assert_eq!(report.outputs, vec![21]);
        assert_eq!(report.cycles, report.instructions);
        assert_eq!(report.fetch_ipc, 1.0);
        assert_eq!(report.trace().unwrap().len() as u64, report.instructions);
        assert!(report.to_string().contains("sequential"));
    }

    #[test]
    fn ilp_backend_schedules_shorter_than_sequential() {
        let program = sum::call_program(&[4, 2, 6, 4, 5]);
        let parallel = IlpBackend::parallel_ideal().execute(&program).unwrap();
        let oracle = IlpBackend::sequential_oracle().execute(&program).unwrap();
        assert_eq!(parallel.outputs, vec![21]);
        assert!(parallel.cycles <= oracle.cycles);
        assert!(parallel.fetch_ipc >= oracle.fetch_ipc);
        assert!(parallel.ilp().is_some());
        assert_eq!(parallel.backend, "ilp:parallel-ideal");
    }

    #[test]
    fn manycore_backend_beats_one_fetch_ipc_on_forked_sum() {
        let program = sum::fork_program(&[4, 2, 6, 4, 5]);
        let report = ManyCoreBackend::with_cores(8).execute(&program).unwrap();
        assert_eq!(report.outputs, vec![21]);
        assert!(report.fetch_ipc > 1.0);
        assert!(report.fetch_cycles() <= report.cycles);
        assert_eq!(report.sim().unwrap().stats.sections, 6);
        assert_eq!(report.backend, "manycore:8c:round-robin");
        // The functional front-end's memory accounting rides along.
        let bytes = report
            .trace_arena_bytes()
            .expect("manycore builds an arena");
        assert!(bytes > 0);
        let per_insn = report.trace_bytes_per_instruction().unwrap();
        assert!(
            per_insn > 0.0 && per_insn < 250.0,
            "{per_insn:.1} B/insn out of range"
        );
        let sequential = SequentialBackend.execute(&program).unwrap();
        assert_eq!(sequential.trace_arena_bytes(), None);
    }

    #[test]
    fn fuel_is_respected() {
        let program = sum::call_program(&[1, 2, 3, 4]);
        let err = SequentialBackend.execute_fueled(&program, 3).unwrap_err();
        assert_eq!(
            err,
            DriverError::Machine(MachineError::OutOfFuel { steps: 3 })
        );
        let err = ManyCoreBackend::with_cores(4)
            .execute_fueled(&program, 3)
            .unwrap_err();
        assert!(matches!(err, DriverError::Sim(_)));
    }

    #[test]
    fn manycore_execute_respects_the_configs_own_fuel() {
        let program = sum::call_program(&[1, 2, 3, 4]);
        let mut starved = SimConfig::with_cores(4);
        starved.fuel = 3;
        // execute() uses the config's budget, not DEFAULT_FUEL...
        let err = ManyCoreBackend::new(starved.clone())
            .execute(&program)
            .unwrap_err();
        assert!(matches!(err, DriverError::Sim(_)));
        // ...while an explicit fuel overrides it.
        let report = ManyCoreBackend::new(starved)
            .execute_fueled(&program, 100_000)
            .unwrap();
        assert_eq!(report.outputs, vec![10]);
    }

    #[test]
    fn stats_only_reports_exact_stats_without_a_stage_table() {
        let program = sum::fork_program(&[4, 2, 6, 4, 5]);
        let full = ManyCoreBackend::with_cores(8).execute(&program).unwrap();
        let stats = ManyCoreBackend::new(SimConfig::with_cores(8).stats_only())
            .execute(&program)
            .unwrap();
        assert_eq!(stats.backend, "manycore:8c:round-robin:stats");
        // Aggregates are bit-identical across the two modes...
        assert_eq!(stats.outputs, full.outputs);
        assert_eq!(stats.cycles, full.cycles);
        assert_eq!(stats.fetch_ipc, full.fetch_ipc);
        assert_eq!(stats.sim().unwrap().stats, full.sim().unwrap().stats);
        // ...but only the recording run carries the stage table.
        assert_eq!(full.timings().unwrap().len() as u64, full.instructions);
        assert_eq!(stats.timings(), None);
        assert!(stats.sim().unwrap().timings.is_empty());
        // The footprint accounting reflects the dropped columns.
        let full_state = full.sim_state_bytes().unwrap();
        let stats_state = stats.sim_state_bytes().unwrap();
        assert!(
            stats_state < full_state / 3,
            "stats-only state {stats_state} should be far below full {full_state}"
        );
        assert!(stats.total_bytes_per_instruction().unwrap() > 0.0);
        assert_eq!(SequentialBackend.execute(&program).unwrap().timings(), None);
    }

    #[test]
    fn validated_backend_attaches_a_clean_report() {
        let program = sum::fork_program(&[4, 2, 6, 4, 5]);
        let plain = ManyCoreBackend::with_cores(8);
        let validated = ManyCoreBackend::with_cores(8).validated();
        // The label only changes relative to the session default, so a
        // PARSECS_VALIDATE=1 environment keeps every name stable.
        if !SimConfig::default().validate {
            assert_eq!(validated.name(), "manycore:8c:round-robin:validate");
        }
        let report = validated.execute(&program).unwrap();
        let check = report.check().expect("validated run carries a report");
        assert!(check.is_clean());
        assert_eq!(report.drain_certified(), Some(true));
        assert!(check.bounds.as_ref().unwrap().critical_path <= report.cycles);
        // Aside from the attachment (and possibly the label), the
        // validated run is identical.
        let baseline = plain.execute(&program).unwrap();
        assert_eq!(baseline.cycles, report.cycles);
        assert_eq!(baseline.outputs, report.outputs);
        if !SimConfig::default().validate {
            assert_eq!(baseline.check(), None);
            assert_eq!(baseline.drain_certified(), None);
        }
    }

    #[test]
    fn manycore_names_distinguish_every_ablation_axis() {
        let mut config = SimConfig::with_cores(16);
        config.noc.link_bandwidth = Some(2);
        config.dmh_latency = 7;
        config.max_sections_per_core = 2;
        config.per_section_hop = 4;
        config.fetch_stalls_on_unresolved_control = false;
        let name = ManyCoreBackend::new(config).name();
        assert_eq!(name, "manycore:16c:round-robin:bw2:cap2:dmh7:walk4:nostall");
        assert_ne!(
            ManyCoreBackend::with_cores(16).name(),
            ManyCoreBackend::new(SimConfig::with_cores(16).with_placement(parsecs_core::LoadAware))
                .name()
        );
    }

    #[test]
    fn manycore_label_assembles_every_suffix_in_one_place() {
        // Threading gets its own suffix, stacked in the helper's fixed
        // order after `:stats` — only relative to the (env-following)
        // default, so a PARSECS_THREADS environment keeps names stable.
        let default_threads = SimConfig::default().threads;
        let threaded = ManyCoreBackend::with_cores(8).threaded(default_threads + 3);
        assert_eq!(
            threaded.name(),
            format!("manycore:8c:round-robin:t{}", default_threads + 3)
        );
        assert_eq!(
            ManyCoreBackend::with_cores(8)
                .threaded(default_threads)
                .name(),
            "manycore:8c:round-robin"
        );
        let stacked = ManyCoreBackend::new(
            SimConfig::with_cores(8)
                .stats_only()
                .with_threads(default_threads + 1),
        );
        assert_eq!(
            stacked.name(),
            format!("manycore:8c:round-robin:stats:t{}", default_threads + 1)
        );
        // The backend's public name and the helper agree by construction.
        assert_eq!(stacked.name(), manycore_label(stacked.config()));
    }
}
