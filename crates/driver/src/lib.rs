//! # parsecs-driver — one API over the three engines
//!
//! The paper's evaluation runs the *same* programs through three engines:
//! the sequential reference machine (Figures 2–4), the trace-based ILP
//! limit analyzer (Figure 7), and the many-core sectioned simulator
//! (Figure 10, §5). This crate gives those engines one uniform surface:
//!
//! * [`ExecutionBackend`] — `execute(&Program) -> RunReport`, implemented
//!   by [`SequentialBackend`], [`IlpBackend`] and [`ManyCoreBackend`];
//! * [`RunReport`] — the shared result shape (outputs, dynamic
//!   instruction count, cycles, fetch/retire IPC) plus a typed
//!   [`ReportDetail`] carrying each engine's extras;
//! * [`Runner`] — a builder for running one program on one or more
//!   backends;
//! * [`Sweep`] — a design-space sweep fanning programs across backend
//!   configurations on a thread pool, with JSON emission
//!   ([`sweep_to_json`]) for benchmark artefacts.
//!
//! ## Example: one program, all three engines
//!
//! ```
//! use parsecs_driver::{IlpBackend, ManyCoreBackend, Runner, SequentialBackend};
//! use parsecs_workloads::sum;
//!
//! let program = sum::fork_program(&[4, 2, 6, 4, 5]);
//! let reports = Runner::new(&program)
//!     .fuel(100_000)
//!     .on(SequentialBackend)
//!     .on(IlpBackend::parallel_ideal())
//!     .on(ManyCoreBackend::with_cores(8))
//!     .run_all()?;
//! for report in &reports {
//!     println!("{report}");
//!     assert_eq!(report.outputs, vec![21]);
//! }
//! # Ok::<(), parsecs_driver::DriverError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod error;
mod report;
mod runner;
mod sweep;

pub use backend::{ExecutionBackend, IlpBackend, ManyCoreBackend, SequentialBackend, DEFAULT_FUEL};
pub use error::DriverError;
pub use report::{ReportDetail, RunReport};
pub use runner::Runner;
pub use sweep::{sweep_to_json, Sweep, SweepPoint};
