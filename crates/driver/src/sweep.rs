//! Design-space sweeps: fan programs across backend configurations on a
//! bounded thread pool, streaming results out in grid order.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use parsecs_isa::Program;

use crate::{DriverError, ExecutionBackend, ManyCoreBackend, RunReport};

/// One cell of a sweep: a `(program, backend)` pair and its outcome.
#[derive(Debug)]
pub struct SweepPoint {
    /// Label of the program swept.
    pub program: String,
    /// Name of the backend configuration.
    pub backend: String,
    /// The run's report, or the error that stopped it.
    pub outcome: Result<RunReport, DriverError>,
}

impl SweepPoint {
    /// The report, when the run succeeded.
    pub fn report(&self) -> Option<&RunReport> {
        self.outcome.as_ref().ok()
    }

    /// This point as one JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"program\":{}", json_string(&self.program)),
            format!("\"backend\":{}", json_string(&self.backend)),
            format!("\"ok\":{}", self.outcome.is_ok()),
        ];
        match &self.outcome {
            Ok(report) => {
                let outputs: Vec<String> = report.outputs.iter().map(u64::to_string).collect();
                fields.push(format!("\"outputs\":[{}]", outputs.join(",")));
                fields.push(format!("\"instructions\":{}", report.instructions));
                fields.push(format!("\"cycles\":{}", report.cycles));
                fields.push(format!("\"fetch_cycles\":{}", report.fetch_cycles()));
                fields.push(format!("\"fetch_ipc\":{}", json_f64(report.fetch_ipc)));
                fields.push(format!("\"retire_ipc\":{}", json_f64(report.retire_ipc)));
                if let Some(schedule) = report.schedule_bounds() {
                    fields.push(format!("\"lb_cycles\":{}", schedule.lb));
                    fields.push(format!(
                        "\"predicted_cycles\":{}",
                        schedule.predicted_cycles
                    ));
                    fields.push(format!(
                        "\"lb_tightness\":{}",
                        json_f64(schedule.tightness(report.cycles))
                    ));
                }
            }
            Err(e) => fields.push(format!("\"error\":{}", json_string(&e.to_string()))),
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// Renders sweep results as one pretty-printed JSON array (one object per
/// line, ready for `BENCH_sweep.json`-style artefacts).
pub fn sweep_to_json(points: &[SweepPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| format!("  {}", p.to_json()))
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Fans a list of labelled programs across a list of backend
/// configurations, executing the cells concurrently on scoped OS threads,
/// and returns one [`SweepPoint`] per `(program, backend)` cell in grid
/// order (programs outermost).
///
/// ```
/// use parsecs_driver::{Sweep};
/// use parsecs_workloads::sum;
///
/// let points = Sweep::new()
///     .fuel(100_000)
///     .program("sum-5", sum::fork_program(&[4, 2, 6, 4, 5]))
///     .manycore_cores(&[1, 4])
///     .run();
/// assert_eq!(points.len(), 2);
/// assert!(points.iter().all(|p| p.report().unwrap().outputs == vec![21]));
/// ```
#[derive(Default)]
pub struct Sweep {
    fuel: Option<u64>,
    threads: Option<usize>,
    programs: Vec<(String, Program)>,
    backends: Vec<Box<dyn ExecutionBackend>>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Sets an explicit fuel for every cell. Without it, each backend
    /// runs with its own default budget ([`crate::DEFAULT_FUEL`], or the
    /// configuration's `fuel` for a [`ManyCoreBackend`]).
    pub fn fuel(mut self, fuel: u64) -> Sweep {
        self.fuel = Some(fuel);
        self
    }

    /// Caps the number of worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Sweep {
        self.threads = Some(threads.max(1));
        self
    }

    /// Adds one labelled program (call repeatedly for a workload ×
    /// dataset-size grid).
    pub fn program(mut self, label: impl Into<String>, program: Program) -> Sweep {
        self.programs.push((label.into(), program));
        self
    }

    /// Adds one backend configuration.
    pub fn backend(mut self, backend: impl ExecutionBackend + 'static) -> Sweep {
        self.backends.push(Box::new(backend));
        self
    }

    /// Adds one default-configured [`ManyCoreBackend`] per core count —
    /// the chip-size axis of the paper's design space.
    pub fn manycore_cores(mut self, counts: &[usize]) -> Sweep {
        for &cores in counts {
            self.backends
                .push(Box::new(ManyCoreBackend::with_cores(cores)));
        }
        self
    }

    /// Number of cells the sweep will run.
    pub fn len(&self) -> usize {
        self.programs.len() * self.backends.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs every cell and returns the points in grid order.
    pub fn run(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        self.run_with(|point| points.push(point));
        points
    }

    /// Runs every cell on a bounded worker pool (at most
    /// `available_parallelism` threads unless capped tighter with
    /// [`Sweep::threads`]) and hands each finished [`SweepPoint`] to
    /// `on_point` **in grid order, as soon as it is ready**. Unlike
    /// [`Sweep::run`], nothing is retained after the callback returns,
    /// and workers do not claim cells more than a small window ahead of
    /// the emission front, so a large grid's memory footprint is bounded
    /// by that window instead of the whole result set — a `RunReport` of
    /// the many-core backend carries the full per-instruction stage
    /// table, so this matters.
    ///
    /// Returns the number of cells run.
    pub fn run_with(&self, mut on_point: impl FnMut(SweepPoint)) -> usize {
        let cells = self.len();
        if cells == 0 {
            return 0;
        }
        let hardware = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = self.threads.unwrap_or(hardware).min(cells).max(1);
        // At most this many finished-but-unemitted points exist at once:
        // a worker does not claim a cell further than the window ahead of
        // the emission front. The worker on the front cell itself is
        // never gated (its cell index equals the front), so the pipeline
        // cannot stall.
        let window = 2 * workers;

        let next = AtomicUsize::new(0);
        let next = &next;
        let emitted = AtomicUsize::new(0);
        let emitted = &emitted;
        let (tx, rx) = mpsc::sync_channel::<(usize, SweepPoint)>(workers);
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let cell = next.fetch_add(1, Ordering::Relaxed);
                    if cell >= cells {
                        break;
                    }
                    // Backpressure: wait for the emission front before
                    // running far-ahead cells, so a slow front cell (or a
                    // slow consumer) cannot make the reorder buffer grow
                    // toward the whole grid.
                    while cell > emitted.load(Ordering::Acquire) + window {
                        thread::park_timeout(std::time::Duration::from_millis(1));
                    }
                    let (label, program) = &self.programs[cell / self.backends.len()];
                    let backend = &self.backends[cell % self.backends.len()];
                    let outcome = match self.fuel {
                        Some(fuel) => backend.execute_fueled(program, fuel),
                        None => backend.execute(program),
                    };
                    let point = SweepPoint {
                        program: label.clone(),
                        backend: backend.name(),
                        outcome,
                    };
                    if tx.send((cell, point)).is_err() {
                        break; // receiver gone: the scope is unwinding
                    }
                });
            }
            drop(tx);

            // Reorder buffer: emit points in grid order as soon as the
            // next expected cell has arrived.
            let mut pending: BTreeMap<usize, SweepPoint> = BTreeMap::new();
            let mut next_emit = 0usize;
            for (cell, point) in rx {
                pending.insert(cell, point);
                while let Some(point) = pending.remove(&next_emit) {
                    on_point(point);
                    next_emit += 1;
                    emitted.store(next_emit, Ordering::Release);
                }
            }
            debug_assert!(pending.is_empty());
        });
        cells
    }

    /// Runs every cell, streaming each point's JSON row to `out` as soon
    /// as it is ready (one object per line, a well-formed JSON array once
    /// the sweep finishes). Combined with the bounded pool this keeps the
    /// memory footprint of arbitrarily large grids flat: no point is
    /// buffered after its row is written.
    ///
    /// # Errors
    ///
    /// Returns the first write error.
    pub fn run_json<W: Write>(&self, out: W) -> io::Result<usize> {
        self.run_json_with(out, |_| {})
    }

    /// Like [`Sweep::run_json`], but also hands each point to `on_point`
    /// (still in grid order, before its row is written) — the hook a
    /// repro binary uses to print a progress table while the artefact
    /// streams, without duplicating the array framing.
    ///
    /// # Errors
    ///
    /// Returns the first write error.
    pub fn run_json_with<W: Write>(
        &self,
        mut out: W,
        mut on_point: impl FnMut(&SweepPoint),
    ) -> io::Result<usize> {
        out.write_all(b"[\n")?;
        let mut write_error = None;
        let mut emitted = 0usize;
        let cells = self.run_with(|point| {
            on_point(&point);
            if write_error.is_some() {
                return;
            }
            let row = point.to_json();
            let result = if emitted == 0 {
                write!(out, "  {row}")
            } else {
                write!(out, ",\n  {row}")
            }
            .and_then(|()| out.flush());
            if let Err(e) = result {
                write_error = Some(e);
            }
            emitted += 1;
        });
        if let Some(e) = write_error {
            return Err(e);
        }
        out.write_all(b"\n]\n")?;
        out.flush()?;
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IlpBackend, SequentialBackend};
    use parsecs_workloads::sum;

    #[test]
    fn grid_order_is_programs_outermost() {
        let points = Sweep::new()
            .fuel(100_000)
            .program("a", sum::fork_program(&[1, 2]))
            .program("b", sum::fork_program(&[3, 4]))
            .backend(SequentialBackend)
            .manycore_cores(&[4])
            .run();
        let labels: Vec<(String, String)> = points
            .iter()
            .map(|p| (p.program.clone(), p.backend.clone()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("a".into(), "sequential".into()),
                ("a".into(), "manycore:4c:round-robin".into()),
                ("b".into(), "sequential".into()),
                ("b".into(), "manycore:4c:round-robin".into()),
            ]
        );
        assert_eq!(points[0].report().unwrap().outputs, vec![3]);
        assert_eq!(points[2].report().unwrap().outputs, vec![7]);
    }

    #[test]
    fn all_three_engines_sweep_concurrently_and_agree() {
        let data: Vec<u64> = (1..=16).collect();
        let points = Sweep::new()
            .fuel(1_000_000)
            .program("sum-16", sum::fork_program(&data))
            .backend(SequentialBackend)
            .backend(IlpBackend::parallel_ideal())
            .manycore_cores(&[1, 2, 8])
            .run();
        assert_eq!(points.len(), 5);
        for point in &points {
            assert_eq!(
                point.report().unwrap().outputs,
                vec![136],
                "{}",
                point.backend
            );
        }
    }

    #[test]
    fn failing_cells_report_errors_without_poisoning_the_rest() {
        let points = Sweep::new()
            .fuel(4)
            .program(
                "starved",
                sum::call_program(&(1..=64).collect::<Vec<u64>>()),
            )
            .backend(SequentialBackend)
            .run();
        assert_eq!(points.len(), 1);
        assert!(points[0].outcome.is_err());
        let json = sweep_to_json(&points);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"error\""));
    }

    #[test]
    fn json_escapes_and_shapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
        let points = Sweep::new()
            .fuel(10_000)
            .program("sum", sum::fork_program(&[4, 2, 6, 4, 5]))
            .manycore_cores(&[4])
            .run();
        let json = sweep_to_json(&points);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"fetch_cycles\""));
        assert!(json.contains("\"outputs\":[21]"));
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(Sweep::new().is_empty());
        assert!(Sweep::new().run().is_empty());
        assert_eq!(Sweep::new().run_with(|_| panic!("no cells")), 0);
        let mut out = Vec::new();
        assert_eq!(Sweep::new().run_json(&mut out).unwrap(), 0);
        assert_eq!(String::from_utf8(out).unwrap(), "[\n\n]\n");
    }

    #[test]
    fn run_with_streams_points_in_grid_order() {
        let sweep = Sweep::new()
            .fuel(100_000)
            .program("a", sum::fork_program(&[1, 2]))
            .program("b", sum::fork_program(&[3, 4]))
            .backend(SequentialBackend)
            .manycore_cores(&[2, 4]);
        let mut seen = Vec::new();
        let cells = sweep.run_with(|point| {
            seen.push((point.program.clone(), point.backend.clone()));
        });
        assert_eq!(cells, 6);
        assert_eq!(seen.len(), 6);
        // Grid order: programs outermost, backends in registration order.
        assert_eq!(
            seen,
            vec![
                ("a".into(), "sequential".into()),
                ("a".into(), "manycore:2c:round-robin".into()),
                ("a".into(), "manycore:4c:round-robin".into()),
                ("b".into(), "sequential".into()),
                ("b".into(), "manycore:2c:round-robin".into()),
                ("b".into(), "manycore:4c:round-robin".into()),
            ]
        );
    }

    #[test]
    fn run_json_streams_the_same_array_sweep_to_json_builds() {
        let build = || {
            Sweep::new()
                .fuel(100_000)
                .program("sum", sum::fork_program(&[4, 2, 6, 4, 5]))
                .backend(SequentialBackend)
                .manycore_cores(&[4])
        };
        let mut streamed = Vec::new();
        build().run_json(&mut streamed).unwrap();
        let streamed = String::from_utf8(streamed).unwrap();
        let buffered = sweep_to_json(&build().run());
        assert_eq!(streamed, buffered);
        assert!(streamed.contains("\"outputs\":[21]"));
    }
}
