//! Design-space sweeps: fan programs across backend configurations on a
//! thread pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use parsecs_isa::Program;

use crate::{DriverError, ExecutionBackend, ManyCoreBackend, RunReport};

/// One cell of a sweep: a `(program, backend)` pair and its outcome.
#[derive(Debug)]
pub struct SweepPoint {
    /// Label of the program swept.
    pub program: String,
    /// Name of the backend configuration.
    pub backend: String,
    /// The run's report, or the error that stopped it.
    pub outcome: Result<RunReport, DriverError>,
}

impl SweepPoint {
    /// The report, when the run succeeded.
    pub fn report(&self) -> Option<&RunReport> {
        self.outcome.as_ref().ok()
    }

    /// This point as one JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"program\":{}", json_string(&self.program)),
            format!("\"backend\":{}", json_string(&self.backend)),
            format!("\"ok\":{}", self.outcome.is_ok()),
        ];
        match &self.outcome {
            Ok(report) => {
                let outputs: Vec<String> = report.outputs.iter().map(u64::to_string).collect();
                fields.push(format!("\"outputs\":[{}]", outputs.join(",")));
                fields.push(format!("\"instructions\":{}", report.instructions));
                fields.push(format!("\"cycles\":{}", report.cycles));
                fields.push(format!("\"fetch_cycles\":{}", report.fetch_cycles()));
                fields.push(format!("\"fetch_ipc\":{}", json_f64(report.fetch_ipc)));
                fields.push(format!("\"retire_ipc\":{}", json_f64(report.retire_ipc)));
            }
            Err(e) => fields.push(format!("\"error\":{}", json_string(&e.to_string()))),
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// Renders sweep results as one pretty-printed JSON array (one object per
/// line, ready for `BENCH_sweep.json`-style artefacts).
pub fn sweep_to_json(points: &[SweepPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| format!("  {}", p.to_json()))
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Fans a list of labelled programs across a list of backend
/// configurations, executing the cells concurrently on scoped OS threads,
/// and returns one [`SweepPoint`] per `(program, backend)` cell in grid
/// order (programs outermost).
///
/// ```
/// use parsecs_driver::{Sweep};
/// use parsecs_workloads::sum;
///
/// let points = Sweep::new()
///     .fuel(100_000)
///     .program("sum-5", sum::fork_program(&[4, 2, 6, 4, 5]))
///     .manycore_cores(&[1, 4])
///     .run();
/// assert_eq!(points.len(), 2);
/// assert!(points.iter().all(|p| p.report().unwrap().outputs == vec![21]));
/// ```
#[derive(Default)]
pub struct Sweep {
    fuel: Option<u64>,
    threads: Option<usize>,
    programs: Vec<(String, Program)>,
    backends: Vec<Box<dyn ExecutionBackend>>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Sets an explicit fuel for every cell. Without it, each backend
    /// runs with its own default budget ([`crate::DEFAULT_FUEL`], or the
    /// configuration's `fuel` for a [`ManyCoreBackend`]).
    pub fn fuel(mut self, fuel: u64) -> Sweep {
        self.fuel = Some(fuel);
        self
    }

    /// Caps the number of worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Sweep {
        self.threads = Some(threads.max(1));
        self
    }

    /// Adds one labelled program (call repeatedly for a workload ×
    /// dataset-size grid).
    pub fn program(mut self, label: impl Into<String>, program: Program) -> Sweep {
        self.programs.push((label.into(), program));
        self
    }

    /// Adds one backend configuration.
    pub fn backend(mut self, backend: impl ExecutionBackend + 'static) -> Sweep {
        self.backends.push(Box::new(backend));
        self
    }

    /// Adds one default-configured [`ManyCoreBackend`] per core count —
    /// the chip-size axis of the paper's design space.
    pub fn manycore_cores(mut self, counts: &[usize]) -> Sweep {
        for &cores in counts {
            self.backends
                .push(Box::new(ManyCoreBackend::with_cores(cores)));
        }
        self
    }

    /// Number of cells the sweep will run.
    pub fn len(&self) -> usize {
        self.programs.len() * self.backends.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs every cell and returns the points in grid order.
    pub fn run(&self) -> Vec<SweepPoint> {
        let cells = self.len();
        if cells == 0 {
            return Vec::new();
        }
        let hardware = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = self.threads.unwrap_or(hardware).min(cells).max(1);

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, SweepPoint)>> = Mutex::new(Vec::with_capacity(cells));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let cell = next.fetch_add(1, Ordering::Relaxed);
                    if cell >= cells {
                        break;
                    }
                    let (label, program) = &self.programs[cell / self.backends.len()];
                    let backend = &self.backends[cell % self.backends.len()];
                    let outcome = match self.fuel {
                        Some(fuel) => backend.execute_fueled(program, fuel),
                        None => backend.execute(program),
                    };
                    let point = SweepPoint {
                        program: label.clone(),
                        backend: backend.name(),
                        outcome,
                    };
                    collected
                        .lock()
                        .expect("no panics while holding the lock")
                        .push((cell, point));
                });
            }
        });

        let mut indexed = collected.into_inner().expect("workers joined");
        indexed.sort_by_key(|(cell, _)| *cell);
        indexed.into_iter().map(|(_, point)| point).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IlpBackend, SequentialBackend};
    use parsecs_workloads::sum;

    #[test]
    fn grid_order_is_programs_outermost() {
        let points = Sweep::new()
            .fuel(100_000)
            .program("a", sum::fork_program(&[1, 2]))
            .program("b", sum::fork_program(&[3, 4]))
            .backend(SequentialBackend)
            .manycore_cores(&[4])
            .run();
        let labels: Vec<(String, String)> = points
            .iter()
            .map(|p| (p.program.clone(), p.backend.clone()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("a".into(), "sequential".into()),
                ("a".into(), "manycore:4c:round-robin".into()),
                ("b".into(), "sequential".into()),
                ("b".into(), "manycore:4c:round-robin".into()),
            ]
        );
        assert_eq!(points[0].report().unwrap().outputs, vec![3]);
        assert_eq!(points[2].report().unwrap().outputs, vec![7]);
    }

    #[test]
    fn all_three_engines_sweep_concurrently_and_agree() {
        let data: Vec<u64> = (1..=16).collect();
        let points = Sweep::new()
            .fuel(1_000_000)
            .program("sum-16", sum::fork_program(&data))
            .backend(SequentialBackend)
            .backend(IlpBackend::parallel_ideal())
            .manycore_cores(&[1, 2, 8])
            .run();
        assert_eq!(points.len(), 5);
        for point in &points {
            assert_eq!(
                point.report().unwrap().outputs,
                vec![136],
                "{}",
                point.backend
            );
        }
    }

    #[test]
    fn failing_cells_report_errors_without_poisoning_the_rest() {
        let points = Sweep::new()
            .fuel(4)
            .program(
                "starved",
                sum::call_program(&(1..=64).collect::<Vec<u64>>()),
            )
            .backend(SequentialBackend)
            .run();
        assert_eq!(points.len(), 1);
        assert!(points[0].outcome.is_err());
        let json = sweep_to_json(&points);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"error\""));
    }

    #[test]
    fn json_escapes_and_shapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
        let points = Sweep::new()
            .fuel(10_000)
            .program("sum", sum::fork_program(&[4, 2, 6, 4, 5]))
            .manycore_cores(&[4])
            .run();
        let json = sweep_to_json(&points);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"fetch_cycles\""));
        assert!(json.contains("\"outputs\":[21]"));
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(Sweep::new().is_empty());
        assert!(Sweep::new().run().is_empty());
    }
}
