//! Driver errors.

use std::error::Error;
use std::fmt;

use parsecs_core::SimError;
use parsecs_machine::MachineError;

/// Errors produced while executing a program through a backend.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriverError {
    /// The reference machine failed (load error, out of fuel, bad access).
    Machine(MachineError),
    /// The many-core simulator failed.
    Sim(SimError),
    /// The many-core simulator's deadlock detector fired: the run only
    /// completed by forcibly releasing stalled fetch stages, so its
    /// timings are not trustworthy. Under the in-order fetch-stall
    /// handoff model this never happens on well-formed programs; any
    /// firing indicates a malformed trace or a simulator bug.
    Deadlock {
        /// How many stalled fetch stages the detector had to release.
        forced_stall_releases: u64,
    },
    /// The runner or sweep itself was misconfigured (e.g. no backend).
    Config(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Machine(e) => write!(f, "machine: {e}"),
            DriverError::Sim(e) => write!(f, "simulator: {e}"),
            DriverError::Deadlock {
                forced_stall_releases,
            } => write!(
                f,
                "simulator deadlock: {forced_stall_releases} forced stall release(s); \
                 the timing model is not trustworthy for this run"
            ),
            DriverError::Config(msg) => write!(f, "driver configuration: {msg}"),
        }
    }
}

impl Error for DriverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DriverError::Machine(e) => Some(e),
            DriverError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for DriverError {
    fn from(e: MachineError) -> DriverError {
        DriverError::Machine(e)
    }
}

impl From<SimError> for DriverError {
    fn from(e: SimError) -> DriverError {
        DriverError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: DriverError = MachineError::OutOfFuel { steps: 7 }.into();
        assert!(e.to_string().contains('7'));
        let e: DriverError = SimError::Config("no cores".into()).into();
        assert!(e.to_string().contains("no cores"));
        assert!(DriverError::Config("no backend".into())
            .to_string()
            .contains("no backend"));
    }
}
