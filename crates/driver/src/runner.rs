//! The builder-style entry point for running one program.

use parsecs_core::SimProbe;
use parsecs_isa::Program;

use crate::{DriverError, ExecutionBackend, ManyCoreBackend, RunReport};

/// Runs one program on one or more backends, builder style:
///
/// ```
/// use parsecs_driver::{ManyCoreBackend, Runner, SequentialBackend};
/// use parsecs_workloads::sum;
///
/// let program = sum::fork_program(&[4, 2, 6, 4, 5]);
/// let report = Runner::new(&program)
///     .fuel(100_000)
///     .on(ManyCoreBackend::with_cores(8))
///     .run()?;
/// assert_eq!(report.outputs, vec![21]);
///
/// let reports = Runner::new(&program)
///     .on(SequentialBackend)
///     .on(ManyCoreBackend::with_cores(8))
///     .run_all()?;
/// assert_eq!(reports[0].outputs, reports[1].outputs);
/// # Ok::<(), parsecs_driver::DriverError>(())
/// ```
pub struct Runner<'p> {
    program: &'p Program,
    fuel: Option<u64>,
    backends: Vec<Box<dyn ExecutionBackend>>,
}

impl<'p> Runner<'p> {
    /// A runner over `program` with no backend yet. Until [`Runner::fuel`]
    /// is called, each backend runs with its own default budget
    /// ([`crate::DEFAULT_FUEL`], or the configuration's `fuel` for a
    /// [`crate::ManyCoreBackend`]).
    pub fn new(program: &'p Program) -> Runner<'p> {
        Runner {
            program,
            fuel: None,
            backends: Vec::new(),
        }
    }

    /// Sets an explicit fuel (maximum dynamic instruction count) for
    /// every backend, overriding backend defaults.
    pub fn fuel(mut self, fuel: u64) -> Runner<'p> {
        self.fuel = Some(fuel);
        self
    }

    fn execute(&self, backend: &dyn ExecutionBackend) -> Result<RunReport, DriverError> {
        match self.fuel {
            Some(fuel) => backend.execute_fueled(self.program, fuel),
            None => backend.execute(self.program),
        }
    }

    /// Adds a backend to run on.
    pub fn on(mut self, backend: impl ExecutionBackend + 'static) -> Runner<'p> {
        self.backends.push(Box::new(backend));
        self
    }

    /// Runs on the single configured backend.
    ///
    /// # Errors
    ///
    /// [`DriverError::Config`] unless exactly one backend was added;
    /// otherwise whatever the backend reports.
    pub fn run(self) -> Result<RunReport, DriverError> {
        match self.backends.len() {
            1 => self.execute(self.backends[0].as_ref()),
            0 => Err(DriverError::Config(
                "Runner::run needs a backend; add one with .on(...)".into(),
            )),
            n => Err(DriverError::Config(format!(
                "Runner::run is for a single backend but {n} were added; use .run_all()"
            ))),
        }
    }

    /// Runs on the many-core simulator with a telemetry probe observing
    /// the run — e.g. a [`parsecs_core::ChromeTraceWriter`] streaming
    /// section-lifetime spans, or a [`parsecs_core::TimeSeries`] recorder.
    /// Probes are monomorphized into the engine
    /// ([`parsecs_core::SimProbe`] is not object-safe), so this terminal
    /// takes the concrete backend directly instead of going through
    /// `.on(...)`; the produced [`RunReport`] is bit-identical to an
    /// unprobed run of the same backend.
    ///
    /// # Errors
    ///
    /// [`DriverError::Config`] when other backends were added with
    /// `.on(...)` (this terminal runs exactly the one it is given);
    /// otherwise whatever the backend reports.
    pub fn with_probe<P: SimProbe>(
        self,
        backend: &ManyCoreBackend,
        probe: &mut P,
    ) -> Result<RunReport, DriverError> {
        if !self.backends.is_empty() {
            return Err(DriverError::Config(format!(
                "Runner::with_probe runs exactly the backend it is given, \
                 but {} other backend(s) were added with .on(...)",
                self.backends.len()
            )));
        }
        match self.fuel {
            Some(fuel) => backend.execute_probed_fueled(self.program, fuel, probe),
            None => backend.execute_probed(self.program, probe),
        }
    }

    /// Runs on every configured backend, in order, failing fast.
    ///
    /// # Errors
    ///
    /// [`DriverError::Config`] when no backend was added, or the first
    /// backend error.
    pub fn run_all(self) -> Result<Vec<RunReport>, DriverError> {
        if self.backends.is_empty() {
            return Err(DriverError::Config(
                "Runner::run_all needs at least one backend; add one with .on(...)".into(),
            ));
        }
        self.backends
            .iter()
            .map(|backend| self.execute(backend.as_ref()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IlpBackend, ManyCoreBackend, SequentialBackend};
    use parsecs_workloads::sum;

    #[test]
    fn single_backend_run() {
        let program = sum::call_program(&[1, 2, 3]);
        let report = Runner::new(&program).on(SequentialBackend).run().unwrap();
        assert_eq!(report.outputs, vec![6]);
    }

    #[test]
    fn run_all_preserves_backend_order_and_agrees_on_outputs() {
        let program = sum::fork_program(&[4, 2, 6, 4, 5]);
        let reports = Runner::new(&program)
            .fuel(100_000)
            .on(SequentialBackend)
            .on(IlpBackend::parallel_ideal())
            .on(ManyCoreBackend::with_cores(8))
            .run_all()
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].backend, "sequential");
        assert_eq!(reports[1].backend, "ilp:parallel-ideal");
        assert_eq!(reports[2].backend, "manycore:8c:round-robin");
        assert!(reports.iter().all(|r| r.outputs == vec![21]));
    }

    #[test]
    fn missing_and_ambiguous_backends_are_config_errors() {
        let program = sum::call_program(&[1]);
        assert!(matches!(
            Runner::new(&program).run(),
            Err(DriverError::Config(_))
        ));
        assert!(matches!(
            Runner::new(&program)
                .on(SequentialBackend)
                .on(SequentialBackend)
                .run(),
            Err(DriverError::Config(_))
        ));
        assert!(matches!(
            Runner::new(&program).run_all(),
            Err(DriverError::Config(_))
        ));
    }

    #[test]
    fn with_probe_matches_the_unprobed_report_bit_for_bit() {
        let program = sum::fork_program(&[4, 2, 6, 4, 5]);
        let backend = ManyCoreBackend::with_cores(8);
        let mut counting = parsecs_core::CountingProbe::default();
        let probed = Runner::new(&program)
            .fuel(100_000)
            .with_probe(&backend, &mut counting)
            .unwrap();
        let plain = Runner::new(&program)
            .fuel(100_000)
            .on(backend)
            .run()
            .unwrap();
        assert_eq!(probed, plain, "an observing probe must not steer");
        assert!(counting.events() > 0, "the probe observed nothing");
        // The always-on attribution table covers every configured core
        // and tiles the whole cycle budget.
        let attribution = probed.attribution().expect("many-core runs attribute");
        assert_eq!(attribution.len(), 8);
        assert!(attribution.iter().all(|b| b.total() == probed.cycles));
        let occupancy = probed.occupancy().unwrap();
        assert!(occupancy > 0.0 && occupancy <= 1.0);
    }

    #[test]
    fn with_probe_refuses_extra_backends() {
        let program = sum::call_program(&[1]);
        let err = Runner::new(&program)
            .on(SequentialBackend)
            .with_probe(
                &ManyCoreBackend::with_cores(4),
                &mut parsecs_core::NoopProbe,
            )
            .unwrap_err();
        assert!(matches!(err, DriverError::Config(_)));
    }

    #[test]
    fn fuel_propagates_to_backends() {
        let program = sum::call_program(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let err = Runner::new(&program)
            .fuel(2)
            .on(SequentialBackend)
            .run()
            .unwrap_err();
        assert!(matches!(err, DriverError::Machine(_)));
    }
}
