//! The shared run report every backend produces.

use std::fmt;

use parsecs_core::{
    CheckReport, CoreBreakdown, ForkFallback, InstTiming, Progress, ScheduleBounds, SimResult,
};
use parsecs_ilp::IlpResult;
use parsecs_machine::Trace;

/// Engine-specific extras attached to a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReportDetail {
    /// The dynamic trace recorded by the sequential reference machine.
    Trace(Trace),
    /// The schedule produced by the ILP limit analyzer.
    Ilp(IlpResult),
    /// The full per-instruction timing of the many-core simulator
    /// (boxed: a `SimResult` carries the whole stage table and would
    /// otherwise dominate the size of every report). For a **stats-only**
    /// run (`SimConfig::record_timings` off) the stage table inside is
    /// empty — aggregate statistics are exact, but the per-row accessors
    /// ([`RunReport::timings`], `SimResult::section_timings`) return
    /// `None`/empty views.
    Sim(Box<SimResult>),
}

/// What every backend reports about one program execution.
///
/// The shared fields mean the same thing across engines — `outputs` are
/// the values emitted by `out` instructions, `instructions` the dynamic
/// instruction count, `cycles` the number of cycles to the last
/// retirement under that engine's timing model — so reports from
/// different backends are directly comparable. Engine-specific extras
/// live in [`RunReport::detail`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Name of the backend that produced the report.
    pub backend: String,
    /// Values emitted by `out` instructions, in program order.
    pub outputs: Vec<u64>,
    /// Number of dynamic instructions executed.
    pub instructions: u64,
    /// Cycles to the last retirement under the backend's timing model.
    pub cycles: u64,
    /// Instructions fetched per cycle.
    pub fetch_ipc: f64,
    /// Instructions retired per cycle.
    pub retire_ipc: f64,
    /// Engine-specific extras.
    pub detail: ReportDetail,
}

impl RunReport {
    /// Cycles to the last *fetch*: the many-core simulator distinguishes
    /// fetch completion from retirement; the other engines fetch one
    /// instruction per modelled cycle.
    pub fn fetch_cycles(&self) -> u64 {
        match &self.detail {
            ReportDetail::Sim(sim) => sim.stats.fetch_cycles,
            ReportDetail::Trace(_) => self.instructions,
            ReportDetail::Ilp(_) => self.cycles,
        }
    }

    /// The dynamic trace, when the backend recorded one.
    pub fn trace(&self) -> Option<&Trace> {
        match &self.detail {
            ReportDetail::Trace(t) => Some(t),
            _ => None,
        }
    }

    /// The ILP schedule, when the backend is the analyzer.
    pub fn ilp(&self) -> Option<&IlpResult> {
        match &self.detail {
            ReportDetail::Ilp(r) => Some(r),
            _ => None,
        }
    }

    /// The simulator result, when the backend is the many-core model.
    pub fn sim(&self) -> Option<&SimResult> {
        match &self.detail {
            ReportDetail::Sim(r) => Some(r.as_ref()),
            _ => None,
        }
    }

    /// The per-instruction stage table, when the backend is the many-core
    /// model **and** the run recorded one. `None` both for the other
    /// backends and for stats-only simulations
    /// (`SimConfig::record_timings` off), whose aggregate statistics are
    /// exact but whose stage rows were never materialised.
    pub fn timings(&self) -> Option<&[InstTiming]> {
        self.sim()
            .filter(|r| r.timings_recorded)
            .map(|r| r.timings.as_slice())
    }

    /// Modeled resident bytes of the simulator's own per-run state
    /// (`None` for the other backends) — see
    /// [`SimResult::sim_state_bytes`]. Together with
    /// [`RunReport::trace_arena_bytes`] this is the run's total resident
    /// footprint.
    pub fn sim_state_bytes(&self) -> Option<u64> {
        self.sim().map(SimResult::sim_state_bytes)
    }

    /// Total resident footprint — trace arena plus simulator state — per
    /// simulated instruction (`None` for the other backends). The number
    /// the chip-scale benchmarks gate: a stats-only run over a lean arena
    /// holds well under 80 B/instruction, which is what lets
    /// 100M-instruction cells fit.
    pub fn total_bytes_per_instruction(&self) -> Option<f64> {
        self.sim().map(SimResult::total_bytes_per_instruction)
    }

    /// Bytes held by the streaming trace arena the many-core run was
    /// simulated from (`None` for the other backends, which do not build
    /// one). This is the functional front-end's resident footprint — the
    /// number that caps how many instructions a chip-scale run can
    /// pre-execute.
    pub fn trace_arena_bytes(&self) -> Option<u64> {
        self.sim().map(|r| r.stats.trace_arena_bytes)
    }

    /// [`RunReport::trace_arena_bytes`] per simulated instruction.
    pub fn trace_bytes_per_instruction(&self) -> Option<f64> {
        self.sim().map(|r| r.stats.trace_bytes_per_instruction())
    }

    /// The pre-simulation static analysis report, when the backend is
    /// the many-core model **and** the run was validated
    /// (`SimConfig::validate` on, e.g. via
    /// [`crate::ManyCoreBackend::validated`]). Always a clean report —
    /// a run whose arena fails validation produces no report at all
    /// ([`crate::DriverError::Sim`] wrapping
    /// `parsecs_core::SimError::Invariant`).
    pub fn check(&self) -> Option<&CheckReport> {
        self.sim().and_then(|r| r.check.as_deref())
    }

    /// Whether the parallel-drain race certificate was issued for this
    /// run (`None` when the run was not validated — see
    /// [`RunReport::check`]).
    pub fn drain_certified(&self) -> Option<bool> {
        self.check().map(|report| report.drain.is_certified())
    }

    /// The configuration-aware progress verdict for this run's
    /// (placement × chip) cell: [`Progress::Proven`] with the longest
    /// wait chain, or [`Progress::PotentialCycle`] with a concrete
    /// section cycle. `None` when the run was not validated (the
    /// engines attach it alongside the rest of the report — see
    /// [`RunReport::check`]).
    pub fn progress(&self) -> Option<&Progress> {
        self.check().and_then(|report| report.progress.as_ref())
    }

    /// The configuration-aware schedule bounds for this run's
    /// (placement × chip) cell: the certified NoC-weighted lower bound
    /// and the list-schedule prediction. `None` unless the run was
    /// validated on the simulator backend.
    pub fn schedule_bounds(&self) -> Option<&ScheduleBounds> {
        self.check().and_then(|report| report.schedule.as_ref())
    }

    /// Whether the partition-agnostic walk certificate was issued for
    /// this run (`None` when the run was not validated).
    pub fn walk_certified(&self) -> Option<bool> {
        self.check().map(|report| report.walk.is_certified())
    }

    /// The typed record of a withheld parallel fork: `Some` when the run
    /// asked for threads but a static certificate (drain or walk) was
    /// withheld and it ran sequentially; `None` when no fork was
    /// requested, the fork ran, or the backend is not the many-core
    /// model. Never silent: a threaded run always reports either both
    /// certificates or this reason.
    pub fn fork_fallback(&self) -> Option<ForkFallback> {
        self.sim().and_then(|r| r.fork_fallback)
    }

    /// The per-core cycle attribution table, when the backend is the
    /// many-core model: one additive busy / stalled-by-cause / parked /
    /// idle breakdown per *configured* core, each summing to the run's
    /// `total_cycles` (see [`parsecs_core::SimStats::attribution`]).
    /// `None` for the other backends, which model no chip.
    pub fn attribution(&self) -> Option<&[CoreBreakdown]> {
        self.sim().map(|r| r.stats.attribution.as_slice())
    }

    /// Chip-wide fetch-slot occupancy in `[0, 1]` over all configured
    /// cores (`None` for the other backends) — see
    /// [`parsecs_core::SimStats::occupancy`].
    pub fn occupancy(&self) -> Option<f64> {
        self.sim().map(|r| r.stats.occupancy())
    }

    /// How many times the many-core simulator's deadlock *detector*
    /// forcibly released a stalled fetch stage (`None` for the other
    /// backends, which have no such machinery). Under the in-order
    /// fetch-stall handoff model every stall has an explicit release
    /// event, so this is zero on every well-formed run —
    /// [`crate::ManyCoreBackend`] refuses to produce a report at all
    /// (returning [`crate::DriverError::Deadlock`]) when it is not.
    pub fn forced_stall_releases(&self) -> Option<u64> {
        self.sim().map(|r| r.stats.forced_stall_releases)
    }
}

impl fmt::Display for RunReport {
    /// One line: backend, instruction count, cycles, IPCs and outputs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>10} insns {:>9} cycles  fetch IPC {:>8.2}  retire IPC {:>8.2}  outputs {:?}",
            self.backend,
            self.instructions,
            self.cycles,
            self.fetch_ipc,
            self.retire_ipc,
            self.outputs
        )
    }
}
