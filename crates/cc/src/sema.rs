//! Semantic checks.

use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, Function, Item, Stmt};
use crate::codegen::CompileOptions;
use crate::CcError;

/// Checks a parsed program: a zero-argument `main` exists, function names
/// are unique, calls match arities, and every identifier refers to a
/// parameter, a declared local, or a data array supplied by the
/// [`CompileOptions`].
///
/// # Errors
///
/// Returns [`CcError::Sema`] describing the first problem found.
pub fn check(items: &[Item], options: &CompileOptions) -> Result<(), CcError> {
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for item in items {
        let f = item.as_function();
        if arities.insert(&f.name, f.params.len()).is_some() {
            return Err(CcError::sema(format!(
                "function `{}` is defined twice",
                f.name
            )));
        }
        if f.params.len() > 6 {
            return Err(CcError::sema(format!(
                "function `{}` has {} parameters; at most 6 are supported",
                f.name,
                f.params.len()
            )));
        }
        let mut seen = HashSet::new();
        for p in &f.params {
            if !seen.insert(p) {
                return Err(CcError::sema(format!(
                    "parameter `{p}` of `{}` is duplicated",
                    f.name
                )));
            }
        }
    }
    match arities.get("main") {
        None => return Err(CcError::sema("no `main` function".to_string())),
        Some(0) => {}
        Some(n) => {
            return Err(CcError::sema(format!(
                "`main` must take no parameters, it takes {n}"
            )))
        }
    }

    let data_symbols: HashSet<&str> = options.data.iter().map(|(name, _)| name.as_str()).collect();
    for item in items {
        check_function(item.as_function(), &arities, &data_symbols)?;
    }
    Ok(())
}

fn check_function(
    f: &Function,
    arities: &HashMap<&str, usize>,
    data: &HashSet<&str>,
) -> Result<(), CcError> {
    let mut names: HashSet<String> = f.params.iter().cloned().collect();
    collect_locals(&f.body, &mut names, f)?;
    check_stmts(&f.body, &names, arities, data, f)
}

fn collect_locals(
    stmts: &[Stmt],
    names: &mut HashSet<String>,
    f: &Function,
) -> Result<(), CcError> {
    for stmt in stmts {
        match stmt {
            Stmt::Var(name, _) if !names.insert(name.clone()) => {
                return Err(CcError::sema(format!(
                    "variable `{name}` is declared twice in `{}`",
                    f.name
                )));
            }
            Stmt::Var(..) => {}
            Stmt::If(_, a, b) => {
                collect_locals(a, names, f)?;
                collect_locals(b, names, f)?;
            }
            Stmt::While(_, body) => collect_locals(body, names, f)?,
            _ => {}
        }
    }
    Ok(())
}

fn check_stmts(
    stmts: &[Stmt],
    names: &HashSet<String>,
    arities: &HashMap<&str, usize>,
    data: &HashSet<&str>,
    f: &Function,
) -> Result<(), CcError> {
    for stmt in stmts {
        match stmt {
            Stmt::Var(_, e) | Stmt::Return(e) | Stmt::Out(e) | Stmt::Expr(e) => {
                check_expr(e, names, arities, data, f)?;
            }
            Stmt::Assign(name, e) => {
                if !names.contains(name) {
                    return Err(CcError::sema(format!(
                        "assignment to undeclared variable `{name}` in `{}`",
                        f.name
                    )));
                }
                check_expr(e, names, arities, data, f)?;
            }
            Stmt::Store(base, index, value) => {
                check_expr(base, names, arities, data, f)?;
                check_expr(index, names, arities, data, f)?;
                check_expr(value, names, arities, data, f)?;
            }
            Stmt::If(c, a, b) => {
                check_expr(c, names, arities, data, f)?;
                check_stmts(a, names, arities, data, f)?;
                check_stmts(b, names, arities, data, f)?;
            }
            Stmt::While(c, body) => {
                check_expr(c, names, arities, data, f)?;
                check_stmts(body, names, arities, data, f)?;
            }
        }
    }
    Ok(())
}

fn check_expr(
    expr: &Expr,
    names: &HashSet<String>,
    arities: &HashMap<&str, usize>,
    data: &HashSet<&str>,
    f: &Function,
) -> Result<(), CcError> {
    match expr {
        Expr::Number(_) => Ok(()),
        Expr::Ident(name) => {
            if names.contains(name) || data.contains(name.as_str()) {
                Ok(())
            } else {
                Err(CcError::sema(format!(
                    "unknown identifier `{name}` in `{}`",
                    f.name
                )))
            }
        }
        Expr::Index(base, index) => {
            check_expr(base, names, arities, data, f)?;
            check_expr(index, names, arities, data, f)
        }
        Expr::Call(name, args) => {
            let arity = arities.get(name.as_str()).ok_or_else(|| {
                CcError::sema(format!("call to unknown function `{name}` in `{}`", f.name))
            })?;
            if *arity != args.len() {
                return Err(CcError::sema(format!(
                    "`{name}` takes {arity} argument(s), {} supplied in `{}`",
                    args.len(),
                    f.name
                )));
            }
            for a in args {
                check_expr(a, names, arities, data, f)?;
            }
            Ok(())
        }
        Expr::Bin(_, l, r) => {
            check_expr(l, names, arities, data, f)?;
            check_expr(r, names, arities, data, f)
        }
        Expr::Un(_, e) => check_expr(e, names, arities, data, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::Backend;
    use crate::{lexer, parser};

    fn check_src(src: &str, data: &[&str]) -> Result<(), CcError> {
        let items = parser::parse(&lexer::lex(src).unwrap()).unwrap();
        let mut options = CompileOptions::new(Backend::Calls);
        for name in data {
            options = options.with_data(*name, vec![0]);
        }
        check(&items, &options)
    }

    #[test]
    fn accepts_a_well_formed_program() {
        assert!(check_src(
            "fn helper(a, b) { return a + b; }
             fn main() { var x = helper(1, 2); out(x); }",
            &[]
        )
        .is_ok());
    }

    #[test]
    fn requires_main_without_parameters() {
        assert!(check_src("fn f() { return 0; }", &[]).is_err());
        assert!(check_src("fn main(x) { return x; }", &[]).is_err());
    }

    #[test]
    fn rejects_unknown_identifiers_and_functions() {
        let err = check_src("fn main() { out(x); }", &[]).unwrap_err();
        assert!(err.to_string().contains("unknown identifier"));
        let err = check_src("fn main() { out(f(1)); }", &[]).unwrap_err();
        assert!(err.to_string().contains("unknown function"));
    }

    #[test]
    fn data_arrays_are_visible() {
        assert!(check_src("fn main() { out(t[0]); }", &["t"]).is_ok());
        assert!(check_src("fn main() { out(t[0]); }", &[]).is_err());
    }

    #[test]
    fn rejects_arity_mismatch_and_duplicates() {
        let err = check_src(
            "fn f(a) { return a; }
             fn main() { out(f(1, 2)); }",
            &[],
        )
        .unwrap_err();
        assert!(err.to_string().contains("argument"));
        let err = check_src(
            "fn f(a, a) { return a; }
             fn main() { out(0); }",
            &[],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicated"));
        let err = check_src("fn main() { var x = 1; var x = 2; }", &[]).unwrap_err();
        assert!(err.to_string().contains("declared twice"));
        let err = check_src(
            "fn f() { return 0; } fn f() { return 1; } fn main() { out(0); }",
            &[],
        )
        .unwrap_err();
        assert!(err.to_string().contains("defined twice"));
    }

    #[test]
    fn rejects_assignment_to_undeclared_variable() {
        let err = check_src("fn main() { y = 3; }", &[]).unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }
}
