//! Abstract syntax of mini-C.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions. All values are 64-bit words; comparisons are signed and
/// yield 0 or 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Number(i64),
    /// Variable, parameter or data-array reference (the latter evaluates to
    /// the array's address).
    Ident(String),
    /// `base[index]` — loads the 64-bit word at `base + 8·index`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var x = expr;` — declares a local.
    Var(String, Expr),
    /// `x = expr;` — assigns a local or parameter.
    Assign(String, Expr),
    /// `base[index] = expr;` — stores a 64-bit word.
    Store(Expr, Expr, Expr),
    /// `if (cond) { … } else { … }` (else optional).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { … }`.
    While(Expr, Vec<Stmt>),
    /// `return expr;`
    Return(Expr),
    /// `out(expr);` — emit a value on the observation channel.
    Out(Expr),
    /// An expression evaluated for its side effects (typically a call).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (at most six).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A function definition.
    Function(Function),
}

impl Item {
    /// The function, if this item is one.
    pub fn as_function(&self) -> &Function {
        match self {
            Item::Function(f) => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_constructible_and_comparable() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Number(1)),
            Box::new(Expr::Ident("x".into())),
        );
        assert_eq!(e, e.clone());
        let f = Function {
            name: "f".into(),
            params: vec!["x".into()],
            body: vec![Stmt::Return(e)],
        };
        let item = Item::Function(f.clone());
        assert_eq!(item.as_function(), &f);
    }
}
