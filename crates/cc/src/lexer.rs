//! The mini-C lexer.

use crate::CcError;

/// A token with its source line (1-based), used for error reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token proper.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal.
    Number(i64),
    /// Identifier or keyword carrier.
    Ident(String),
    /// `fn`, `var`, `if`, `else`, `while`, `return`, `out`.
    Keyword(&'static str),
    /// Single punctuation / operator token.
    Punct(&'static str),
    /// End of input.
    Eof,
}

const KEYWORDS: [&str; 7] = ["fn", "var", "if", "else", "while", "return", "out"];

/// Multi-character operators, longest first.
const OPERATORS: [&str; 10] = ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")"];
const SINGLE: [char; 16] = [
    '(', ')', '{', '}', '[', ']', ',', ';', '=', '+', '-', '*', '&', '|', '^', '<',
];

/// Tokenises `source`.
///
/// # Errors
///
/// Returns [`CcError::Lex`] for characters the language does not use.
pub fn lex(source: &str) -> Result<Vec<Token>, CcError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: // … and # … to end of line.
        if c == '#' || (c == '/' && bytes.get(i + 1) == Some(&'/')) {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let value: i64 = text.parse().map_err(|_| {
                CcError::lex(line, format!("integer literal `{text}` is too large"))
            })?;
            tokens.push(Token {
                kind: TokenKind::Number(value),
                line,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let kind = match KEYWORDS.iter().find(|k| **k == text) {
                Some(k) => TokenKind::Keyword(k),
                None => TokenKind::Ident(text),
            };
            tokens.push(Token { kind, line });
            continue;
        }
        // Two-character operators.
        if i + 1 < bytes.len() {
            let pair: String = bytes[i..i + 2].iter().collect();
            if let Some(op) = OPERATORS.iter().find(|o| **o == pair && o.len() == 2) {
                tokens.push(Token {
                    kind: TokenKind::Punct(op),
                    line,
                });
                i += 2;
                continue;
            }
        }
        let single = match c {
            '(' => "(",
            ')' => ")",
            '{' => "{",
            '}' => "}",
            '[' => "[",
            ']' => "]",
            ',' => ",",
            ';' => ";",
            '=' => "=",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '&' => "&",
            '|' => "|",
            '^' => "^",
            '<' => "<",
            '>' => ">",
            '!' => "!",
            _ => {
                let _ = SINGLE; // documented set; the match above is the source of truth
                return Err(CcError::lex(line, format!("unexpected character `{c}`")));
            }
        };
        tokens.push(Token {
            kind: TokenKind::Punct(single),
            line,
        });
        i += 1;
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_small_function() {
        let toks = kinds("fn add(a, b) { return a + b; }");
        assert_eq!(toks[0], TokenKind::Keyword("fn"));
        assert_eq!(toks[1], TokenKind::Ident("add".into()));
        assert!(toks.contains(&TokenKind::Punct("+")));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers_operators_and_comments() {
        let toks = kinds("x = 42 << 2; // shift\n# another comment\ny = x >= 10;");
        assert!(toks.contains(&TokenKind::Number(42)));
        assert!(toks.contains(&TokenKind::Punct("<<")));
        assert!(toks.contains(&TokenKind::Punct(">=")));
        assert!(!toks
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(s) if s == "shift")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unknown_characters_are_rejected() {
        let err = lex("a = 1 @ 2;").unwrap_err();
        assert!(matches!(err, CcError::Lex { line: 1, .. }));
        let err = lex("x\ny = $3;").unwrap_err();
        assert!(matches!(err, CcError::Lex { line: 2, .. }));
    }

    #[test]
    fn keywords_are_distinguished_from_identifiers() {
        let toks = kinds("while whilex");
        assert_eq!(toks[0], TokenKind::Keyword("while"));
        assert_eq!(toks[1], TokenKind::Ident("whilex".into()));
    }
}
