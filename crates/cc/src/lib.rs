//! # parsecs-cc — a mini-C compiler targeting the parsecs ISA
//!
//! The paper's promise is that *unchanged C programs* can run in parallel
//! once `call`/`ret` are replaced by `fork`/`endfork` and the hardware
//! distributes the resulting sections. This crate provides the compiler
//! side of that story for a small, C-like language ("mini-C"):
//!
//! * a lexer, parser and semantic checker for functions, `var`
//!   declarations, assignments, array indexing, `if`/`while`/`return`,
//!   calls and the usual integer operators;
//! * a code generator producing [`parsecs_isa::Program`]s with a
//!   conventional `call`/`ret` backend ([`Backend::Calls`]);
//! * the paper's **fork transformation** ([`Backend::Forks`]): every call
//!   becomes a `fork`, every return an `endfork`, and the generated code
//!   relies on register copy at fork plus register/memory renaming for all
//!   cross-section communication — exactly the Figure 2 → Figure 5
//!   rewrite, applied mechanically to whole programs.
//!
//! ## Example
//!
//! ```
//! use parsecs_cc::{compile, Backend, CompileOptions};
//! use parsecs_machine::Machine;
//!
//! let source = r#"
//!     fn square(x) { return x * x; }
//!     fn main() { out(square(6) + 6); }
//! "#;
//! let options = CompileOptions::new(Backend::Calls);
//! let program = compile(source, &options)?;
//! let mut machine = Machine::load(&program).unwrap();
//! assert_eq!(machine.run(10_000).unwrap().outputs, vec![42]);
//! # Ok::<(), parsecs_cc::CcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod codegen;
mod error;
mod lexer;
mod parser;
mod sema;

pub use ast::{BinOp, Expr, Function, Item, Stmt, UnOp};
pub use codegen::{Backend, CompileOptions};
pub use error::CcError;

use parsecs_isa::Program;

/// Compiles a mini-C source text into a machine program.
///
/// # Errors
///
/// Returns a [`CcError`] for lexical, syntactic or semantic errors, or if
/// code generation produces an invalid program (which indicates a bug and
/// is reported rather than panicking).
pub fn compile(source: &str, options: &CompileOptions) -> Result<Program, CcError> {
    let tokens = lexer::lex(source)?;
    let items = parser::parse(&tokens)?;
    sema::check(&items, options)?;
    codegen::generate(&items, options)
}
