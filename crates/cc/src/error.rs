//! Compiler errors.

use std::error::Error;
use std::fmt;

use parsecs_isa::IsaError;

/// An error produced while compiling mini-C source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcError {
    /// A lexical error (unknown character, malformed number).
    Lex {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A semantic error (undefined variable or function, wrong arity, …).
    Sema {
        /// Explanation.
        message: String,
    },
    /// The generated program failed ISA-level validation (a compiler bug,
    /// surfaced as an error rather than a panic).
    Codegen(IsaError),
}

impl CcError {
    pub(crate) fn lex(line: usize, message: impl Into<String>) -> CcError {
        CcError::Lex {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn parse(line: usize, message: impl Into<String>) -> CcError {
        CcError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn sema(message: impl Into<String>) -> CcError {
        CcError::Sema {
            message: message.into(),
        }
    }
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Lex { line, message } => write!(f, "lexical error at line {line}: {message}"),
            CcError::Parse { line, message } => write!(f, "syntax error at line {line}: {message}"),
            CcError::Sema { message } => write!(f, "semantic error: {message}"),
            CcError::Codegen(e) => write!(f, "code generation produced an invalid program: {e}"),
        }
    }
}

impl Error for CcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CcError::Codegen(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CcError {
    fn from(e: IsaError) -> CcError {
        CcError::Codegen(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_line() {
        assert!(CcError::lex(3, "bad char").to_string().contains("line 3"));
        assert!(CcError::parse(9, "expected )")
            .to_string()
            .contains("line 9"));
        assert!(CcError::sema("unknown function f")
            .to_string()
            .contains("unknown function"));
    }
}
