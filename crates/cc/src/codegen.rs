//! Code generation: mini-C → parsecs ISA.
//!
//! The generator is deliberately simple (an accumulator/stack scheme with
//! all locals in the stack frame): the point of the reproduction is not
//! compiler optimisation but the paper's *execution model*, and keeping
//! every local in memory makes the call→fork rewrite trivially sound —
//! values that must cross a fork travel either in the fork-copied
//! registers (`%rbp`, `%rsp`, the argument registers) or through memory,
//! both of which the sectioned hardware renames.

use std::collections::HashMap;

use parsecs_isa::{AluOp, Cond, MemRef, Operand, Program, ProgramBuilder, Reg, UnaryOp};

use crate::ast::{BinOp, Expr, Function, Item, Stmt, UnOp};
use crate::CcError;

/// Which control-transfer instructions the backend emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Conventional `call`/`ret` code (the paper's Figure 2 shape).
    #[default]
    Calls,
    /// The paper's transformation: every call site becomes a `fork`, every
    /// function return an `endfork` (the Figure 5 shape). The run is then
    /// split into sections by the many-core hardware model.
    Forks,
}

/// Compilation options: backend selection and the data arrays visible to
/// the program as global symbols.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Code generation backend.
    pub backend: Backend,
    /// Named 64-bit-word arrays placed in the data segment; a mini-C
    /// identifier with the same name evaluates to the array's address.
    pub data: Vec<(String, Vec<u64>)>,
}

impl CompileOptions {
    /// Options for the given backend with no data arrays.
    pub fn new(backend: Backend) -> CompileOptions {
        CompileOptions {
            backend,
            data: Vec::new(),
        }
    }

    /// Adds a named data array (builder style).
    pub fn with_data(mut self, name: impl Into<String>, words: Vec<u64>) -> CompileOptions {
        self.data.push((name.into(), words));
        self
    }
}

/// Generates a program from checked items.
///
/// # Errors
///
/// Returns [`CcError::Codegen`] if the emitted program fails ISA
/// validation (a generator bug surfaced as an error).
pub fn generate(items: &[Item], options: &CompileOptions) -> Result<Program, CcError> {
    let mut builder = ProgramBuilder::new();
    for (name, words) in &options.data {
        builder.global_data(name, words);
    }
    for item in items {
        let mut ctx = FunctionContext::new(item.as_function(), options.backend);
        ctx.emit(&mut builder);
    }
    builder.build().map_err(CcError::from)
}

struct FunctionContext<'a> {
    function: &'a Function,
    backend: Backend,
    slots: HashMap<String, i64>,
}

impl<'a> FunctionContext<'a> {
    fn new(function: &'a Function, backend: Backend) -> FunctionContext<'a> {
        let mut slots = HashMap::new();
        for (i, p) in function.params.iter().enumerate() {
            slots.insert(p.clone(), -8 * (i as i64 + 1));
        }
        collect_locals(&function.body, &mut slots);
        FunctionContext {
            function,
            backend,
            slots,
        }
    }

    fn is_main(&self) -> bool {
        self.function.name == "main"
    }

    fn slot(&self, name: &str) -> Option<MemRef> {
        self.slots
            .get(name)
            .map(|off| MemRef::base_disp(Reg::Rbp, *off))
    }

    fn emit(&mut self, b: &mut ProgramBuilder) {
        b.label(self.function.name.clone());
        b.pushq(Reg::Rbp);
        b.movq(Reg::Rsp, Reg::Rbp);
        let frame = 8 * self.slots.len() as i64;
        if frame > 0 {
            b.subq(Operand::imm(frame), Reg::Rsp);
        }
        for (i, p) in self.function.params.iter().enumerate() {
            let slot = self.slot(p).expect("parameter has a slot");
            b.movq(Reg::ARG_REGS[i], slot);
        }
        self.stmts(&self.function.body, b);
        // Fall-through return of 0.
        b.movq(Operand::imm(0), Reg::Rax);
        self.epilogue(b);
    }

    fn epilogue(&self, b: &mut ProgramBuilder) {
        if self.is_main() {
            b.halt();
            return;
        }
        b.movq(Reg::Rbp, Reg::Rsp);
        b.popq(Reg::Rbp);
        match self.backend {
            Backend::Calls => b.ret(),
            Backend::Forks => b.endfork(),
        };
    }

    fn stmts(&self, stmts: &[Stmt], b: &mut ProgramBuilder) {
        for stmt in stmts {
            self.stmt(stmt, b);
        }
    }

    fn stmt(&self, stmt: &Stmt, b: &mut ProgramBuilder) {
        match stmt {
            Stmt::Var(name, value) | Stmt::Assign(name, value) => {
                self.expr(value, b);
                let slot = self.slot(name).expect("checked by sema");
                b.movq(Reg::Rax, slot);
            }
            Stmt::Store(base, index, value) => {
                self.expr(base, b);
                b.pushq(Reg::Rax);
                self.expr(index, b);
                b.pushq(Reg::Rax);
                self.expr(value, b);
                b.popq(Reg::Rcx);
                b.popq(Reg::Rbx);
                b.movq(Reg::Rax, Operand::mem_scaled(Reg::Rbx, Reg::Rcx, 8, 0));
            }
            Stmt::If(cond, then_body, else_body) => {
                let else_label = b.fresh_label("else");
                let end_label = b.fresh_label("endif");
                self.expr(cond, b);
                b.cmpq(Operand::imm(0), Reg::Rax);
                b.jcc(Cond::E, else_label.clone());
                self.stmts(then_body, b);
                b.jmp(end_label.clone());
                b.label(else_label);
                self.stmts(else_body, b);
                b.label(end_label);
            }
            Stmt::While(cond, body) => {
                let loop_label = b.fresh_label("loop");
                let end_label = b.fresh_label("endloop");
                b.label(loop_label.clone());
                self.expr(cond, b);
                b.cmpq(Operand::imm(0), Reg::Rax);
                b.jcc(Cond::E, end_label.clone());
                self.stmts(body, b);
                b.jmp(loop_label);
                b.label(end_label);
            }
            Stmt::Return(value) => {
                self.expr(value, b);
                self.epilogue(b);
            }
            Stmt::Out(value) => {
                self.expr(value, b);
                b.out(Reg::Rax);
            }
            Stmt::Expr(value) => {
                self.expr(value, b);
            }
        }
    }

    /// Evaluates an expression into `%rax`.
    fn expr(&self, expr: &Expr, b: &mut ProgramBuilder) {
        match expr {
            Expr::Number(value) => {
                b.movq(Operand::imm(*value), Reg::Rax);
            }
            Expr::Ident(name) => match self.slot(name) {
                Some(slot) => {
                    b.movq(slot, Reg::Rax);
                }
                None => {
                    // A data array: its address.
                    b.movq(Operand::sym(name.clone()), Reg::Rax);
                }
            },
            Expr::Index(base, index) => {
                self.expr(base, b);
                b.pushq(Reg::Rax);
                self.expr(index, b);
                b.movq(Reg::Rax, Reg::Rcx);
                b.popq(Reg::Rax);
                b.movq(Operand::mem_scaled(Reg::Rax, Reg::Rcx, 8, 0), Reg::Rax);
            }
            Expr::Call(name, args) => {
                for arg in args {
                    self.expr(arg, b);
                    b.pushq(Reg::Rax);
                }
                for i in (0..args.len()).rev() {
                    b.popq(Reg::ARG_REGS[i]);
                }
                match self.backend {
                    Backend::Calls => b.call(name.clone()),
                    Backend::Forks => b.fork(name.clone()),
                };
            }
            Expr::Bin(op, left, right) => {
                self.expr(left, b);
                b.pushq(Reg::Rax);
                self.expr(right, b);
                b.movq(Reg::Rax, Reg::Rcx);
                b.popq(Reg::Rax);
                self.binary(*op, b);
            }
            Expr::Un(op, inner) => {
                self.expr(inner, b);
                match op {
                    UnOp::Neg => {
                        b.unary(UnaryOp::Neg, Reg::Rax);
                    }
                    UnOp::Not => {
                        self.boolean_from_flags(
                            Cond::E,
                            |b| {
                                b.cmpq(Operand::imm(0), Reg::Rax);
                            },
                            b,
                        );
                    }
                }
            }
        }
    }

    /// Emits the operation `%rax = %rax op %rcx`.
    fn binary(&self, op: BinOp, b: &mut ProgramBuilder) {
        let alu = |b: &mut ProgramBuilder, op: AluOp| {
            b.alu(op, Reg::Rcx, Reg::Rax);
        };
        match op {
            BinOp::Add => alu(b, AluOp::Add),
            BinOp::Sub => alu(b, AluOp::Sub),
            BinOp::Mul => alu(b, AluOp::Imul),
            BinOp::And => alu(b, AluOp::And),
            BinOp::Or => alu(b, AluOp::Or),
            BinOp::Xor => alu(b, AluOp::Xor),
            BinOp::Shl => alu(b, AluOp::Shl),
            BinOp::Shr => alu(b, AluOp::Shr),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                let cond = match op {
                    BinOp::Lt => Cond::L,
                    BinOp::Le => Cond::Le,
                    BinOp::Gt => Cond::G,
                    BinOp::Ge => Cond::Ge,
                    BinOp::Eq => Cond::E,
                    _ => Cond::Ne,
                };
                self.boolean_from_flags(
                    cond,
                    |b| {
                        b.cmpq(Reg::Rcx, Reg::Rax);
                    },
                    b,
                );
            }
        }
    }

    /// Emits `compare`, then sets `%rax` to 1 if `cond` holds and 0
    /// otherwise (the ISA has no `setcc`, so a short branch is used —
    /// `mov` does not clobber the flags).
    fn boolean_from_flags(
        &self,
        cond: Cond,
        compare: impl FnOnce(&mut ProgramBuilder),
        b: &mut ProgramBuilder,
    ) {
        let done = b.fresh_label("setcc");
        compare(b);
        b.movq(Operand::imm(1), Reg::Rax);
        b.jcc(cond, done.clone());
        b.movq(Operand::imm(0), Reg::Rax);
        b.label(done);
    }
}

fn collect_locals(stmts: &[Stmt], slots: &mut HashMap<String, i64>) {
    for stmt in stmts {
        match stmt {
            Stmt::Var(name, _) if !slots.contains_key(name) => {
                let offset = -8 * (slots.len() as i64 + 1);
                slots.insert(name.clone(), offset);
            }
            Stmt::Var(..) => {}
            Stmt::If(_, a, b) => {
                collect_locals(a, slots);
                collect_locals(b, slots);
            }
            Stmt::While(_, body) => collect_locals(body, slots),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use parsecs_machine::Machine;
    use proptest::prelude::*;

    fn run(source: &str, options: &CompileOptions) -> Vec<u64> {
        let program = compile(source, options).expect("compiles");
        let mut machine = Machine::load(&program).expect("loads");
        machine.run(10_000_000).expect("halts").outputs
    }

    fn run_calls(source: &str) -> Vec<u64> {
        run(source, &CompileOptions::new(Backend::Calls))
    }

    #[test]
    fn arithmetic_and_locals() {
        let outputs = run_calls(
            "fn main() {
                var a = 6;
                var b = 7;
                var c = a * b + 1 - 2;
                out(c);
                out(c >> 2);
                out(c & 15);
                out(1 << 10);
             }",
        );
        assert_eq!(outputs, vec![41, 10, 9, 1024]);
    }

    #[test]
    fn comparisons_yield_zero_or_one() {
        let outputs = run_calls(
            "fn main() {
                out(3 < 5); out(5 < 3); out(3 <= 3);
                out(4 > 9); out(4 >= 4); out(7 == 7); out(7 != 7);
                out(0 - 1 < 1); out(!0); out(!42); out(-(5));
             }",
        );
        assert_eq!(outputs, vec![1, 0, 1, 0, 1, 1, 0, 1, 1, 0, (-5i64) as u64]);
    }

    #[test]
    fn control_flow() {
        let outputs = run_calls(
            "fn main() {
                var i = 0;
                var acc = 0;
                while (i < 10) {
                    if (i & 1) { acc = acc + i; } else { }
                    i = i + 1;
                }
                out(acc);
             }",
        );
        assert_eq!(outputs, vec![25]);
    }

    #[test]
    fn functions_and_recursion() {
        let outputs = run_calls(
            "fn fib(n) {
                if (n < 2) { return n; } else { }
                return fib(n - 1) + fib(n - 2);
             }
             fn main() { out(fib(15)); }",
        );
        assert_eq!(outputs, vec![610]);
    }

    #[test]
    fn data_arrays_and_stores() {
        let options = CompileOptions::new(Backend::Calls)
            .with_data("t", vec![5, 10, 15, 20])
            .with_data("scratch", vec![0; 4]);
        let outputs = run(
            "fn main() {
                var i = 0;
                while (i < 4) {
                    scratch[i] = t[i] * 2;
                    i = i + 1;
                }
                out(scratch[0] + scratch[1] + scratch[2] + scratch[3]);
             }",
            &options,
        );
        assert_eq!(outputs, vec![100]);
    }

    #[test]
    fn fork_backend_matches_call_backend_on_recursive_sum() {
        let source = "
            fn sum(t, n) {
                if (n == 1) { return t[0]; } else { }
                if (n == 2) { return t[0] + t[1]; } else { }
                var half = n >> 1;
                return sum(t, half) + sum(t + 8 * half, n - half);
            }
            fn main() { out(sum(data, 13)); }
        ";
        let data: Vec<u64> = (1..=13).collect();
        let expected: u64 = data.iter().sum();
        let calls = CompileOptions::new(Backend::Calls).with_data("data", data.clone());
        let forks = CompileOptions::new(Backend::Forks).with_data("data", data);
        assert_eq!(run(source, &calls), vec![expected]);
        assert_eq!(run(source, &forks), vec![expected]);
    }

    #[test]
    fn fork_backend_creates_many_sections() {
        let source = "
            fn sum(t, n) {
                if (n == 1) { return t[0]; } else { }
                if (n == 2) { return t[0] + t[1]; } else { }
                var half = n >> 1;
                return sum(t, half) + sum(t + 8 * half, n - half);
            }
            fn main() { out(sum(data, 16)); }
        ";
        let data: Vec<u64> = (1..=16).collect();
        let options = CompileOptions::new(Backend::Forks).with_data("data", data);
        let program = compile(source, &options).unwrap();
        let trace = parsecs_core_like_section_count(&program);
        assert!(trace > 10, "expected many sections, found {trace}");
    }

    /// Counts fork instructions executed — a lower bound on the number of
    /// sections the many-core model will create (parsecs-core depends on
    /// this crate, so the full section splitter cannot be used here).
    fn parsecs_core_like_section_count(program: &parsecs_isa::Program) -> usize {
        let mut machine = Machine::load(program).unwrap();
        let (_, trace) = machine.run_traced(10_000_000).unwrap();
        trace.count_kind(parsecs_machine::TraceKind::Fork)
    }

    #[test]
    fn nested_calls_across_expressions() {
        let outputs = run_calls(
            "fn double(x) { return x + x; }
             fn inc(x) { return x + 1; }
             fn main() { out(double(inc(3)) + inc(double(5))); }",
        );
        assert_eq!(outputs, vec![19]);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let err = compile("fn main() { out(missing); }", &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CcError::Sema { .. }));
        let err = compile("fn main() { out(1 +; }", &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CcError::Parse { .. }));
    }

    proptest! {
        #[test]
        fn expression_evaluation_matches_rust(a in -1000i64..1000, b in -1000i64..1000, c in 1i64..63) {
            let source = format!(
                "fn main() {{
                    out({a} + {b} * 3);
                    out(({a} - {b}) * ({a} + {b}));
                    out(({a} < {b}) + ({a} == {a}) * 10);
                    out(({b} ^ {a}) & 255);
                    out(1 << {c});
                 }}"
            );
            let outputs = run_calls(&source);
            prop_assert_eq!(outputs[0], a.wrapping_add(b.wrapping_mul(3)) as u64);
            prop_assert_eq!(outputs[1], (a.wrapping_sub(b)).wrapping_mul(a.wrapping_add(b)) as u64);
            prop_assert_eq!(outputs[2], (a < b) as u64 + 10);
            prop_assert_eq!(outputs[3], ((b ^ a) & 255) as u64);
            prop_assert_eq!(outputs[4], 1u64 << c);
        }

        #[test]
        fn fork_and_call_backends_agree_on_generated_reductions(len in 1usize..40, seed in 0u64..1000) {
            let data: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(2654435761).wrapping_add(seed) % 1000).collect();
            let source = format!(
                "fn reduce(t, n) {{
                    if (n == 1) {{ return t[0]; }} else {{ }}
                    var half = n >> 1;
                    return reduce(t, half) + reduce(t + 8 * half, n - half);
                 }}
                 fn main() {{ out(reduce(data, {len})); }}"
            );
            let expected: u64 = data.iter().sum();
            let calls = CompileOptions::new(Backend::Calls).with_data("data", data.clone());
            let forks = CompileOptions::new(Backend::Forks).with_data("data", data);
            prop_assert_eq!(run(&source, &calls), vec![expected]);
            prop_assert_eq!(run(&source, &forks), vec![expected]);
        }
    }
}
