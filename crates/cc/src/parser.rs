//! Recursive-descent parser for mini-C.

use crate::ast::{BinOp, Expr, Function, Item, Stmt, UnOp};
use crate::lexer::{Token, TokenKind};
use crate::CcError;

/// Parses a token stream into top-level items.
///
/// # Errors
///
/// Returns [`CcError::Parse`] with the offending line on malformed input.
pub fn parse(tokens: &[Token]) -> Result<Vec<Item>, CcError> {
    let mut parser = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !parser.at_eof() {
        items.push(Item::Function(parser.function()?));
    }
    Ok(items)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> &TokenKind {
        let kind = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CcError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CcError::parse(
                self.line(),
                format!("expected `{p}`, found {:?}", self.peek()),
            ))
        }
    }

    fn eat_keyword(&mut self, k: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(q) if *q == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: &str) -> Result<(), CcError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(CcError::parse(
                self.line(),
                format!("expected `{k}`, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, CcError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Ident(name) => Ok(name.clone()),
            other => Err(CcError::parse(
                line,
                format!("expected an identifier, found {other:?}"),
            )),
        }
    }

    fn function(&mut self) -> Result<Function, CcError> {
        self.expect_keyword("fn")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CcError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(CcError::parse(
                    self.line(),
                    "unterminated block".to_string(),
                ));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, CcError> {
        if self.eat_keyword("var") {
            let name = self.ident()?;
            self.expect_punct("=")?;
            let value = self.expression()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Var(name, value));
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let then_body = self.block()?;
            let else_body = if self.eat_keyword("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then_body, else_body));
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_keyword("return") {
            let value = self.expression()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value));
        }
        if self.eat_keyword("out") {
            self.expect_punct("(")?;
            let value = self.expression()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Out(value));
        }
        // Expression-led statements: assignment, store or bare expression.
        let line = self.line();
        let expr = self.expression()?;
        if self.eat_punct("=") {
            let value = self.expression()?;
            self.expect_punct(";")?;
            return match expr {
                Expr::Ident(name) => Ok(Stmt::Assign(name, value)),
                Expr::Index(base, index) => Ok(Stmt::Store(*base, *index, value)),
                _ => Err(CcError::parse(
                    line,
                    "only variables and array elements can be assigned".to_string(),
                )),
            };
        }
        self.expect_punct(";")?;
        Ok(Stmt::Expr(expr))
    }

    fn expression(&mut self) -> Result<Expr, CcError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, CcError> {
        let mut left = self.bitwise()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("<") => BinOp::Lt,
                TokenKind::Punct("<=") => BinOp::Le,
                TokenKind::Punct(">") => BinOp::Gt,
                TokenKind::Punct(">=") => BinOp::Ge,
                TokenKind::Punct("==") => BinOp::Eq,
                TokenKind::Punct("!=") => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let right = self.bitwise()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn bitwise(&mut self) -> Result<Expr, CcError> {
        let mut left = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("&") => BinOp::And,
                TokenKind::Punct("|") => BinOp::Or,
                TokenKind::Punct("^") => BinOp::Xor,
                _ => break,
            };
            self.bump();
            let right = self.shift()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn shift(&mut self) -> Result<Expr, CcError> {
        let mut left = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("<<") => BinOp::Shl,
                TokenKind::Punct(">>") => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let right = self.additive()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, CcError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("+") => BinOp::Add,
                TokenKind::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, CcError> {
        let mut left = self.unary()?;
        while matches!(self.peek(), TokenKind::Punct("*")) {
            self.bump();
            let right = self.unary()?;
            left = Expr::Bin(BinOp::Mul, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, CcError> {
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CcError> {
        let mut expr = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let index = self.expression()?;
                self.expect_punct("]")?;
                expr = Expr::Index(Box::new(expr), Box::new(index));
            } else if matches!(self.peek(), TokenKind::Punct("(")) {
                // Calls are only allowed on plain identifiers.
                let name = match &expr {
                    Expr::Ident(name) => name.clone(),
                    _ => {
                        return Err(CcError::parse(
                            self.line(),
                            "only named functions can be called".to_string(),
                        ))
                    }
                };
                self.bump();
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.expression()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                expr = Expr::Call(name, args);
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, CcError> {
        let line = self.line();
        match self.bump().clone() {
            TokenKind::Number(value) => Ok(Expr::Number(value)),
            TokenKind::Ident(name) => Ok(Expr::Ident(name)),
            TokenKind::Punct("(") => {
                let inner = self.expression()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            other => Err(CcError::parse(
                line,
                format!("expected an expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<Item> {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_a_function_with_params_and_return() {
        let items = parse_src("fn add(a, b) { return a + b; }");
        let f = items[0].as_function();
        assert_eq!(f.name, "add");
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(
            f.body,
            vec![Stmt::Return(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Ident("a".into())),
                Box::new(Expr::Ident("b".into()))
            ))]
        );
    }

    #[test]
    fn precedence_mul_before_add_before_compare() {
        let items = parse_src("fn f(a, b, c) { return a + b * c < 10; }");
        match &items[0].as_function().body[0] {
            Stmt::Return(Expr::Bin(BinOp::Lt, left, right)) => {
                assert!(matches!(**right, Expr::Number(10)));
                match &**left {
                    Expr::Bin(BinOp::Add, _, mul) => {
                        assert!(matches!(**mul, Expr::Bin(BinOp::Mul, _, _)))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow_and_arrays() {
        let items = parse_src(
            "fn main() {
                var i = 0;
                while (i < 10) {
                    if (t[i] > 5) { out(t[i]); } else { t[i] = 0; }
                    i = i + 1;
                }
             }",
        );
        let body = &items[0].as_function().body;
        assert!(matches!(body[0], Stmt::Var(..)));
        match &body[1] {
            Stmt::While(_, inner) => {
                assert!(matches!(inner[0], Stmt::If(..)));
                assert!(matches!(inner[1], Stmt::Assign(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_calls_and_nested_indexing() {
        let items = parse_src("fn main() { out(f(a[i], g(1) + 2)); }");
        match &items[0].as_function().body[0] {
            Stmt::Out(Expr::Call(name, args)) => {
                assert_eq!(name, "f");
                assert_eq!(args.len(), 2);
                assert!(matches!(args[0], Expr::Index(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn store_statement() {
        let items = parse_src("fn main() { t[i + 1] = 3 * j; }");
        assert!(matches!(items[0].as_function().body[0], Stmt::Store(..)));
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse(&lex("fn f( { }").unwrap()).unwrap_err();
        assert!(matches!(err, CcError::Parse { line: 1, .. }));
        let err = parse(&lex("fn f() {\n return 1 +;\n}").unwrap()).unwrap_err();
        assert!(matches!(err, CcError::Parse { line: 2, .. }));
        let err = parse(&lex("fn f() { 1 = 2; }").unwrap()).unwrap_err();
        assert!(matches!(err, CcError::Parse { .. }));
    }
}
