//! Chip topologies and hop distances.

use std::fmt;

/// Identifier of one core on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// The physical arrangement of cores, which determines hop distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A `width × height` 2-D mesh with XY routing.
    Mesh {
        /// Number of columns.
        width: usize,
        /// Number of rows.
        height: usize,
    },
    /// A unidirectionally-numbered bidirectional ring.
    Ring {
        /// Number of cores on the ring.
        size: usize,
    },
    /// An ideal crossbar: every pair of distinct cores is one hop apart.
    Crossbar {
        /// Number of cores.
        size: usize,
    },
}

impl Topology {
    /// A `width × height` mesh.
    pub fn mesh(width: usize, height: usize) -> Topology {
        Topology::Mesh { width, height }
    }

    /// A ring of `size` cores.
    pub fn ring(size: usize) -> Topology {
        Topology::Ring { size }
    }

    /// An ideal crossbar of `size` cores.
    pub fn crossbar(size: usize) -> Topology {
        Topology::Crossbar { size }
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        match *self {
            Topology::Mesh { width, height } => width * height,
            Topology::Ring { size } | Topology::Crossbar { size } => size,
        }
    }

    /// The (x, y) coordinates of a core in a mesh; cores are numbered row
    /// by row. For non-mesh topologies, y is always 0.
    pub fn coordinates(&self, core: CoreId) -> (usize, usize) {
        match *self {
            Topology::Mesh { width, .. } => (core.0 % width, core.0 / width),
            _ => (core.0, 0),
        }
    }

    /// Number of router hops between two cores (0 when they are equal).
    pub fn hops(&self, from: CoreId, to: CoreId) -> usize {
        if from == to {
            return 0;
        }
        match *self {
            Topology::Mesh { .. } => {
                let (ax, ay) = self.coordinates(from);
                let (bx, by) = self.coordinates(to);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::Ring { size } => {
                let d = from.0.abs_diff(to.0);
                d.min(size - d)
            }
            Topology::Crossbar { .. } => 1,
        }
    }

    /// Whether `core` is a valid identifier for this topology.
    pub fn contains(&self, core: CoreId) -> bool {
        core.0 < self.num_cores()
    }

    /// All core identifiers of the chip.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::Mesh { width, height } => write!(f, "{width}x{height} mesh"),
            Topology::Ring { size } => write!(f, "{size}-core ring"),
            Topology::Crossbar { size } => write!(f, "{size}-core crossbar"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mesh_coordinates_and_hops() {
        let t = Topology::mesh(4, 4);
        assert_eq!(t.num_cores(), 16);
        assert_eq!(t.coordinates(CoreId(0)), (0, 0));
        assert_eq!(t.coordinates(CoreId(5)), (1, 1));
        assert_eq!(t.coordinates(CoreId(15)), (3, 3));
        assert_eq!(t.hops(CoreId(0), CoreId(0)), 0);
        assert_eq!(t.hops(CoreId(0), CoreId(3)), 3);
        assert_eq!(t.hops(CoreId(0), CoreId(15)), 6);
        assert_eq!(t.hops(CoreId(5), CoreId(6)), 1);
    }

    #[test]
    fn ring_hops_wrap_around() {
        let t = Topology::ring(8);
        assert_eq!(t.hops(CoreId(0), CoreId(1)), 1);
        assert_eq!(t.hops(CoreId(0), CoreId(7)), 1);
        assert_eq!(t.hops(CoreId(0), CoreId(4)), 4);
        assert_eq!(t.hops(CoreId(2), CoreId(6)), 4);
    }

    #[test]
    fn crossbar_is_single_hop() {
        let t = Topology::crossbar(64);
        assert_eq!(t.hops(CoreId(3), CoreId(60)), 1);
        assert_eq!(t.hops(CoreId(3), CoreId(3)), 0);
    }

    #[test]
    fn membership_and_enumeration() {
        let t = Topology::mesh(3, 2);
        assert!(t.contains(CoreId(5)));
        assert!(!t.contains(CoreId(6)));
        assert_eq!(t.cores().count(), 6);
        assert_eq!(t.to_string(), "3x2 mesh");
    }

    proptest! {
        #[test]
        fn hops_are_a_metric(w in 1usize..8, h in 1usize..8, a in 0usize..64, b in 0usize..64, c in 0usize..64) {
            let t = Topology::mesh(w, h);
            let n = t.num_cores();
            let (a, b, c) = (CoreId(a % n), CoreId(b % n), CoreId(c % n));
            // Symmetry, identity, triangle inequality.
            prop_assert_eq!(t.hops(a, b), t.hops(b, a));
            prop_assert_eq!(t.hops(a, a), 0);
            prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        }
    }
}
