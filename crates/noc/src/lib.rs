//! # parsecs-noc — the network-on-chip substrate
//!
//! The paper's many-core processor connects its cores "by a Network-on-
//! Chip" over which section-creation messages, renaming requests, value
//! exports and retirement exports travel. The paper does not evaluate a
//! particular NoC; its hand-timed example (Figure 10) simply charges a
//! fixed number of cycles to reach the producer and come back. This crate
//! provides that substrate with explicit, configurable timing so the
//! many-core simulator (`parsecs-core`) can charge communication latency
//! per message and per hop:
//!
//! * [`Topology`] — 2-D mesh, ring or ideal crossbar with hop distances;
//! * [`Network`] — cycle-driven message delivery with per-hop latency and
//!   optional per-destination bandwidth;
//! * [`NocModel`] — a stateless cost view (per-message latency, ejection
//!   budget) for static analyses that price communication without
//!   simulating it;
//! * [`NocStats`] — message and hop counters.
//!
//! ## Example
//!
//! ```
//! use parsecs_noc::{CoreId, Network, NocConfig, Topology};
//!
//! let topology = Topology::mesh(4, 4);
//! let mut net: Network<&'static str> = Network::new(topology, NocConfig::default());
//! net.send(CoreId(0), CoreId(5), "hello", 10);
//! // One hop in x, one in y, plus one cycle of fixed overhead: arrives at 13.
//! assert!(net.deliver(12).is_empty());
//! let arrived = net.deliver(13);
//! assert_eq!(arrived.len(), 1);
//! assert_eq!(arrived[0].payload, "hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod network;
mod topology;

pub use model::NocModel;
pub use network::{Envelope, Network, NocConfig, NocStats};
pub use topology::{CoreId, Topology};
