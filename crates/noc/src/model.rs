//! A pure static cost view of the network.
//!
//! [`NocModel`] pairs a [`Topology`] with a [`NocConfig`] and answers
//! cost questions — per-message transit latency and the per-core
//! ejection budget — without constructing a [`Network`](crate::Network)
//! or carrying any delivery state. Static analyses (the schedule-bound
//! pass in `parsecs-check`) consume this view to re-weight dependence
//! edges with the concrete chip's communication costs; the dynamic
//! [`Network`](crate::Network) charges exactly the same
//! [`NocModel::hop_latency`] on injection, so a bound derived from the
//! model is a bound on what the simulator can observe.

use crate::{CoreId, NocConfig, Topology};

/// A stateless cost model of the on-chip network: the topology's hop
/// distances combined with the configured per-hop and base latencies
/// and the ejection bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocModel {
    topology: Topology,
    config: NocConfig,
}

impl NocModel {
    /// Builds the cost view for `topology` under `config` timing.
    pub fn new(topology: Topology, config: NocConfig) -> NocModel {
        NocModel { topology, config }
    }

    /// The chip topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The timing configuration.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// Transit latency of one message from `src` to `dst`, excluding
    /// bandwidth effects: `base_latency + hops(src, dst) ·
    /// per_hop_latency`. This is exactly what
    /// [`Network::latency`](crate::Network::latency) charges on
    /// injection.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a core of the topology.
    pub fn hop_latency(&self, src: CoreId, dst: CoreId) -> u64 {
        assert!(
            self.topology.contains(src),
            "{src} outside {}",
            self.topology
        );
        assert!(
            self.topology.contains(dst),
            "{dst} outside {}",
            self.topology
        );
        let hops = self.topology.hops(src, dst) as u64;
        self.config.base_latency + hops * self.config.per_hop_latency
    }

    /// Maximum number of messages one core can receive per cycle
    /// (`None` = unlimited): the per-receiving-core budget
    /// [`Network::deliver`](crate::Network::deliver) applies per
    /// arrival cycle.
    pub fn ejection_budget(&self) -> Option<usize> {
        self.config.link_bandwidth
    }

    /// The cheapest transit latency into `dst` from any *other* core —
    /// the minimum time any cross-core message needs to reach `dst`.
    /// Returns `hop_latency(dst, dst)` when the chip has a single core.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a core of the topology.
    pub fn min_remote_latency(&self, dst: CoreId) -> u64 {
        self.topology
            .cores()
            .filter(|&src| src != dst)
            .map(|src| self.hop_latency(src, dst))
            .min()
            .unwrap_or_else(|| self.hop_latency(dst, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    #[test]
    fn hop_latency_matches_the_dynamic_network() {
        let topology = Topology::mesh(4, 4);
        let config = NocConfig {
            base_latency: 2,
            per_hop_latency: 3,
            link_bandwidth: Some(2),
        };
        let model = NocModel::new(topology, config);
        let net: Network<u32> = Network::new(topology, config);
        for src in topology.cores() {
            for dst in topology.cores() {
                assert_eq!(model.hop_latency(src, dst), net.latency(src, dst));
            }
        }
        assert_eq!(model.ejection_budget(), Some(2));
        assert_eq!(model.topology(), topology);
        assert_eq!(model.config(), config);
    }

    #[test]
    fn min_remote_latency_is_the_cheapest_incoming_edge() {
        let model = NocModel::new(Topology::mesh(4, 4), NocConfig::default());
        // Every core in a mesh has a 1-hop neighbour: base 1 + 1 hop.
        for dst in model.topology().cores() {
            assert_eq!(model.min_remote_latency(dst), 2);
        }
        let single = NocModel::new(Topology::crossbar(1), NocConfig::default());
        // Degenerate single-core chip: falls back to the local latency.
        assert_eq!(single.min_remote_latency(CoreId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn hop_latency_outside_the_chip_panics() {
        let model = NocModel::new(Topology::crossbar(4), NocConfig::default());
        model.hop_latency(CoreId(0), CoreId(9));
    }
}
