//! Event-driven message delivery.
//!
//! Messages are injected with [`Network::send`] and collected with
//! [`Network::deliver`]. The network is usable both by a cycle-stepping
//! caller (call `deliver(now)` once per cycle) and by an event-driven
//! caller that jumps the clock: [`Network::next_arrival`] exposes the
//! earliest pending arrival cycle, and `deliver(now)` drains everything
//! due up to and including `now` while still applying the per-receiving-
//! core ejection bandwidth *per arrival cycle*, never one budget for a
//! whole multi-cycle backlog.

use std::collections::{BinaryHeap, HashMap};

use crate::{CoreId, Topology};

/// Timing and bandwidth parameters of the on-chip network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Fixed cost added to every message (injection + ejection), in cycles.
    pub base_latency: u64,
    /// Cost per router hop, in cycles.
    pub per_hop_latency: u64,
    /// Maximum number of messages a single core can *receive* per cycle;
    /// `None` means unlimited. Excess messages are delayed to later cycles.
    pub link_bandwidth: Option<usize>,
}

impl Default for NocConfig {
    /// One cycle per hop, one cycle of fixed overhead, unlimited ejection
    /// bandwidth — the charge model implied by the paper's Figure 10
    /// (3 cycles to reach a neighbouring producer and return).
    fn default() -> NocConfig {
        NocConfig {
            base_latency: 1,
            per_hop_latency: 1,
            link_bandwidth: None,
        }
    }
}

/// A message travelling through the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sender.
    pub src: CoreId,
    /// Receiver.
    pub dst: CoreId,
    /// Cycle at which the message was injected.
    pub sent_at: u64,
    /// Cycle at which the message becomes visible at the receiver.
    pub arrives_at: u64,
    /// The payload.
    pub payload: T,
}

/// Delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Messages injected.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Sum of hop counts over all injected messages.
    pub total_hops: u64,
    /// Sum of (arrival − send) latencies over delivered messages.
    pub total_latency: u64,
    /// Largest number of messages in flight at any injection point.
    pub peak_in_flight: usize,
}

impl NocStats {
    /// Average end-to-end latency of delivered messages, in cycles.
    pub fn average_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending<T> {
    arrives_at: u64,
    sequence: u64,
    envelope: Envelope<T>,
}

impl<T: Eq> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the earliest arrival (then the
        // earliest injection order) pops first.
        other
            .arrives_at
            .cmp(&self.arrives_at)
            .then(other.sequence.cmp(&self.sequence))
    }
}

impl<T: Eq> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The on-chip network: messages are injected with [`Network::send`] and
/// collected, cycle by cycle, with [`Network::deliver`].
#[derive(Debug, Clone)]
pub struct Network<T> {
    topology: Topology,
    config: NocConfig,
    pending: BinaryHeap<Pending<T>>,
    stats: NocStats,
    sequence: u64,
}

impl<T: Eq> Network<T> {
    /// Creates an empty network over `topology` with `config` timing.
    pub fn new(topology: Topology, config: NocConfig) -> Network<T> {
        Network {
            topology,
            config,
            pending: BinaryHeap::new(),
            stats: NocStats::default(),
            sequence: 0,
        }
    }

    /// The chip topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The timing configuration.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// The stateless cost view of this network: same topology, same
    /// timing, no delivery state.
    pub fn model(&self) -> crate::NocModel {
        crate::NocModel::new(self.topology, self.config)
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The earliest cycle at which a pending message arrives, or `None`
    /// when nothing is in flight. An event-driven caller can jump its
    /// clock straight to this cycle instead of ticking toward it.
    pub fn next_arrival(&self) -> Option<u64> {
        self.pending.peek().map(|p| p.arrives_at)
    }

    /// Computes the raw transit latency from `src` to `dst` (excluding
    /// bandwidth effects).
    pub fn latency(&self, src: CoreId, dst: CoreId) -> u64 {
        let hops = self.topology.hops(src, dst) as u64;
        self.config.base_latency + hops * self.config.per_hop_latency
    }

    /// Injects a message at cycle `now`. The message becomes visible at the
    /// destination no earlier than `now + latency(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a core of the topology.
    pub fn send(&mut self, src: CoreId, dst: CoreId, payload: T, now: u64) {
        assert!(
            self.topology.contains(src),
            "{src} outside {}",
            self.topology
        );
        assert!(
            self.topology.contains(dst),
            "{dst} outside {}",
            self.topology
        );
        let arrives_at = now + self.latency(src, dst);
        let envelope = Envelope {
            src,
            dst,
            sent_at: now,
            arrives_at,
            payload,
        };
        self.stats.sent += 1;
        self.stats.total_hops += self.topology.hops(src, dst) as u64;
        self.sequence += 1;
        self.pending.push(Pending {
            arrives_at,
            sequence: self.sequence,
            envelope,
        });
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.pending.len());
    }

    /// Removes and returns every message that arrives at or before cycle
    /// `now`, respecting the per-*receiving-core* ejection bandwidth:
    /// messages beyond the limit stay queued and arrive on a later cycle.
    ///
    /// The bandwidth budget is applied per arrival cycle, so draining a
    /// multi-cycle backlog in one call (an event-driven caller jumping its
    /// clock) delivers exactly what `now − t` single-cycle calls would
    /// have: a message postponed at its arrival cycle competes again one
    /// cycle later, not at `now + 1`. Latency statistics are charged at
    /// each message's actual delivery cycle.
    pub fn deliver(&mut self, now: u64) -> Vec<Envelope<T>> {
        let mut delivered = Vec::new();
        self.deliver_into(now, &mut delivered);
        delivered
    }

    /// Like [`Network::deliver`], but appends into a caller-provided
    /// buffer instead of allocating one — the form an event-driven caller
    /// uses on its hot loop (one `deliver` per event cycle).
    pub fn deliver_into(&mut self, now: u64, delivered: &mut Vec<Envelope<T>>) {
        // One pass per distinct arrival cycle ≤ `now`, each with a fresh
        // per-destination budget. Postponed messages re-enter the heap one
        // cycle later, so the outer loop revisits them while they are due.
        while let Some(head) = self.pending.peek() {
            if head.arrives_at > now {
                break;
            }
            let cycle = head.arrives_at;
            let mut per_dst: HashMap<CoreId, usize> = HashMap::new();
            let mut postponed: Vec<Pending<T>> = Vec::new();
            while let Some(head) = self.pending.peek() {
                if head.arrives_at > cycle {
                    break;
                }
                let mut item = self.pending.pop().expect("peeked");
                if let Some(limit) = self.config.link_bandwidth {
                    let used = per_dst.entry(item.envelope.dst).or_insert(0);
                    if *used >= limit {
                        // The ejection port is saturated this cycle; retry
                        // next cycle.
                        item.arrives_at = cycle + 1;
                        item.envelope.arrives_at = cycle + 1;
                        postponed.push(item);
                        continue;
                    }
                    *used += 1;
                }
                let envelope = item.envelope;
                self.stats.delivered += 1;
                self.stats.total_latency += cycle.saturating_sub(envelope.sent_at);
                delivered.push(envelope);
            }
            for item in postponed {
                self.pending.push(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(config: NocConfig) -> Network<u32> {
        Network::new(Topology::mesh(4, 4), config)
    }

    #[test]
    fn latency_charges_base_plus_hops() {
        let n = net(NocConfig::default());
        assert_eq!(n.latency(CoreId(0), CoreId(0)), 1);
        assert_eq!(n.latency(CoreId(0), CoreId(1)), 2);
        assert_eq!(n.latency(CoreId(0), CoreId(15)), 7);
        let n = net(NocConfig {
            base_latency: 0,
            per_hop_latency: 3,
            link_bandwidth: None,
        });
        assert_eq!(n.latency(CoreId(0), CoreId(1)), 3);
    }

    #[test]
    fn messages_arrive_in_latency_order() {
        let mut n = net(NocConfig::default());
        n.send(CoreId(0), CoreId(15), 1, 0); // arrives at 7
        n.send(CoreId(0), CoreId(1), 2, 0); // arrives at 2
        assert_eq!(n.in_flight(), 2);
        assert!(n.deliver(1).is_empty());
        let at2 = n.deliver(2);
        assert_eq!(at2.len(), 1);
        assert_eq!(at2[0].payload, 2);
        let at7 = n.deliver(7);
        assert_eq!(at7.len(), 1);
        assert_eq!(at7[0].payload, 1);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.stats().delivered, 2);
    }

    #[test]
    fn deliver_collects_everything_due() {
        let mut n = net(NocConfig::default());
        for i in 0..5 {
            n.send(CoreId(0), CoreId(1), i, 0);
        }
        let all = n.deliver(10);
        assert_eq!(all.len(), 5);
        // FIFO among equal arrival times.
        let payloads: Vec<u32> = all.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bandwidth_limit_spreads_deliveries() {
        let config = NocConfig {
            link_bandwidth: Some(2),
            ..NocConfig::default()
        };
        let mut n = net(config);
        for i in 0..5 {
            n.send(CoreId(0), CoreId(1), i, 0);
        }
        assert_eq!(n.deliver(2).len(), 2);
        assert_eq!(n.deliver(3).len(), 2);
        assert_eq!(n.deliver(4).len(), 1);
        assert_eq!(n.stats().delivered, 5);
    }

    #[test]
    fn bandwidth_limit_is_per_destination() {
        let config = NocConfig {
            link_bandwidth: Some(1),
            ..NocConfig::default()
        };
        let mut n = net(config);
        n.send(CoreId(0), CoreId(1), 1, 0);
        n.send(CoreId(0), CoreId(2), 2, 0);
        assert_eq!(
            n.deliver(3).len(),
            2,
            "different destinations do not contend"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(NocConfig::default());
        n.send(CoreId(0), CoreId(3), 1, 0);
        n.send(CoreId(3), CoreId(0), 2, 0);
        n.deliver(100);
        let s = n.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.total_hops, 6);
        assert!(s.average_latency() > 0.0);
        assert_eq!(s.peak_in_flight, 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn sending_outside_the_chip_panics() {
        let mut n = net(NocConfig::default());
        n.send(CoreId(0), CoreId(99), 0, 0);
    }

    #[test]
    fn next_arrival_tracks_the_earliest_pending_message() {
        let mut n = net(NocConfig::default());
        assert_eq!(n.next_arrival(), None);
        n.send(CoreId(0), CoreId(15), 1, 0); // arrives at 7
        n.send(CoreId(0), CoreId(1), 2, 0); // arrives at 2
        assert_eq!(n.next_arrival(), Some(2));
        n.deliver(2);
        assert_eq!(n.next_arrival(), Some(7));
        n.deliver(7);
        assert_eq!(n.next_arrival(), None);
    }

    #[test]
    fn two_senders_targeting_one_core_share_its_ejection_port() {
        // The NocConfig doc promises a per-*receiving-core* per-cycle
        // ejection limit: two different senders whose messages reach the
        // same core on the same cycle must be serialised, one per cycle.
        let config = NocConfig {
            link_bandwidth: Some(1),
            ..NocConfig::default()
        };
        let mut n = net(config);
        n.send(CoreId(1), CoreId(0), 10, 0); // 1 hop, arrives at 2
        n.send(CoreId(4), CoreId(0), 20, 0); // 1 hop, arrives at 2
        let at2 = n.deliver(2);
        assert_eq!(at2.len(), 1, "one ejection per cycle at the receiver");
        assert_eq!(at2[0].payload, 10, "FIFO across senders");
        let at3 = n.deliver(3);
        assert_eq!(at3.len(), 1);
        assert_eq!(at3[0].payload, 20);
    }

    #[test]
    fn draining_a_backlog_applies_the_bandwidth_budget_per_cycle() {
        // Delivering a multi-cycle backlog in one call must behave exactly
        // like calling deliver once per cycle: fresh per-destination budget
        // each arrival cycle, latency charged at the delivery cycle.
        let config = NocConfig {
            link_bandwidth: Some(2),
            ..NocConfig::default()
        };
        let mut stepped = net(config);
        let mut jumped = net(config);
        for i in 0..5 {
            stepped.send(CoreId(0), CoreId(1), i, 0); // all arrive at 2
            jumped.send(CoreId(0), CoreId(1), i, 0);
        }
        let mut cycle_by_cycle = Vec::new();
        for now in 0..=10 {
            cycle_by_cycle.extend(stepped.deliver(now));
        }
        let in_one_call = jumped.deliver(10);
        assert_eq!(in_one_call, cycle_by_cycle);
        assert_eq!(jumped.stats(), stepped.stats());
        // 2 at cycle 2, 2 at cycle 3, 1 at cycle 4: total latency 2+2+3+3+4.
        assert_eq!(jumped.stats().total_latency, 14);
    }
}
