//! Analogues of the ten PBBS benchmarks of Table 1.
//!
//! The paper measures the ILP of ten programs of the Problem Based
//! Benchmark Suite (Shun et al., SPAA '12). The C++ sources and gigascale
//! inputs are not part of the paper's artefact, so this module implements
//! the same algorithmic kernels in mini-C at laptop scale:
//!
//! | id | PBBS benchmark | kernel here |
//! |----|----------------|-------------|
//! | 01 | breadthFirstSearch/ndBFS | frontier BFS over a constant-degree graph |
//! | 02 | comparisonSort/quickSort | recursive quicksort |
//! | 03 | convexHull/quickHull | gift-wrapping convex hull (same O(n·h) point tests) |
//! | 04 | dictionary/deterministicHash | open-addressing hash table insert + lookup |
//! | 05 | integerSort/blockRadixSort | LSD radix sort, 8-bit digits |
//! | 06 | maximalIndependentSet/ndMIS | greedy MIS over the adjacency array |
//! | 07 | maximalMatching/ndMatching | greedy maximal matching over an edge list |
//! | 08 | minSpanningTree/parallelKruskal | Kruskal with quicksort + union-find |
//! | 09 | nearestNeighbors/octTree2Neighbors | all-pairs nearest neighbour (octree replaced by exhaustive search) |
//! | 10 | removeDuplicates/deterministicHash | hash-set duplicate removal |
//!
//! Each benchmark provides a seeded dataset generator, a mini-C program and
//! a Rust oracle that mirrors the kernel, so the machine's outputs can be
//! checked exactly.

use std::collections::HashSet;

use parsecs_cc::{compile, Backend, CcError, CompileOptions};
use parsecs_isa::Program;

use crate::data;

/// One of the ten Table 1 benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Bfs,
    ComparisonSort,
    ConvexHull,
    Dictionary,
    IntegerSort,
    Mis,
    Matching,
    Mst,
    NearestNeighbors,
    RemoveDuplicates,
}

/// The Table 1 catalog.
#[derive(Debug, Clone, Copy, Default)]
pub struct Catalog;

impl Catalog {
    /// The ten benchmarks in the order of the paper's Table 1.
    pub fn table1() -> Vec<Benchmark> {
        Benchmark::ALL.to_vec()
    }
}

impl Benchmark {
    /// All benchmarks, in Table 1 order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Bfs,
        Benchmark::ComparisonSort,
        Benchmark::ConvexHull,
        Benchmark::Dictionary,
        Benchmark::IntegerSort,
        Benchmark::Mis,
        Benchmark::Matching,
        Benchmark::Mst,
        Benchmark::NearestNeighbors,
        Benchmark::RemoveDuplicates,
    ];

    /// Table 1 number (1-based).
    pub fn id(&self) -> usize {
        Benchmark::ALL
            .iter()
            .position(|b| b == self)
            .expect("listed")
            + 1
    }

    /// The PBBS benchmark/implementation name of Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Bfs => "breadthFirstSearch/ndBFS",
            Benchmark::ComparisonSort => "comparisonSort/quickSort",
            Benchmark::ConvexHull => "convexHull/quickHull",
            Benchmark::Dictionary => "dictionary/deterministicHash",
            Benchmark::IntegerSort => "integerSort/blockRadixSort",
            Benchmark::Mis => "maximalIndependentSet/ndMIS",
            Benchmark::Matching => "maximalMatching/ndMatching",
            Benchmark::Mst => "minSpanningTree/parallelKruskal",
            Benchmark::NearestNeighbors => "nearestNeighbors/octTree2Neighbors",
            Benchmark::RemoveDuplicates => "removeDuplicates/deterministicHash",
        }
    }

    /// Short kernel name used in reports and bench ids.
    pub fn kernel(&self) -> &'static str {
        match self {
            Benchmark::Bfs => "bfs",
            Benchmark::ComparisonSort => "quicksort",
            Benchmark::ConvexHull => "convex_hull",
            Benchmark::Dictionary => "dictionary",
            Benchmark::IntegerSort => "radix_sort",
            Benchmark::Mis => "mis",
            Benchmark::Matching => "matching",
            Benchmark::Mst => "kruskal",
            Benchmark::NearestNeighbors => "nearest_neighbors",
            Benchmark::RemoveDuplicates => "remove_duplicates",
        }
    }

    /// Whether the paper observes the parallel-model ILP of this benchmark
    /// growing proportionally to the dataset (benchmarks 1, 2, 5, 6, 9, 10).
    pub fn is_data_parallel(&self) -> bool {
        matches!(
            self,
            Benchmark::Bfs
                | Benchmark::ComparisonSort
                | Benchmark::IntegerSort
                | Benchmark::Mis
                | Benchmark::NearestNeighbors
                | Benchmark::RemoveDuplicates
        )
    }

    /// The mini-C source of the kernel.
    pub fn source(&self) -> &'static str {
        match self {
            Benchmark::Bfs => BFS_SRC,
            Benchmark::ComparisonSort => QUICKSORT_SRC,
            Benchmark::ConvexHull => HULL_SRC,
            Benchmark::Dictionary => DICTIONARY_SRC,
            Benchmark::IntegerSort => RADIX_SRC,
            Benchmark::Mis => MIS_SRC,
            Benchmark::Matching => MATCHING_SRC,
            Benchmark::Mst => MST_SRC,
            Benchmark::NearestNeighbors => NN_SRC,
            Benchmark::RemoveDuplicates => DEDUP_SRC,
        }
    }

    /// Compilation options for a problem of `size` elements/nodes/points
    /// with the given `seed`: the dataset arrays plus a `params` array.
    pub fn options(&self, size: usize, seed: u64, backend: Backend) -> CompileOptions {
        let n = size.max(4);
        let mut options = CompileOptions::new(backend);
        match self {
            Benchmark::Bfs | Benchmark::Mis => {
                let degree = 4;
                options = options
                    .with_data("edges", data::graph(n, degree, seed))
                    .with_data("queue", vec![0; n])
                    .with_data("visited", vec![0; n])
                    .with_data("dist", vec![0; n])
                    .with_data("in_mis", vec![0; n])
                    .with_data("params", vec![n as u64, degree as u64]);
            }
            Benchmark::ComparisonSort => {
                options = options
                    .with_data("a", data::values(n, 1 << 30, seed))
                    .with_data("params", vec![n as u64]);
            }
            Benchmark::ConvexHull | Benchmark::NearestNeighbors => {
                let (px, py) = distinct_points(n, seed);
                options = options
                    .with_data("px", px)
                    .with_data("py", py)
                    .with_data("params", vec![n as u64]);
            }
            Benchmark::Dictionary => {
                let capacity = data::next_power_of_two(2 * n);
                options = options
                    .with_data("keys", data::values(n, 1 << 30, seed))
                    .with_data("queries", data::values(n, 1 << 30, seed ^ 0x9e37))
                    .with_data("table", vec![0; capacity])
                    .with_data("params", vec![n as u64, (capacity - 1) as u64]);
            }
            Benchmark::IntegerSort => {
                options = options
                    .with_data("a", data::values(n, 1 << 32, seed))
                    .with_data("buf", vec![0; n])
                    .with_data("count", vec![0; 256])
                    .with_data("params", vec![n as u64]);
            }
            Benchmark::Matching => {
                let m = 4 * n;
                let (src, dst, _) = data::weighted_edges(n, m, seed);
                options = options
                    .with_data("src", src)
                    .with_data("dst", dst)
                    .with_data("matched", vec![0; n])
                    .with_data("params", vec![n as u64, m as u64]);
            }
            Benchmark::Mst => {
                let m = 4 * n;
                let (src, dst, weight) = data::weighted_edges(n, m, seed);
                options = options
                    .with_data("src", src)
                    .with_data("dst", dst)
                    .with_data("weight", weight)
                    .with_data("keys", vec![0; m])
                    .with_data("parent", vec![0; n])
                    .with_data("params", vec![n as u64, m as u64]);
            }
            Benchmark::RemoveDuplicates => {
                let capacity = data::next_power_of_two(2 * n);
                let bound = (n as u64 / 2).max(2);
                options = options
                    .with_data("a", data::values(n, bound, seed))
                    .with_data("table", vec![0; capacity])
                    .with_data("params", vec![n as u64, (capacity - 1) as u64]);
            }
        }
        options
    }

    /// Compiles the benchmark for a given problem size, seed and backend.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (none are expected for the embedded
    /// sources; an error indicates a bug).
    pub fn program(&self, size: usize, seed: u64, backend: Backend) -> Result<Program, CcError> {
        compile(self.source(), &self.options(size, seed, backend))
    }

    /// The expected `out` values, computed by a Rust mirror of the kernel
    /// on the same generated dataset.
    pub fn expected(&self, size: usize, seed: u64) -> Vec<u64> {
        let n = size.max(4);
        match self {
            Benchmark::Bfs => oracle_bfs(n, seed),
            Benchmark::ComparisonSort => oracle_sorted_checksum(data::values(n, 1 << 30, seed)),
            Benchmark::ConvexHull => oracle_hull(n, seed),
            Benchmark::Dictionary => oracle_dictionary(n, seed),
            Benchmark::IntegerSort => {
                let sorted = oracle_sorted_checksum(data::values(n, 1 << 32, seed));
                vec![sorted[0]]
            }
            Benchmark::Mis => oracle_mis(n, seed),
            Benchmark::Matching => oracle_matching(n, seed),
            Benchmark::Mst => oracle_mst(n, seed),
            Benchmark::NearestNeighbors => oracle_nearest(n, seed),
            Benchmark::RemoveDuplicates => oracle_dedup(n, seed),
        }
    }
}

/// Generates `n` pairwise distinct points (gift wrapping assumes distinct
/// input points).
fn distinct_points(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut seen = HashSet::new();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut attempt = 0u64;
    while xs.len() < n {
        let (cx, cy) = data::points(n, seed.wrapping_add(attempt * 7919));
        for (x, y) in cx.into_iter().zip(cy) {
            if xs.len() == n {
                break;
            }
            if seen.insert((x, y)) {
                xs.push(x);
                ys.push(y);
            }
        }
        attempt += 1;
    }
    (xs, ys)
}

// ---------------------------------------------------------------------------
// mini-C sources
// ---------------------------------------------------------------------------

const BFS_SRC: &str = "
fn main() {
    var n = params[0];
    var deg = params[1];
    var head = 0;
    var tail = 1;
    queue[0] = 0;
    visited[0] = 1;
    var reached = 1;
    var levelsum = 0;
    while (head < tail) {
        var u = queue[head];
        head = head + 1;
        var j = 0;
        while (j < deg) {
            var v = edges[u * deg + j];
            if (visited[v] == 0) {
                visited[v] = 1;
                dist[v] = dist[u] + 1;
                levelsum = levelsum + dist[v];
                queue[tail] = v;
                tail = tail + 1;
                reached = reached + 1;
            } else { }
            j = j + 1;
        }
    }
    out(reached);
    out(levelsum);
}
";

const QUICKSORT_SRC: &str = "
fn quicksort(a, lo, hi) {
    if (lo + 1 >= hi) { return 0; } else { }
    var pivot = a[hi - 1];
    var i = lo;
    var j = lo;
    while (j < hi - 1) {
        if (a[j] < pivot) {
            var tmp = a[i];
            a[i] = a[j];
            a[j] = tmp;
            i = i + 1;
        } else { }
        j = j + 1;
    }
    var last = a[i];
    a[i] = a[hi - 1];
    a[hi - 1] = last;
    quicksort(a, lo, i);
    quicksort(a, i + 1, hi);
    return 0;
}
fn main() {
    var n = params[0];
    quicksort(a, 0, n);
    var i = 0;
    var check = 0;
    while (i < n) {
        check = check + a[i] * (i + 1);
        i = i + 1;
    }
    out(check);
    out(a[0]);
    out(a[n - 1]);
}
";

const HULL_SRC: &str = "
fn orient(ox, oy, ax, ay, bx, by) {
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox);
}
fn main() {
    var n = params[0];
    var start = 0;
    var i = 1;
    while (i < n) {
        if (py[i] < py[start]) { start = i; } else {
            if (py[i] == py[start]) {
                if (px[i] < px[start]) { start = i; } else { }
            } else { }
        }
        i = i + 1;
    }
    var hull = 0;
    var p = start;
    var done = 0;
    while (done == 0) {
        hull = hull + 1;
        var q = 0;
        if (p == 0) { q = 1; } else { }
        var j = 0;
        while (j < n) {
            if (j != p) {
                var o = orient(px[p], py[p], px[q], py[q], px[j], py[j]);
                if (o < 0) { q = j; } else { }
            } else { }
            j = j + 1;
        }
        p = q;
        if (p == start) { done = 1; } else { }
        if (hull > n) { done = 1; } else { }
    }
    out(hull);
}
";

const DICTIONARY_SRC: &str = "
fn insert(table, mask, key) {
    var h = (key * 2654435761) & mask;
    var done = 0;
    while (done == 0) {
        if (table[h] == 0) {
            table[h] = key + 1;
            done = 1;
        } else {
            if (table[h] == key + 1) { done = 1; } else {
                h = (h + 1) & mask;
            }
        }
    }
    return 0;
}
fn lookup(table, mask, key) {
    var h = (key * 2654435761) & mask;
    var probing = 1;
    while (probing == 1) {
        if (table[h] == 0) { return 0; } else { }
        if (table[h] == key + 1) { return 1; } else { }
        h = (h + 1) & mask;
    }
    return 0;
}
fn main() {
    var n = params[0];
    var mask = params[1];
    var i = 0;
    while (i < n) {
        insert(table, mask, keys[i]);
        i = i + 1;
    }
    var found = 0;
    i = 0;
    while (i < n) {
        found = found + lookup(table, mask, queries[i]);
        i = i + 1;
    }
    var occupied = 0;
    i = 0;
    while (i <= mask) {
        if (table[i] != 0) { occupied = occupied + 1; } else { }
        i = i + 1;
    }
    out(found);
    out(occupied);
}
";

const RADIX_SRC: &str = "
fn main() {
    var n = params[0];
    var pass = 0;
    while (pass < 4) {
        var shift = pass << 3;
        var i = 0;
        while (i < 256) { count[i] = 0; i = i + 1; }
        i = 0;
        while (i < n) {
            var d = (a[i] >> shift) & 255;
            count[d] = count[d] + 1;
            i = i + 1;
        }
        var run = 0;
        i = 0;
        while (i < 256) {
            var c = count[i];
            count[i] = run;
            run = run + c;
            i = i + 1;
        }
        i = 0;
        while (i < n) {
            var d2 = (a[i] >> shift) & 255;
            buf[count[d2]] = a[i];
            count[d2] = count[d2] + 1;
            i = i + 1;
        }
        i = 0;
        while (i < n) { a[i] = buf[i]; i = i + 1; }
        pass = pass + 1;
    }
    var check = 0;
    var k = 0;
    while (k < n) { check = check + a[k] * (k + 1); k = k + 1; }
    out(check);
}
";

const MIS_SRC: &str = "
fn main() {
    var n = params[0];
    var deg = params[1];
    var i = 0;
    var count = 0;
    while (i < n) {
        var ok = 1;
        var j = 0;
        while (j < deg) {
            var v = edges[i * deg + j];
            if (v < i) {
                if (in_mis[v] == 1) { ok = 0; } else { }
            } else { }
            j = j + 1;
        }
        if (ok == 1) {
            in_mis[i] = 1;
            count = count + 1;
        } else { }
        i = i + 1;
    }
    out(count);
}
";

const MATCHING_SRC: &str = "
fn main() {
    var m = params[1];
    var e = 0;
    var count = 0;
    while (e < m) {
        var u = src[e];
        var v = dst[e];
        if (u != v) {
            if (matched[u] == 0) {
                if (matched[v] == 0) {
                    matched[u] = 1;
                    matched[v] = 1;
                    count = count + 1;
                } else { }
            } else { }
        } else { }
        e = e + 1;
    }
    out(count);
}
";

const MST_SRC: &str = "
fn quicksort(a, lo, hi) {
    if (lo + 1 >= hi) { return 0; } else { }
    var pivot = a[hi - 1];
    var i = lo;
    var j = lo;
    while (j < hi - 1) {
        if (a[j] < pivot) {
            var tmp = a[i];
            a[i] = a[j];
            a[j] = tmp;
            i = i + 1;
        } else { }
        j = j + 1;
    }
    var last = a[i];
    a[i] = a[hi - 1];
    a[hi - 1] = last;
    quicksort(a, lo, i);
    quicksort(a, i + 1, hi);
    return 0;
}
fn find(parent, x) {
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}
fn main() {
    var n = params[0];
    var m = params[1];
    var i = 0;
    while (i < n) { parent[i] = i; i = i + 1; }
    i = 0;
    while (i < m) { keys[i] = weight[i] * 1048576 + i; i = i + 1; }
    quicksort(keys, 0, m);
    var total = 0;
    var picked = 0;
    i = 0;
    while (i < m) {
        var idx = keys[i] & 1048575;
        var ru = find(parent, src[idx]);
        var rv = find(parent, dst[idx]);
        if (ru != rv) {
            parent[ru] = rv;
            total = total + weight[idx];
            picked = picked + 1;
        } else { }
        i = i + 1;
    }
    out(total);
    out(picked);
}
";

const NN_SRC: &str = "
fn main() {
    var n = params[0];
    var i = 0;
    var total = 0;
    while (i < n) {
        var best = 0 - 1;
        var j = 0;
        while (j < n) {
            if (j != i) {
                var dx = px[i] - px[j];
                var dy = py[i] - py[j];
                var d = dx * dx + dy * dy;
                if (best < 0) { best = d; } else {
                    if (d < best) { best = d; } else { }
                }
            } else { }
            j = j + 1;
        }
        total = total + best;
        i = i + 1;
    }
    out(total);
}
";

const DEDUP_SRC: &str = "
fn main() {
    var n = params[0];
    var mask = params[1];
    var unique = 0;
    var i = 0;
    while (i < n) {
        var key = a[i];
        var h = (key * 2654435761) & mask;
        var done = 0;
        while (done == 0) {
            if (table[h] == 0) {
                table[h] = key + 1;
                unique = unique + 1;
                done = 1;
            } else {
                if (table[h] == key + 1) { done = 1; } else {
                    h = (h + 1) & mask;
                }
            }
        }
        i = i + 1;
    }
    out(unique);
}
";

// ---------------------------------------------------------------------------
// Rust oracles (mirrors of the kernels on the same generated data)
// ---------------------------------------------------------------------------

fn oracle_bfs(n: usize, seed: u64) -> Vec<u64> {
    let degree = 4usize;
    let edges = data::graph(n, degree, seed);
    let mut visited = vec![false; n];
    let mut dist = vec![0u64; n];
    let mut queue = vec![0usize];
    visited[0] = true;
    let mut head = 0;
    let mut reached = 1u64;
    let mut levelsum = 0u64;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for j in 0..degree {
            let v = edges[u * degree + j] as usize;
            if !visited[v] {
                visited[v] = true;
                dist[v] = dist[u] + 1;
                levelsum += dist[v];
                queue.push(v);
                reached += 1;
            }
        }
    }
    vec![reached, levelsum]
}

fn oracle_sorted_checksum(mut a: Vec<u64>) -> Vec<u64> {
    a.sort_unstable();
    let check = a.iter().enumerate().fold(0u64, |acc, (i, v)| {
        acc.wrapping_add(v.wrapping_mul(i as u64 + 1))
    });
    vec![check, a[0], *a.last().expect("non-empty")]
}

fn oracle_hull(n: usize, seed: u64) -> Vec<u64> {
    let (px, py) = distinct_points(n, seed);
    let orient = |o: usize, a: usize, b: usize| -> i64 {
        let (ox, oy) = (px[o] as i64, py[o] as i64);
        let (ax, ay) = (px[a] as i64, py[a] as i64);
        let (bx, by) = (px[b] as i64, py[b] as i64);
        (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)
    };
    let mut start = 0usize;
    for i in 1..n {
        if py[i] < py[start] || (py[i] == py[start] && px[i] < px[start]) {
            start = i;
        }
    }
    let mut hull = 0u64;
    let mut p = start;
    loop {
        hull += 1;
        let mut q = if p == 0 { 1 } else { 0 };
        for j in 0..n {
            if j != p && orient(p, q, j) < 0 {
                q = j;
            }
        }
        p = q;
        if p == start || hull > n as u64 {
            break;
        }
    }
    vec![hull]
}

fn hash_slot(key: u64, mask: u64) -> u64 {
    key.wrapping_mul(2654435761) & mask
}

fn oracle_dictionary(n: usize, seed: u64) -> Vec<u64> {
    let keys = data::values(n, 1 << 30, seed);
    let queries = data::values(n, 1 << 30, seed ^ 0x9e37);
    let capacity = data::next_power_of_two(2 * n);
    let mask = (capacity - 1) as u64;
    let mut table = vec![0u64; capacity];
    for &key in &keys {
        let mut h = hash_slot(key, mask);
        loop {
            if table[h as usize] == 0 {
                table[h as usize] = key + 1;
                break;
            }
            if table[h as usize] == key + 1 {
                break;
            }
            h = (h + 1) & mask;
        }
    }
    let mut found = 0u64;
    for &key in &queries {
        let mut h = hash_slot(key, mask);
        loop {
            if table[h as usize] == 0 {
                break;
            }
            if table[h as usize] == key + 1 {
                found += 1;
                break;
            }
            h = (h + 1) & mask;
        }
    }
    let occupied = table.iter().filter(|v| **v != 0).count() as u64;
    vec![found, occupied]
}

fn oracle_mis(n: usize, seed: u64) -> Vec<u64> {
    let degree = 4usize;
    let edges = data::graph(n, degree, seed);
    let mut in_mis = vec![false; n];
    let mut count = 0u64;
    for i in 0..n {
        let mut ok = true;
        for j in 0..degree {
            let v = edges[i * degree + j] as usize;
            if v < i && in_mis[v] {
                ok = false;
            }
        }
        if ok {
            in_mis[i] = true;
            count += 1;
        }
    }
    vec![count]
}

fn oracle_matching(n: usize, seed: u64) -> Vec<u64> {
    let m = 4 * n;
    let (src, dst, _) = data::weighted_edges(n, m, seed);
    let mut matched = vec![false; n];
    let mut count = 0u64;
    for e in 0..m {
        let (u, v) = (src[e] as usize, dst[e] as usize);
        if u != v && !matched[u] && !matched[v] {
            matched[u] = true;
            matched[v] = true;
            count += 1;
        }
    }
    vec![count]
}

fn oracle_mst(n: usize, seed: u64) -> Vec<u64> {
    let m = 4 * n;
    let (src, dst, weight) = data::weighted_edges(n, m, seed);
    let mut keys: Vec<u64> = (0..m).map(|i| weight[i] * 1_048_576 + i as u64).collect();
    keys.sort_unstable();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut total = 0u64;
    let mut picked = 0u64;
    for key in keys {
        let idx = (key & 1_048_575) as usize;
        let ru = find(&mut parent, src[idx] as usize);
        let rv = find(&mut parent, dst[idx] as usize);
        if ru != rv {
            parent[ru] = rv;
            total += weight[idx];
            picked += 1;
        }
    }
    vec![total, picked]
}

fn oracle_nearest(n: usize, seed: u64) -> Vec<u64> {
    let (px, py) = distinct_points(n, seed);
    let mut total = 0u64;
    for i in 0..n {
        let mut best = u64::MAX;
        for j in 0..n {
            if i != j {
                let dx = px[i] as i64 - px[j] as i64;
                let dy = py[i] as i64 - py[j] as i64;
                best = best.min((dx * dx + dy * dy) as u64);
            }
        }
        total = total.wrapping_add(best);
    }
    vec![total]
}

fn oracle_dedup(n: usize, seed: u64) -> Vec<u64> {
    let bound = (n as u64 / 2).max(2);
    let a = data::values(n, bound, seed);
    let unique: HashSet<u64> = a.into_iter().collect();
    vec![unique.len() as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_machine::Machine;

    fn run(benchmark: Benchmark, size: usize, seed: u64, backend: Backend) -> Vec<u64> {
        let program = benchmark.program(size, seed, backend).expect("compiles");
        let mut machine = Machine::load(&program).expect("loads");
        machine.run(200_000_000).expect("halts").outputs
    }

    #[test]
    fn catalog_matches_table1() {
        let table = Catalog::table1();
        assert_eq!(table.len(), 10);
        assert_eq!(table[0].id(), 1);
        assert_eq!(table[0].name(), "breadthFirstSearch/ndBFS");
        assert_eq!(table[9].name(), "removeDuplicates/deterministicHash");
        let data_parallel: Vec<usize> = table
            .iter()
            .filter(|b| b.is_data_parallel())
            .map(|b| b.id())
            .collect();
        assert_eq!(data_parallel, vec![1, 2, 5, 6, 9, 10]);
    }

    #[test]
    fn every_benchmark_matches_its_oracle_with_the_call_backend() {
        for benchmark in Benchmark::ALL {
            let outputs = run(benchmark, 48, 11, Backend::Calls);
            assert_eq!(
                outputs,
                benchmark.expected(48, 11),
                "{} disagrees with its oracle",
                benchmark.name()
            );
            assert!(!outputs.is_empty());
        }
    }

    #[test]
    fn every_benchmark_matches_its_oracle_with_the_fork_backend() {
        for benchmark in Benchmark::ALL {
            let outputs = run(benchmark, 32, 3, Backend::Forks);
            assert_eq!(
                outputs,
                benchmark.expected(32, 3),
                "{} (fork backend) disagrees with its oracle",
                benchmark.name()
            );
        }
    }

    #[test]
    fn results_scale_with_the_problem_size() {
        let small = run(Benchmark::RemoveDuplicates, 16, 5, Backend::Calls);
        let large = run(Benchmark::RemoveDuplicates, 128, 5, Backend::Calls);
        assert!(large[0] >= small[0]);
        let sort_small = run(Benchmark::ComparisonSort, 16, 5, Backend::Calls);
        let sort_large = run(Benchmark::ComparisonSort, 64, 5, Backend::Calls);
        assert_ne!(sort_small[0], sort_large[0]);
    }

    #[test]
    fn different_seeds_give_different_datasets() {
        let a = run(Benchmark::IntegerSort, 64, 1, Backend::Calls);
        let b = run(Benchmark::IntegerSort, 64, 2, Backend::Calls);
        assert_ne!(a, b);
    }

    #[test]
    fn kruskal_picks_a_spanning_forest() {
        let outputs = run(Benchmark::Mst, 32, 9, Backend::Calls);
        let picked = outputs[1];
        assert!(
            picked < 32,
            "a forest over 32 nodes has fewer than 32 edges"
        );
        assert!(picked > 0);
    }

    #[test]
    fn distinct_points_are_distinct() {
        let (xs, ys) = distinct_points(200, 3);
        let set: HashSet<(u64, u64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        assert_eq!(set.len(), 200);
    }
}
