//! The paper's running example: the recursive vector sum.
//!
//! [`call_program`] reproduces Figure 2 (the gcc-style `call`/`ret` code)
//! and [`fork_program`] reproduces Figure 5 (the `fork`/`endfork` rewrite),
//! each prefixed by a three-instruction `main` that loads the array address
//! and length, invokes `sum`, prints the result and halts. The paper's
//! instruction counts therefore apply to the trace minus that five
//! instruction wrapper (3 before the first `sum` instruction, `out` and
//! `halt` after).

use parsecs_asm::assemble;
use parsecs_isa::Program;

/// The Figure 2 body of `sum` (call version), without `main`.
pub const SUM_CALL_BODY: &str = "
sum:    cmpq    $2, %rsi        # n > 2 ?
        ja      .L2
        movq    (%rdi), %rax    # rax = t[0]
        jne     .L1             # n != 2 ?
        addq    8(%rdi), %rax   # rax += t[1]
.L1:    ret
.L2:    pushq   %rbx
        pushq   %rdi
        pushq   %rsi
        shrq    %rsi            # rsi = n/2
        call    sum             # sum(t, n/2)
        popq    %rbx            # rbx = n
        pushq   %rbx
        subq    $8, %rsp        # allocate temp
        movq    %rax, 0(%rsp)   # temp = sum(t, n/2)
        leaq    (%rdi,%rsi,8), %rdi
        subq    %rsi, %rbx      # rbx = n - n/2
        movq    %rbx, %rsi
        call    sum             # sum(&t[n/2], n - n/2)
        addq    0(%rsp), %rax   # rax += temp
        addq    $8, %rsp
        popq    %rsi
        popq    %rdi
        popq    %rbx
        ret
";

/// The Figure 5 body of `sum` (fork version), without `main`.
pub const SUM_FORK_BODY: &str = "
sum:    cmpq    $2, %rsi        # n > 2 ?
        ja      .L2
        movq    (%rdi), %rax    # rax = t[0]
        jne     .L1             # n != 2 ?
        addq    8(%rdi), %rax   # rax += t[1]
.L1:    endfork
.L2:    movq    %rsi, %rbx      # rbx = n
        shrq    %rsi            # rsi = n/2
        fork    sum             # sum(t, n/2)
        subq    $8, %rsp        # allocate temp
        movq    %rax, 0(%rsp)   # temp = sum(t, n/2)
        leaq    (%rdi,%rsi,8), %rdi
        subq    %rsi, %rbx      # rbx = n - n/2
        movq    %rbx, %rsi
        fork    sum             # sum(&t[n/2], n - n/2)
        addq    0(%rsp), %rax   # rax += temp
        addq    $8, %rsp
        endfork
";

fn wrap(body: &str, invoke: &str, data: &[u64]) -> Program {
    let quads: Vec<String> = data.iter().map(u64::to_string).collect();
    let source = format!(
        "t:    .quad {}
main:   movq $t, %rdi
        movq ${}, %rsi
        {invoke} sum
        out  %rax
        halt
{body}",
        quads.join(", "),
        data.len(),
    );
    assemble(&source).expect("the sum listing always assembles")
}

/// The Figure 2 program (call version) summing `data`.
///
/// # Panics
///
/// Panics if `data` is empty — the paper's listing assumes `n ≥ 1`.
pub fn call_program(data: &[u64]) -> Program {
    assert!(
        !data.is_empty(),
        "the sum example needs at least one element"
    );
    wrap(SUM_CALL_BODY, "call", data)
}

/// The Figure 5 program (fork version) summing `data`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn fork_program(data: &[u64]) -> Program {
    assert!(
        !data.is_empty(),
        "the sum example needs at least one element"
    );
    wrap(SUM_FORK_BODY, "fork", data)
}

/// The paper's example dataset size `5 · 2ⁿ`, filled with small
/// pseudo-random values.
pub fn dataset(n: u32, seed: u64) -> Vec<u64> {
    crate::data::values(5 * (1usize << n), 100, seed)
}

/// The expected output of both programs: the sum of the data.
pub fn expected(data: &[u64]) -> Vec<u64> {
    vec![data.iter().copied().fold(0u64, u64::wrapping_add)]
}

/// The mini-C version of the sum function (Figure 1's C code, adapted to
/// mini-C), compiled by `parsecs-cc` in the `compile_and_fork` example.
pub const SUM_MINI_C: &str = "
fn sum(t, n) {
    if (n == 1) { return t[0]; } else { }
    if (n == 2) { return t[0] + t[1]; } else { }
    var half = n >> 1;
    return sum(t, half) + sum(t + 8 * half, n - half);
}
fn main() { out(sum(t, n_elements[0])); }
";

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_machine::Machine;

    #[test]
    fn both_versions_compute_the_sum() {
        let data = [4u64, 2, 6, 4, 5];
        for program in [call_program(&data), fork_program(&data)] {
            let mut machine = Machine::load(&program).unwrap();
            assert_eq!(machine.run(100_000).unwrap().outputs, expected(&data));
        }
    }

    #[test]
    fn figure3_trace_has_59_sum_instructions() {
        // Figure 3: the call-version run of sum(t,5) is a 59-instruction
        // trace; our wrapper adds movq/movq/call before and out/halt after.
        let data = [4u64, 2, 6, 4, 5];
        let mut machine = Machine::load(&call_program(&data)).unwrap();
        let (outcome, _) = machine.run_traced(100_000).unwrap();
        assert_eq!(outcome.instructions, 59 + 5);
    }

    #[test]
    fn figure6_trace_has_45_sum_instructions() {
        let data = [4u64, 2, 6, 4, 5];
        let mut machine = Machine::load(&fork_program(&data)).unwrap();
        let (outcome, _) = machine.run_traced(100_000).unwrap();
        assert_eq!(outcome.instructions, 45 + 5);
    }

    #[test]
    fn call_and_fork_agree_on_every_dataset_size() {
        for n in 0..5u32 {
            let data = dataset(n, 42);
            let mut call = Machine::load(&call_program(&data)).unwrap();
            let mut fork = Machine::load(&fork_program(&data)).unwrap();
            let a = call.run(10_000_000).unwrap().outputs;
            let b = fork.run(10_000_000).unwrap().outputs;
            assert_eq!(a, b);
            assert_eq!(a, expected(&data));
        }
    }

    #[test]
    fn dataset_is_seeded() {
        assert_eq!(dataset(2, 7), dataset(2, 7));
        assert_ne!(dataset(2, 7), dataset(2, 8));
        assert_eq!(dataset(3, 7).len(), 40);
    }
}
