//! Seeded dataset generators.
//!
//! All generators are deterministic in `(size, seed)` so that a program,
//! its Rust oracle and any benchmark harness observe the same data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for a workload instance.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` uniformly random 64-bit values below `bound`.
pub fn values(n: usize, bound: u64, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bound)).collect()
}

/// A random directed graph with `n` nodes of constant out-degree `degree`,
/// stored as a flat adjacency array of length `n · degree`
/// (`edges[u·degree + j]` is the j-th neighbour of `u`).
pub fn graph(n: usize, degree: usize, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n * degree).map(|_| r.gen_range(0..n as u64)).collect()
}

/// `n` random 2-D points with coordinates in `[0, 2^16)`, returned as
/// separate x and y arrays (the representation the mini-C kernels use).
pub fn points(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut r = rng(seed);
    let xs = (0..n).map(|_| r.gen_range(0..1u64 << 16)).collect();
    let ys = (0..n).map(|_| r.gen_range(0..1u64 << 16)).collect();
    (xs, ys)
}

/// `m` random weighted edges over `n` nodes, returned as `(src, dst,
/// weight)` arrays with weights below `2^20`.
pub fn weighted_edges(n: usize, m: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut r = rng(seed);
    let src = (0..m).map(|_| r.gen_range(0..n as u64)).collect();
    let dst = (0..m).map(|_| r.gen_range(0..n as u64)).collect();
    let weight = (0..m).map(|_| r.gen_range(0..1u64 << 20)).collect();
    (src, dst, weight)
}

/// The smallest power of two that is at least `n` and at least 2.
pub fn next_power_of_two(n: usize) -> usize {
    n.max(2).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        assert_eq!(values(16, 100, 7), values(16, 100, 7));
        assert_ne!(values(16, 100, 7), values(16, 100, 8));
        assert_eq!(graph(8, 4, 3), graph(8, 4, 3));
        assert_eq!(points(8, 3), points(8, 3));
        assert_eq!(weighted_edges(8, 20, 3), weighted_edges(8, 20, 3));
    }

    #[test]
    fn shapes_and_bounds() {
        let v = values(100, 50, 1);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|x| *x < 50));
        let g = graph(10, 4, 1);
        assert_eq!(g.len(), 40);
        assert!(g.iter().all(|x| *x < 10));
        let (xs, ys) = points(5, 1);
        assert_eq!((xs.len(), ys.len()), (5, 5));
        let (s, d, w) = weighted_edges(6, 12, 1);
        assert_eq!((s.len(), d.len(), w.len()), (12, 12, 12));
        assert!(w.iter().all(|x| *x < (1 << 20)));
    }

    #[test]
    fn power_of_two_helper() {
        assert_eq!(next_power_of_two(0), 2);
        assert_eq!(next_power_of_two(2), 2);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1000), 1024);
    }
}
