//! Seeded dataset generators.
//!
//! All generators are deterministic in `(size, seed)` so that a program,
//! its Rust oracle and any benchmark harness observe the same data. The
//! generator is a local splitmix64 (the workspace builds offline, without
//! the `rand` crate); its exact output stream is part of no contract
//! beyond determinism.

/// A deterministic random number generator for a workload instance.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// The next 64 uniformly random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly random value below `bound` (which must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A deterministic random number generator for a workload instance.
pub fn rng(seed: u64) -> Rng {
    // Scramble the seed so that nearby seeds give unrelated streams.
    Rng {
        state: seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x5851_f42d_4c95_7f2d,
    }
}

/// `n` uniformly random 64-bit values below `bound`.
pub fn values(n: usize, bound: u64, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.below(bound)).collect()
}

/// A random directed graph with `n` nodes of constant out-degree `degree`,
/// stored as a flat adjacency array of length `n · degree`
/// (`edges[u·degree + j]` is the j-th neighbour of `u`).
pub fn graph(n: usize, degree: usize, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n * degree).map(|_| r.below(n as u64)).collect()
}

/// `n` random 2-D points with coordinates in `[0, 2^16)`, returned as
/// separate x and y arrays (the representation the mini-C kernels use).
pub fn points(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut r = rng(seed);
    let xs = (0..n).map(|_| r.below(1 << 16)).collect();
    let ys = (0..n).map(|_| r.below(1 << 16)).collect();
    (xs, ys)
}

/// `m` random weighted edges over `n` nodes, returned as `(src, dst,
/// weight)` arrays with weights below `2^20`.
pub fn weighted_edges(n: usize, m: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut r = rng(seed);
    let src = (0..m).map(|_| r.below(n as u64)).collect();
    let dst = (0..m).map(|_| r.below(n as u64)).collect();
    let weight = (0..m).map(|_| r.below(1 << 20)).collect();
    (src, dst, weight)
}

/// The smallest power of two that is at least `n` and at least 2.
pub fn next_power_of_two(n: usize) -> usize {
    n.max(2).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        assert_eq!(values(16, 100, 7), values(16, 100, 7));
        assert_ne!(values(16, 100, 7), values(16, 100, 8));
        assert_eq!(graph(8, 4, 3), graph(8, 4, 3));
        assert_eq!(points(8, 3), points(8, 3));
        assert_eq!(weighted_edges(8, 20, 3), weighted_edges(8, 20, 3));
    }

    #[test]
    fn shapes_and_bounds() {
        let v = values(100, 50, 1);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|x| *x < 50));
        let g = graph(10, 4, 1);
        assert_eq!(g.len(), 40);
        assert!(g.iter().all(|x| *x < 10));
        let (xs, ys) = points(5, 1);
        assert_eq!((xs.len(), ys.len()), (5, 5));
        let (s, d, w) = weighted_edges(6, 12, 1);
        assert_eq!((s.len(), d.len(), w.len()), (12, 12, 12));
        assert!(w.iter().all(|x| *x < (1 << 20)));
    }

    #[test]
    fn power_of_two_helper() {
        assert_eq!(next_power_of_two(0), 2);
        assert_eq!(next_power_of_two(2), 2);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1000), 1024);
    }
}
