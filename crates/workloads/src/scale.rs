//! Large-scale fork workloads for the simulator's performance trajectory.
//!
//! The paper's evaluation workloads (the Figure 5 `sum` and the Table 1
//! PBBS analogues) stay small enough that a cycle-stepping simulator can
//! replay them; this module provides PBBS-style workloads that are sized
//! for the *event-driven* simulator — ≥1M dynamic instructions at their
//! benchmark sizes — and that deliberately exercise the machinery a
//! cycle stepper pays for dearly:
//!
//! * [`histogram_program`] — a fork-parallel bucket histogram (the
//!   counting phase of PBBS `integerSort/blockRadixSort`): leaves update
//!   shared bucket counters through memory renaming, and each update's
//!   control flow depends on the *loaded* counter, so fetch stages spend
//!   long stretches stalled on remote producer chains;
//! * [`tree_sum_program`] — the paper's recursive `sum` generalised with a
//!   sequential leaf loop (the reduce phase of PBBS-style tree
//!   algorithms), giving wide fork trees with configurable leaf grain;
//! * [`chain_sum_program`] — the serial worst case of the tree sum: a
//!   linked chain of tiny sections, each accumulating one element into a
//!   memory cell and forking its successor. Every link costs a NoC round
//!   trip plus a section-creation message, so the run is latency-bound:
//!   almost every cycle, every core is idle or stalled on a *known* future
//!   event — the pattern an event-driven scheduler skips over and a
//!   cycle stepper scans core by core.
//!
//! All come with Rust oracles so functional outputs are checked exactly,
//! and all are parameterised by a seed for dataset generation.

use parsecs_asm::assemble;
use parsecs_isa::Program;

use crate::data;

/// Number of elements a histogram leaf processes sequentially before the
/// recursion stops forking.
pub const HISTOGRAM_LEAF: usize = 16;

/// Number of elements a tree-sum leaf accumulates sequentially.
pub const TREE_SUM_LEAF: usize = 16;

/// Dynamic instructions per histogram key (the leaf-loop body), used to
/// size benchmark runs.
pub const HISTOGRAM_INSNS_PER_KEY: usize = 11;

/// The key stream of a histogram instance: `keys` uniform values below
/// `buckets`.
pub fn histogram_keys(keys: usize, buckets: usize, seed: u64) -> Vec<u64> {
    data::values(keys, buckets.max(1) as u64, seed)
}

/// The fork-parallel bucket histogram over `keys` keys and `buckets`
/// buckets.
///
/// The recursion halves the key range until at most [`HISTOGRAM_LEAF`]
/// keys remain; a leaf walks its keys and increments `table[key]` through
/// a load/modify/store sequence whose (functionally redundant) conditional
/// depends on the loaded counter — forcing the fetch stage to wait for the
/// previous writer of that bucket, wherever on the chip it ran. After the
/// fork subtree completes, `main` folds the table into the checksum
/// `Σ table[i]·(i+1)` and emits it.
///
/// # Panics
///
/// Panics if `keys` is zero or `buckets` is zero.
pub fn histogram_program(keys: usize, buckets: usize, seed: u64) -> Program {
    assert!(keys > 0, "the histogram needs at least one key");
    assert!(buckets > 0, "the histogram needs at least one bucket");
    let quads: Vec<String> = histogram_keys(keys, buckets, seed)
        .iter()
        .map(u64::to_string)
        .collect();
    let zeros = vec!["0"; buckets];
    let source = format!(
        "keys:   .quad {keys_list}
table:  .quad {table_list}
main:   movq $keys, %rdi
        movq ${keys}, %rsi
        fork hist
        movq $table, %rdi
        movq ${buckets}, %rcx
        movq $0, %rax
        movq $1, %rbx
chk:    movq (%rdi), %rdx
        imulq %rbx, %rdx
        addq %rdx, %rax
        addq $8, %rdi
        addq $1, %rbx
        subq $1, %rcx
        jne chk
        out  %rax
        halt
hist:   cmpq ${leaf}, %rsi
        ja .split
.loop:  movq (%rdi), %rbx
        movq $table, %rcx
        leaq (%rcx,%rbx,8), %rcx
        movq (%rcx), %rax
        cmpq $0, %rax
        je .bump
.bump:  addq $1, %rax
        movq %rax, (%rcx)
        addq $8, %rdi
        subq $1, %rsi
        jne .loop
        endfork
.split: movq %rsi, %rbx
        shrq %rsi
        fork hist
        leaq (%rdi,%rsi,8), %rdi
        subq %rsi, %rbx
        movq %rbx, %rsi
        fork hist
        endfork",
        keys_list = quads.join(", "),
        table_list = zeros.join(", "),
        leaf = HISTOGRAM_LEAF,
    );
    assemble(&source).expect("the histogram listing always assembles")
}

/// The expected output of [`histogram_program`]: the checksum
/// `Σ count[i]·(i+1)` over the final bucket counts.
pub fn histogram_expected(keys: usize, buckets: usize, seed: u64) -> Vec<u64> {
    let mut table = vec![0u64; buckets];
    for key in histogram_keys(keys, buckets, seed) {
        table[key as usize] += 1;
    }
    let checksum = table.iter().enumerate().fold(0u64, |acc, (i, count)| {
        acc.wrapping_add(count.wrapping_mul(i as u64 + 1))
    });
    vec![checksum]
}

/// The dataset of a tree-sum instance: `elements` values below `2^20`.
pub fn tree_sum_data(elements: usize, seed: u64) -> Vec<u64> {
    data::values(elements, 1 << 20, seed)
}

/// The paper's recursive fork `sum` generalised with a sequential leaf:
/// the recursion halves the range until at most [`TREE_SUM_LEAF`] elements
/// remain, and a leaf accumulates them with a tight load-add loop. Parent
/// sections combine the two half-sums through a stack temporary, exactly
/// like Figure 5.
///
/// # Panics
///
/// Panics if `elements` is zero.
pub fn tree_sum_program(elements: usize, seed: u64) -> Program {
    assert!(elements > 0, "the tree sum needs at least one element");
    let quads: Vec<String> = tree_sum_data(elements, seed)
        .iter()
        .map(u64::to_string)
        .collect();
    let source = format!(
        "t:      .quad {data_list}
main:   movq $t, %rdi
        movq ${elements}, %rsi
        fork tsum
        out  %rax
        halt
tsum:   cmpq ${leaf}, %rsi
        ja .split
        movq $0, %rax
.acc:   addq (%rdi), %rax
        addq $8, %rdi
        subq $1, %rsi
        jne .acc
        endfork
.split: movq %rsi, %rbx
        shrq %rsi
        fork tsum
        subq $8, %rsp
        movq %rax, 0(%rsp)
        leaq (%rdi,%rsi,8), %rdi
        subq %rsi, %rbx
        movq %rbx, %rsi
        fork tsum
        addq 0(%rsp), %rax
        addq $8, %rsp
        endfork",
        data_list = quads.join(", "),
        leaf = TREE_SUM_LEAF,
    );
    assemble(&source).expect("the tree-sum listing always assembles")
}

/// The expected output of [`tree_sum_program`]: the wrapping sum of the
/// dataset.
pub fn tree_sum_expected(elements: usize, seed: u64) -> Vec<u64> {
    vec![tree_sum_data(elements, seed)
        .iter()
        .copied()
        .fold(0u64, u64::wrapping_add)]
}

/// The serial chain sum over `elements` values: `main` forks one `link`
/// per element, and every fork's continuation — the next loop iteration —
/// becomes a new section on another core (the sectioning rule splits the
/// creator at the fork, so the chain forms one section per element). Each
/// link loads the running total from the shared `acc` word (a renaming
/// request to the previous link's store, hosted on another core), adds
/// its element and stores the total back. The (functionally redundant)
/// conditional between the load and the add makes the fetch stage wait
/// for the loaded value, so every link costs a full NoC round trip during
/// which the whole chip has nothing to fetch — the latency-bound regime
/// of the paper's model.
///
/// Unlike the histogram's random bucket contention, the producer of each
/// load is always already fetched (it sits in the chain's immediate
/// predecessor), so the head-of-chain stall always has a known release
/// cycle and the deadlock heuristic never fires: `forced_stall_releases`
/// stays zero.
///
/// # Panics
///
/// Panics if `elements` is zero.
pub fn chain_sum_program(elements: usize, seed: u64) -> Program {
    assert!(elements > 0, "the chain sum needs at least one element");
    let quads: Vec<String> = tree_sum_data(elements, seed)
        .iter()
        .map(u64::to_string)
        .collect();
    let source = format!(
        "t:      .quad {data_list}
acc:    .quad 0
main:   movq $t, %rdi
        movq ${elements}, %rsi
loop:   fork link
        addq $8, %rdi
        subq $1, %rsi
        jne loop
        movq $acc, %rcx
        movq (%rcx), %rax
        out  %rax
        halt
link:   movq $acc, %rcx
        movq (%rcx), %rax
        cmpq $0, %rax
        je .add
.add:   addq (%rdi), %rax
        movq %rax, (%rcx)
        endfork",
        data_list = quads.join(", "),
    );
    assemble(&source).expect("the chain-sum listing always assembles")
}

/// The expected output of [`chain_sum_program`]: the wrapping sum of the
/// dataset (same dataset as [`tree_sum_program`] at the same size/seed).
pub fn chain_sum_expected(elements: usize, seed: u64) -> Vec<u64> {
    tree_sum_expected(elements, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_machine::Machine;

    fn run(program: &Program) -> (Vec<u64>, u64) {
        let mut machine = Machine::load(program).expect("loads");
        let outcome = machine.run(50_000_000).expect("halts");
        (outcome.outputs, outcome.instructions)
    }

    #[test]
    fn histogram_matches_its_oracle() {
        for (keys, buckets, seed) in [(40, 8, 1), (130, 16, 2), (257, 5, 3)] {
            let (outputs, _) = run(&histogram_program(keys, buckets, seed));
            assert_eq!(
                outputs,
                histogram_expected(keys, buckets, seed),
                "histogram({keys}, {buckets}, {seed})"
            );
        }
    }

    #[test]
    fn tree_sum_matches_its_oracle() {
        for (elements, seed) in [(1, 1), (16, 2), (40, 3), (333, 4)] {
            let (outputs, _) = run(&tree_sum_program(elements, seed));
            assert_eq!(
                outputs,
                tree_sum_expected(elements, seed),
                "tree_sum({elements}, {seed})"
            );
        }
    }

    #[test]
    fn chain_sum_matches_its_oracle() {
        for (elements, seed) in [(1, 1), (2, 9), (100, 3)] {
            let (outputs, _) = run(&chain_sum_program(elements, seed));
            assert_eq!(
                outputs,
                chain_sum_expected(elements, seed),
                "chain_sum({elements}, {seed})"
            );
        }
    }

    #[test]
    fn chain_sum_is_one_section_per_element_plus_the_ends() {
        let program = chain_sum_program(50, 5);
        let mut machine = Machine::load(&program).expect("loads");
        let (_, trace) = machine.run_traced(1_000_000).expect("halts");
        let sectioned = parsecs_core::SectionedTrace::from_trace(&trace, vec![]);
        // One section per element (each fork splits the loop at the fork
        // site) plus the final continuation carrying `out`/`halt`.
        assert_eq!(sectioned.sections().len(), 51);
        // The chain is serial: every interior section is small.
        assert!(sectioned.longest_section() <= 16);
    }

    #[test]
    fn benchmark_sizes_reach_a_million_instructions() {
        // The perf trajectory's headline cell: ~100k keys must cross the
        // 1M-dynamic-instruction line (checked here at 1/10 scale to keep
        // the test fast — the instruction count is linear in the keys).
        let (_, instructions) = run(&histogram_program(10_000, 64, 7));
        assert!(
            instructions >= 100_000,
            "histogram at 10k keys runs {instructions} instructions; \
             100k keys would miss the 1M line"
        );
    }

    #[test]
    fn histogram_forks_enough_sections_to_spread() {
        let program = histogram_program(200, 8, 5);
        let mut machine = Machine::load(&program).expect("loads");
        let (_, trace) = machine.run_traced(1_000_000).expect("halts");
        let sectioned = parsecs_core::SectionedTrace::from_trace(&trace, vec![]);
        assert!(
            sectioned.sections().len() > 16,
            "only {} sections",
            sectioned.sections().len()
        );
    }
}
