//! Large-scale fork workloads for the simulator's performance trajectory.
//!
//! The paper's evaluation workloads (the Figure 5 `sum` and the Table 1
//! PBBS analogues) stay small enough that a cycle-stepping simulator can
//! replay them; this module provides PBBS-style workloads that are sized
//! for the *event-driven* simulator — ≥1M dynamic instructions at their
//! benchmark sizes — and that deliberately exercise the machinery a
//! cycle stepper pays for dearly:
//!
//! * [`histogram_program`] — a fork-parallel bucket histogram (the
//!   counting phase of PBBS `integerSort/blockRadixSort`): leaves update
//!   shared bucket counters through memory renaming, and each update's
//!   control flow depends on the *loaded* counter, so fetch stages spend
//!   long stretches stalled on remote producer chains;
//! * [`tree_sum_program`] — the paper's recursive `sum` generalised with a
//!   sequential leaf loop (the reduce phase of PBBS-style tree
//!   algorithms), giving wide fork trees with configurable leaf grain;
//! * [`chain_sum_program`] — the serial worst case of the tree sum: a
//!   linked chain of tiny sections, each accumulating one element into a
//!   memory cell and forking its successor. Every link costs a NoC round
//!   trip plus a section-creation message, so the run is latency-bound:
//!   almost every cycle, every core is idle or stalled on a *known* future
//!   event — the pattern an event-driven scheduler skips over and a
//!   cycle stepper scans core by core.
//!
//! Two further generators target the 256–1024-core, ≥10M-instruction
//! regime, where embedding the dataset as a `.quad` list would drag a
//! multi-megabyte source through the assembler; they synthesise their
//! keys/values *in program* with an LCG instead:
//!
//! * [`synth_histogram_program`] — the bucket histogram with
//!   LCG-generated keys and a coarser leaf ([`SYNTH_LEAF`]), so a ~10M
//!   instruction instance forks tens of thousands of sections over a
//!   kilobyte-scale data segment;
//! * [`fan_chain_program`] — `chains` independent serial accumulator
//!   chains of `links` links each: the chain sum's latency-bound handoff
//!   pattern, widened until it fills a 1024-core chip.
//!
//! All come with Rust oracles so functional outputs are checked exactly,
//! and all are parameterised by a seed for dataset generation. Every
//! generator also derives a functional pre-execution fuel cap from its
//! problem size ([`histogram_fuel`], [`fan_chain_fuel`], …), replacing
//! the hard-coded caps that silently starved large instances.

use parsecs_asm::assemble;
use parsecs_isa::Program;

use crate::data;

/// Number of elements a histogram leaf processes sequentially before the
/// recursion stops forking.
pub const HISTOGRAM_LEAF: usize = 16;

/// Number of keys a synthetic-histogram leaf generates and applies
/// sequentially (coarser than [`HISTOGRAM_LEAF`]: the 256–1024-core runs
/// want tens of thousands of sections, not millions).
pub const SYNTH_LEAF: usize = 32;

/// Knuth's MMIX LCG multiplier — the in-program key generator of
/// [`synth_histogram_program`] and [`fan_chain_program`] (both fit in an
/// `i64` immediate, which is why splitmix's constants are not used here).
pub const LCG_MUL: u64 = 6364136223846793005;

/// Knuth's MMIX LCG increment.
pub const LCG_ADD: u64 = 1442695040888963407;

/// Folds an arbitrary seed into a value that fits comfortably in an
/// assembler immediate.
fn seed_imm(seed: u64) -> u64 {
    (seed ^ (seed >> 32)) & 0xffff_ffff
}

/// Number of elements a tree-sum leaf accumulates sequentially.
pub const TREE_SUM_LEAF: usize = 16;

/// Dynamic instructions per histogram key (the leaf-loop body), used to
/// size benchmark runs.
pub const HISTOGRAM_INSNS_PER_KEY: usize = 11;

// ---------------------------------------------------------------------
// Fuel derivation.
//
// Functional pre-execution takes a fuel cap; hard-coding one (the old
// `1_000_000` habit) silently starves any instance sized past it. Each
// generator therefore derives a cap from the requested problem size: a
// safe over-estimate of the dynamic instruction count (loop bodies plus
// fork-tree overhead, roughly doubled), plus slack for the fixed
// prologue — so a 10M-instruction instance gets a 10M-plus budget
// automatically and an infinite loop is still caught.
// ---------------------------------------------------------------------

/// Fuel sufficient for [`histogram_program`]`(keys, buckets, _)`.
pub fn histogram_fuel(keys: usize, buckets: usize) -> u64 {
    32 * keys as u64 + 16 * buckets as u64 + 10_000
}

/// Fuel sufficient for [`tree_sum_program`]`(elements, _)`.
pub fn tree_sum_fuel(elements: usize) -> u64 {
    24 * elements as u64 + 10_000
}

/// Fuel sufficient for [`chain_sum_program`]`(elements, _)`.
pub fn chain_sum_fuel(elements: usize) -> u64 {
    24 * elements as u64 + 10_000
}

/// Fuel sufficient for [`synth_histogram_program`]`(keys, buckets, _)`.
pub fn synth_histogram_fuel(keys: usize, buckets: usize) -> u64 {
    40 * keys as u64 + 16 * buckets as u64 + 10_000
}

/// Fuel sufficient for [`fan_chain_program`]`(chains, links, _)`.
pub fn fan_chain_fuel(chains: usize, links: usize) -> u64 {
    32 * (chains as u64) * (links as u64) + 32 * chains as u64 + 10_000
}

/// The key stream of a histogram instance: `keys` uniform values below
/// `buckets`.
pub fn histogram_keys(keys: usize, buckets: usize, seed: u64) -> Vec<u64> {
    data::values(keys, buckets.max(1) as u64, seed)
}

/// The fork-parallel bucket histogram over `keys` keys and `buckets`
/// buckets.
///
/// The recursion halves the key range until at most [`HISTOGRAM_LEAF`]
/// keys remain; a leaf walks its keys and increments `table[key]` through
/// a load/modify/store sequence whose (functionally redundant) conditional
/// depends on the loaded counter — forcing the fetch stage to wait for the
/// previous writer of that bucket, wherever on the chip it ran. After the
/// fork subtree completes, `main` folds the table into the checksum
/// `Σ table[i]·(i+1)` and emits it.
///
/// # Panics
///
/// Panics if `keys` is zero or `buckets` is zero.
pub fn histogram_program(keys: usize, buckets: usize, seed: u64) -> Program {
    assert!(keys > 0, "the histogram needs at least one key");
    assert!(buckets > 0, "the histogram needs at least one bucket");
    let quads: Vec<String> = histogram_keys(keys, buckets, seed)
        .iter()
        .map(u64::to_string)
        .collect();
    let zeros = vec!["0"; buckets];
    let source = format!(
        "keys:   .quad {keys_list}
table:  .quad {table_list}
main:   movq $keys, %rdi
        movq ${keys}, %rsi
        fork hist
        movq $table, %rdi
        movq ${buckets}, %rcx
        movq $0, %rax
        movq $1, %rbx
chk:    movq (%rdi), %rdx
        imulq %rbx, %rdx
        addq %rdx, %rax
        addq $8, %rdi
        addq $1, %rbx
        subq $1, %rcx
        jne chk
        out  %rax
        halt
hist:   cmpq ${leaf}, %rsi
        ja .split
.loop:  movq (%rdi), %rbx
        movq $table, %rcx
        leaq (%rcx,%rbx,8), %rcx
        movq (%rcx), %rax
        cmpq $0, %rax
        je .bump
.bump:  addq $1, %rax
        movq %rax, (%rcx)
        addq $8, %rdi
        subq $1, %rsi
        jne .loop
        endfork
.split: movq %rsi, %rbx
        shrq %rsi
        fork hist
        leaq (%rdi,%rsi,8), %rdi
        subq %rsi, %rbx
        movq %rbx, %rsi
        fork hist
        endfork",
        keys_list = quads.join(", "),
        table_list = zeros.join(", "),
        leaf = HISTOGRAM_LEAF,
    );
    assemble(&source).expect("the histogram listing always assembles")
}

/// The expected output of [`histogram_program`]: the checksum
/// `Σ count[i]·(i+1)` over the final bucket counts.
pub fn histogram_expected(keys: usize, buckets: usize, seed: u64) -> Vec<u64> {
    let mut table = vec![0u64; buckets];
    for key in histogram_keys(keys, buckets, seed) {
        table[key as usize] += 1;
    }
    let checksum = table.iter().enumerate().fold(0u64, |acc, (i, count)| {
        acc.wrapping_add(count.wrapping_mul(i as u64 + 1))
    });
    vec![checksum]
}

/// The dataset of a tree-sum instance: `elements` values below `2^20`.
pub fn tree_sum_data(elements: usize, seed: u64) -> Vec<u64> {
    data::values(elements, 1 << 20, seed)
}

/// The paper's recursive fork `sum` generalised with a sequential leaf:
/// the recursion halves the range until at most [`TREE_SUM_LEAF`] elements
/// remain, and a leaf accumulates them with a tight load-add loop. Parent
/// sections combine the two half-sums through a stack temporary, exactly
/// like Figure 5.
///
/// # Panics
///
/// Panics if `elements` is zero.
pub fn tree_sum_program(elements: usize, seed: u64) -> Program {
    assert!(elements > 0, "the tree sum needs at least one element");
    let quads: Vec<String> = tree_sum_data(elements, seed)
        .iter()
        .map(u64::to_string)
        .collect();
    let source = format!(
        "t:      .quad {data_list}
main:   movq $t, %rdi
        movq ${elements}, %rsi
        fork tsum
        out  %rax
        halt
tsum:   cmpq ${leaf}, %rsi
        ja .split
        movq $0, %rax
.acc:   addq (%rdi), %rax
        addq $8, %rdi
        subq $1, %rsi
        jne .acc
        endfork
.split: movq %rsi, %rbx
        shrq %rsi
        fork tsum
        subq $8, %rsp
        movq %rax, 0(%rsp)
        leaq (%rdi,%rsi,8), %rdi
        subq %rsi, %rbx
        movq %rbx, %rsi
        fork tsum
        addq 0(%rsp), %rax
        addq $8, %rsp
        endfork",
        data_list = quads.join(", "),
        leaf = TREE_SUM_LEAF,
    );
    assemble(&source).expect("the tree-sum listing always assembles")
}

/// The expected output of [`tree_sum_program`]: the wrapping sum of the
/// dataset.
pub fn tree_sum_expected(elements: usize, seed: u64) -> Vec<u64> {
    vec![tree_sum_data(elements, seed)
        .iter()
        .copied()
        .fold(0u64, u64::wrapping_add)]
}

/// The serial chain sum over `elements` values: `main` forks one `link`
/// per element, and every fork's continuation — the next loop iteration —
/// becomes a new section on another core (the sectioning rule splits the
/// creator at the fork, so the chain forms one section per element). Each
/// link loads the running total from the shared `acc` word (a renaming
/// request to the previous link's store, hosted on another core), adds
/// its element and stores the total back. The (functionally redundant)
/// conditional between the load and the add makes the fetch stage wait
/// for the loaded value, so every link costs a full NoC round trip during
/// which the whole chip has nothing to fetch — the latency-bound regime
/// of the paper's model.
///
/// Unlike the histogram's random bucket contention, the producer of each
/// load is always already fetched (it sits in the chain's immediate
/// predecessor), so the head-of-chain stall always has a known release
/// cycle and the deadlock heuristic never fires: `forced_stall_releases`
/// stays zero.
///
/// # Panics
///
/// Panics if `elements` is zero.
pub fn chain_sum_program(elements: usize, seed: u64) -> Program {
    assert!(elements > 0, "the chain sum needs at least one element");
    let quads: Vec<String> = tree_sum_data(elements, seed)
        .iter()
        .map(u64::to_string)
        .collect();
    let source = format!(
        "t:      .quad {data_list}
acc:    .quad 0
main:   movq $t, %rdi
        movq ${elements}, %rsi
loop:   fork link
        addq $8, %rdi
        subq $1, %rsi
        jne loop
        movq $acc, %rcx
        movq (%rcx), %rax
        out  %rax
        halt
link:   movq $acc, %rcx
        movq (%rcx), %rax
        cmpq $0, %rax
        je .add
.add:   addq (%rdi), %rax
        movq %rax, (%rcx)
        endfork",
        data_list = quads.join(", "),
    );
    assemble(&source).expect("the chain-sum listing always assembles")
}

/// The expected output of [`chain_sum_program`]: the wrapping sum of the
/// dataset (same dataset as [`tree_sum_program`] at the same size/seed).
pub fn chain_sum_expected(elements: usize, seed: u64) -> Vec<u64> {
    tree_sum_expected(elements, seed)
}

// ---------------------------------------------------------------------
// 256–1024-core scale workloads.
//
// The generators above embed their dataset as a `.quad` list, so a
// 10M-instruction instance would drag a multi-megabyte source through
// the assembler before the first instruction runs. The two generators
// below synthesise their data *in program* with Knuth's MMIX LCG
// ([`LCG_MUL`]/[`LCG_ADD`]) — the data segment stays a few kilobytes at
// any instruction count, and the Rust oracles replay the same generator.
// ---------------------------------------------------------------------

/// A fork-parallel bucket histogram over `keys` LCG-generated keys and
/// `buckets` (a power of two) buckets — [`histogram_program`] rebuilt for
/// the 256–1024-core, ≥10M-instruction regime.
///
/// The recursion halves the key-index range until at most [`SYNTH_LEAF`]
/// keys remain; a leaf seeds a per-leaf LCG from its start index and, per
/// key, draws the next state, maps its high bits onto a bucket and bumps
/// `table[key]` through the same load–conditional–store sequence as
/// [`histogram_program`] (the conditional depends on the *loaded*
/// counter, so fetch stages wait on cross-section writer chains). `main`
/// then folds the table into the checksum `Σ table[i]·(i+1)`.
///
/// # Panics
///
/// Panics if `keys` is zero or `buckets` is not a power of two.
pub fn synth_histogram_program(keys: usize, buckets: usize, seed: u64) -> Program {
    assert!(keys > 0, "the histogram needs at least one key");
    assert!(
        buckets.is_power_of_two(),
        "synthetic histogram buckets must be a power of two (got {buckets})"
    );
    let zeros = vec!["0"; buckets];
    let source = format!(
        "table:  .quad {table_list}
main:   movq $0, %rdi
        movq ${keys}, %rsi
        fork hist
        movq $table, %rdi
        movq ${buckets}, %rcx
        movq $0, %rax
        movq $1, %rbx
chk:    movq (%rdi), %rdx
        imulq %rbx, %rdx
        addq %rdx, %rax
        addq $8, %rdi
        addq $1, %rbx
        subq $1, %rcx
        jne chk
        out  %rax
        halt
hist:   cmpq ${leaf}, %rsi
        ja .split
        movq %rdi, %rdx
        addq ${seed_c}, %rdx
        imulq ${mul}, %rdx
.loop:  imulq ${mul}, %rdx
        addq ${add}, %rdx
        movq %rdx, %rbx
        shrq $33, %rbx
        andq ${mask}, %rbx
        movq $table, %rcx
        leaq (%rcx,%rbx,8), %rcx
        movq (%rcx), %rax
        cmpq $0, %rax
        je .bump
.bump:  addq $1, %rax
        movq %rax, (%rcx)
        subq $1, %rsi
        jne .loop
        endfork
.split: movq %rsi, %rbx
        shrq %rsi
        fork hist
        addq %rsi, %rdi
        subq %rsi, %rbx
        movq %rbx, %rsi
        fork hist
        endfork",
        table_list = zeros.join(", "),
        leaf = SYNTH_LEAF,
        seed_c = seed_imm(seed),
        mul = LCG_MUL,
        add = LCG_ADD,
        mask = buckets - 1,
    );
    assemble(&source).expect("the synthetic histogram listing always assembles")
}

/// The bucket counts [`synth_histogram_program`] produces, replayed by
/// the same split recursion and per-leaf LCG in Rust.
fn synth_histogram_counts(keys: usize, buckets: usize, seed: u64) -> Vec<u64> {
    let mask = buckets as u64 - 1;
    let mut table = vec![0u64; buckets];
    // The same halving recursion as the program, iteratively.
    let mut ranges = vec![(0u64, keys as u64)];
    while let Some((start, count)) = ranges.pop() {
        if count > SYNTH_LEAF as u64 {
            let half = count >> 1;
            ranges.push((start + half, count - half));
            ranges.push((start, half));
        } else {
            let mut state = start.wrapping_add(seed_imm(seed)).wrapping_mul(LCG_MUL);
            for _ in 0..count {
                state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
                table[((state >> 33) & mask) as usize] += 1;
            }
        }
    }
    table
}

/// The expected output of [`synth_histogram_program`]: the checksum
/// `Σ count[i]·(i+1)` over the final bucket counts.
pub fn synth_histogram_expected(keys: usize, buckets: usize, seed: u64) -> Vec<u64> {
    let checksum = synth_histogram_counts(keys, buckets, seed)
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, count)| {
            acc.wrapping_add(count.wrapping_mul(i as u64 + 1))
        });
    vec![checksum]
}

/// `chains` independent serial accumulator chains of `links` links each —
/// the chain sum's latency-bound handoff pattern, widened until it fills
/// a 256–1024-core chip.
///
/// `main` forks one driver per chain; each driver iterates `links` times,
/// forking one `link` per iteration (the sectioning rule splits the
/// driver at every fork, so each iteration is its own section) and
/// advancing a per-chain LCG whose state rides to the link in a
/// fork-copied register. A link loads its chain's accumulator (a
/// renaming request to the previous link's store), passes it through a
/// conditional that depends on the *loaded* value — so the fetch stage
/// waits out the full NoC round trip — and stores back the sum. `main`
/// finally folds every accumulator into one output.
///
/// # Panics
///
/// Panics if `chains` or `links` is zero.
pub fn fan_chain_program(chains: usize, links: usize, seed: u64) -> Program {
    assert!(chains > 0, "the fan chain needs at least one chain");
    assert!(links > 0, "the fan chain needs at least one link");
    let zeros = vec!["0"; chains];
    let source = format!(
        "accs:   .quad {accs_list}
main:   movq $0, %rdi
mloop:  fork drv
        addq $1, %rdi
        cmpq ${chains}, %rdi
        jne mloop
        movq $accs, %rdi
        movq ${chains}, %rcx
        movq $0, %rax
fold:   addq (%rdi), %rax
        addq $8, %rdi
        subq $1, %rcx
        jne fold
        out  %rax
        halt
drv:    movq %rdi, %r8
        movq ${links}, %r9
        movq %rdi, %rdx
        addq ${seed_c}, %rdx
        imulq ${mul}, %rdx
.dloop: fork link
        imulq ${mul}, %rdx
        addq ${add}, %rdx
        subq $1, %r9
        jne .dloop
        endfork
link:   movq $accs, %rcx
        leaq (%rcx,%r8,8), %rcx
        movq %rdx, %rbx
        shrq $33, %rbx
        movq (%rcx), %rax
        cmpq $0, %rax
        je .add
.add:   addq %rbx, %rax
        movq %rax, (%rcx)
        endfork",
        accs_list = zeros.join(", "),
        seed_c = seed_imm(seed),
        mul = LCG_MUL,
        add = LCG_ADD,
    );
    assemble(&source).expect("the fan-chain listing always assembles")
}

/// The expected output of [`fan_chain_program`]: the wrapping sum, over
/// every chain, of the per-link LCG draws.
pub fn fan_chain_expected(chains: usize, links: usize, seed: u64) -> Vec<u64> {
    let mut total = 0u64;
    for chain in 0..chains as u64 {
        let mut state = chain.wrapping_add(seed_imm(seed)).wrapping_mul(LCG_MUL);
        for _ in 0..links {
            total = total.wrapping_add(state >> 33);
            state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
        }
    }
    vec![total]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_machine::Machine;

    /// Runs with the workload's own derived fuel cap, so the caps
    /// themselves are exercised (a starved cap fails here).
    fn run(program: &Program, fuel: u64) -> (Vec<u64>, u64) {
        let mut machine = Machine::load(program).expect("loads");
        let outcome = machine.run(fuel).expect("halts within its derived fuel");
        (outcome.outputs, outcome.instructions)
    }

    #[test]
    fn histogram_matches_its_oracle() {
        for (keys, buckets, seed) in [(40, 8, 1), (130, 16, 2), (257, 5, 3)] {
            let (outputs, _) = run(
                &histogram_program(keys, buckets, seed),
                histogram_fuel(keys, buckets),
            );
            assert_eq!(
                outputs,
                histogram_expected(keys, buckets, seed),
                "histogram({keys}, {buckets}, {seed})"
            );
        }
    }

    #[test]
    fn tree_sum_matches_its_oracle() {
        for (elements, seed) in [(1, 1), (16, 2), (40, 3), (333, 4)] {
            let (outputs, _) = run(&tree_sum_program(elements, seed), tree_sum_fuel(elements));
            assert_eq!(
                outputs,
                tree_sum_expected(elements, seed),
                "tree_sum({elements}, {seed})"
            );
        }
    }

    #[test]
    fn chain_sum_matches_its_oracle() {
        for (elements, seed) in [(1, 1), (2, 9), (100, 3)] {
            let (outputs, _) = run(&chain_sum_program(elements, seed), chain_sum_fuel(elements));
            assert_eq!(
                outputs,
                chain_sum_expected(elements, seed),
                "chain_sum({elements}, {seed})"
            );
        }
    }

    #[test]
    fn synth_histogram_matches_its_oracle() {
        for (keys, buckets, seed) in [(1, 1, 0), (40, 8, 1), (200, 16, 2), (1000, 64, 3)] {
            let (outputs, _) = run(
                &synth_histogram_program(keys, buckets, seed),
                synth_histogram_fuel(keys, buckets),
            );
            assert_eq!(
                outputs,
                synth_histogram_expected(keys, buckets, seed),
                "synth_histogram({keys}, {buckets}, {seed})"
            );
        }
    }

    #[test]
    fn synth_histogram_spreads_keys_over_buckets() {
        let counts = synth_histogram_counts(4096, 64, 9);
        assert_eq!(counts.iter().sum::<u64>(), 4096);
        let hit = counts.iter().filter(|c| **c > 0).count();
        assert!(hit > 48, "only {hit}/64 buckets hit — LCG keys too skewed");
    }

    #[test]
    fn fan_chain_matches_its_oracle() {
        for (chains, links, seed) in [(1, 1, 0), (3, 5, 1), (16, 9, 2), (64, 4, 3)] {
            let (outputs, _) = run(
                &fan_chain_program(chains, links, seed),
                fan_chain_fuel(chains, links),
            );
            assert_eq!(
                outputs,
                fan_chain_expected(chains, links, seed),
                "fan_chain({chains}, {links}, {seed})"
            );
        }
    }

    #[test]
    fn fan_chain_sections_scale_with_chains_times_links() {
        let (chains, links) = (8, 6);
        let arena = parsecs_trace::TraceArena::from_program(
            &fan_chain_program(chains, links, 5),
            fan_chain_fuel(chains, links),
        )
        .expect("runs");
        // Every fork creates exactly one section: `chains` driver forks
        // from main plus `chains × links` link forks, plus the initial
        // section.
        assert_eq!(arena.sections().len(), 1 + chains + chains * links);
        // The chains stay fine-grained: the longest section is main's
        // final fold over the accumulators, not anything per-link.
        assert!(arena.longest_section() <= 32 + 4 * chains);
    }

    #[test]
    fn chain_sum_is_one_section_per_element_plus_the_ends() {
        let program = chain_sum_program(50, 5);
        let mut machine = Machine::load(&program).expect("loads");
        let (_, trace) = machine.run_traced(chain_sum_fuel(50)).expect("halts");
        let sectioned = parsecs_core::SectionedTrace::from_trace(&trace, vec![]);
        // One section per element (each fork splits the loop at the fork
        // site) plus the final continuation carrying `out`/`halt`.
        assert_eq!(sectioned.sections().len(), 51);
        // The chain is serial: every interior section is small.
        assert!(sectioned.longest_section() <= 16);
    }

    #[test]
    fn benchmark_sizes_reach_a_million_instructions() {
        // The perf trajectory's headline cell: ~100k keys must cross the
        // 1M-dynamic-instruction line (checked here at 1/10 scale to keep
        // the test fast — the instruction count is linear in the keys).
        let (_, instructions) = run(
            &histogram_program(10_000, 64, 7),
            histogram_fuel(10_000, 64),
        );
        assert!(
            instructions >= 100_000,
            "histogram at 10k keys runs {instructions} instructions; \
             100k keys would miss the 1M line"
        );
    }

    #[test]
    fn derived_fuel_caps_scale_with_the_instance() {
        // The old hard-coded 1M cap starves a 10M-instruction instance;
        // the derived caps must not. Estimate the per-key / per-link cost
        // from a small run and extrapolate to the scale sizes.
        let (_, small) = run(
            &synth_histogram_program(2_000, 64, 1),
            synth_histogram_fuel(2_000, 64),
        );
        let projected_10m_keys = 10_000_000 / (small / 2_000).max(1);
        assert!(
            synth_histogram_fuel(projected_10m_keys as usize, 4096) > 10_000_000,
            "a ~10M-instruction synth histogram would exhaust its derived fuel"
        );
        let (_, small) = run(&fan_chain_program(32, 16, 1), fan_chain_fuel(32, 16));
        let per_link = (small / (32 * 16)).max(1);
        let projected_links = 10_000_000 / (1024 * per_link);
        assert!(
            fan_chain_fuel(1024, projected_links as usize) > 10_000_000,
            "a ~10M-instruction fan chain would exhaust its derived fuel"
        );
    }

    #[test]
    fn histogram_forks_enough_sections_to_spread() {
        let program = histogram_program(200, 8, 5);
        let mut machine = Machine::load(&program).expect("loads");
        let (_, trace) = machine.run_traced(histogram_fuel(200, 8)).expect("halts");
        let sectioned = parsecs_core::SectionedTrace::from_trace(&trace, vec![]);
        assert!(
            sectioned.sections().len() > 16,
            "only {} sections",
            sectioned.sections().len()
        );
    }
}
