//! # parsecs-workloads — the paper's workloads
//!
//! Two families of workloads drive the reproduction:
//!
//! * [`sum`] — the paper's running example: the recursive vector sum of
//!   Figure 1, in its `call`/`ret` form (Figure 2) and its `fork`/`endfork`
//!   form (Figure 5), as assembly programs parameterised by the dataset.
//! * [`scale`] — large fork workloads for the simulator's performance
//!   trajectory: a fork-parallel bucket histogram and a leaf-grained
//!   tree sum, sized to ≥1M dynamic instructions at benchmark scale.
//! * [`pbbs`] — analogues of the ten PBBS benchmarks of Table 1
//!   (breadth-first search, comparison sort, convex hull, dictionary,
//!   integer sort, maximal independent set, maximal matching, minimum
//!   spanning tree, nearest neighbours, remove duplicates), written in
//!   mini-C, compiled with [`parsecs_cc`], and paired with seeded dataset
//!   generators and Rust oracles. These feed the Figure 7 ILP study.
//!
//! The PBBS C++ sources and the paper's gigascale datasets are not
//! available; the analogues implement the same algorithmic kernels at
//! laptop scale (see DESIGN.md §2 for the substitution rationale).
//!
//! ## Example
//!
//! ```
//! use parsecs_workloads::pbbs::{Benchmark, Catalog};
//! use parsecs_cc::Backend;
//! use parsecs_machine::Machine;
//!
//! let bench = Benchmark::ComparisonSort;
//! let program = bench.program(64, 1, Backend::Calls).expect("compiles");
//! let mut machine = Machine::load(&program).unwrap();
//! let outcome = machine.run(50_000_000).unwrap();
//! assert_eq!(outcome.outputs, bench.expected(64, 1));
//! assert_eq!(Catalog::table1().len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod pbbs;
pub mod scale;
pub mod sum;
