//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` or `Some` of the inner strategy, roughly evenly.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, prng: &mut TestRng) -> Option<S::Value> {
        if prng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.inner.generate(prng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_appear() {
        let mut prng = TestRng::deterministic("option");
        let s = of(0u64..10);
        let drawn: Vec<Option<u64>> = (0..100).map(|_| s.generate(&mut prng)).collect();
        assert!(drawn.iter().any(Option::is_none));
        assert!(drawn.iter().any(Option::is_some));
    }
}
