//! The imports property tests conventionally glob in.

pub use crate::strategy::{any, Just, Strategy};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
