//! The deterministic PRNG behind generation.

/// A splitmix64 generator. Every property gets a seed derived from its
/// name, so runs are reproducible and independent of test order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `salt` (typically the property name).
    pub fn deterministic(salt: &str) -> TestRng {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in salt.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly random index below `bound` (which must be non-zero).
    pub fn index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_salted() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn index_is_bounded() {
        let mut r = TestRng::deterministic("idx");
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }
}
