//! Vendored offline stand-in for the crates.io `proptest` crate.
//!
//! See `README.md`: only the API subset used by this workspace is
//! provided, generation is deterministic (fixed seed, fixed case count),
//! and there is no shrinking.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Number of cases each `proptest!` property runs.
pub const CASES: usize = 64;

/// Runs one property body over `CASES` generated cases.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // In real code this carries #[test]; attributes are passed through.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prng);)+
                    $body
                }
            }
        )*
    };
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// `assert!` under a property: panics (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property: panics (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
