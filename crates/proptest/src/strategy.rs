//! The `Strategy` trait and the combinators the workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, prng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |prng| self.generate(prng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, prng: &mut TestRng) -> T {
        (self.gen)(prng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, prng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(prng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _prng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one value type (see
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, prng: &mut TestRng) -> T {
        let i = prng.index(self.arms.len());
        self.arms[i].generate(prng)
    }
}

/// Generates any value of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, prng: &mut TestRng) -> T {
        T::arbitrary(prng)
    }
}

/// Types [`any`] can draw.
pub trait Arbitrary {
    /// Draws one uniformly random value.
    fn arbitrary(prng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(prng: &mut TestRng) -> $t {
                prng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(prng: &mut TestRng) -> bool {
        prng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, prng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (prng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        })*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, prng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(prng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut prng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (-1024i64..1024).generate(&mut prng);
            assert!((-1024..1024).contains(&v));
            let u = (3usize..9).generate(&mut prng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn map_tuple_just_and_union_compose() {
        let mut prng = TestRng::deterministic("compose");
        let s = crate::prop_oneof![(0u64..10).prop_map(|x| x * 2), Just(1u64),];
        for _ in 0..100 {
            let v = s.generate(&mut prng);
            assert!(v == 1 || (v % 2 == 0 && v < 20));
        }
        let pair = ((0u8..4), any::<bool>()).generate(&mut prng);
        assert!(pair.0 < 4);
    }
}
