//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `len` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, prng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(prng);
        (0..n).map(|_| self.element.generate(prng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn length_is_in_range() {
        let mut prng = TestRng::deterministic("vec");
        let s = vec(any::<u8>(), 1..5);
        for _ in 0..200 {
            let v = s.generate(&mut prng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
