//! # parsecs-machine — the sequential reference machine
//!
//! This crate executes [`parsecs_isa::Program`]s the way a conventional
//! single-core processor would, and records dynamic traces. It is the
//! *substrate* of the reproduction:
//!
//! * it provides the reference semantics against which the many-core
//!   section simulator (`parsecs-core`) is validated;
//! * it produces the dynamic traces consumed by the ILP limit analyzer
//!   (`parsecs-ilp`), i.e. the methodology behind Figure 7 of the paper;
//! * it gives `fork`/`endfork` programs a *sequentialised* depth-first
//!   semantics (the paper's section total order), so that fork-transformed
//!   programs can be checked for functional equivalence with their
//!   `call`/`ret` originals.
//!
//! ## Example
//!
//! ```
//! use parsecs_machine::Machine;
//!
//! let program = parsecs_asm::assemble(
//!     "t:    .quad 4, 2, 6, 4, 5
//!      main: movq $t, %rdi
//!            movq (%rdi), %rax
//!            addq 8(%rdi), %rax
//!            out  %rax
//!            halt",
//! ).expect("assembles");
//! let mut machine = Machine::load(&program)?;
//! let outcome = machine.run(1_000)?;
//! assert_eq!(outcome.outputs, vec![6]);
//! # Ok::<(), parsecs_machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod error;
mod exec;
mod memory;
mod trace;

pub use cpu::CpuState;
pub use error::MachineError;
pub use exec::{Machine, Outcome, StepEvent};
pub use memory::Memory;
pub use trace::{Location, Trace, TraceEvent, TraceKind, TraceSink, TraceStep};
