//! Sparse 64-bit data memory.

use std::collections::HashMap;

/// A sparse, word-granular data memory.
///
/// The parsecs machine only performs 64-bit, 8-byte-aligned accesses (as do
/// the paper's listings), so memory is stored as a map from aligned byte
/// addresses to 64-bit words. Unwritten locations read as zero, mirroring a
/// zero-initialised address space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    words: HashMap<u64, u64>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Whether `addr` is 8-byte aligned.
    pub fn is_aligned(addr: u64) -> bool {
        addr.is_multiple_of(8)
    }

    /// Reads the 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is unaligned; callers validate
    /// alignment and report [`crate::MachineError::UnalignedAccess`].
    pub fn read(&self, addr: u64) -> u64 {
        debug_assert!(Self::is_aligned(addr), "unaligned read at {addr:#x}");
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the 64-bit word at `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        debug_assert!(Self::is_aligned(addr), "unaligned write at {addr:#x}");
        if value == 0 {
            // Keep the map sparse: a zero store is indistinguishable from an
            // untouched location when reading.
            self.words.remove(&addr);
        } else {
            self.words.insert(addr, value);
        }
    }

    /// Number of non-zero words currently stored.
    pub fn footprint(&self) -> usize {
        self.words.len()
    }

    /// Iterates over the non-zero `(address, value)` pairs in no particular
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(a, v)| (*a, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0x1000), 0);
        assert_eq!(m.footprint(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        m.write(0x2000, 42);
        m.write(0x2008, u64::MAX);
        assert_eq!(m.read(0x2000), 42);
        assert_eq!(m.read(0x2008), u64::MAX);
        assert_eq!(m.read(0x2010), 0);
        assert_eq!(m.footprint(), 2);
    }

    #[test]
    fn zero_store_keeps_memory_sparse() {
        let mut m = Memory::new();
        m.write(0x2000, 7);
        m.write(0x2000, 0);
        assert_eq!(m.read(0x2000), 0);
        assert_eq!(m.footprint(), 0);
    }

    #[test]
    fn alignment_predicate() {
        assert!(Memory::is_aligned(0));
        assert!(Memory::is_aligned(0x1008));
        assert!(!Memory::is_aligned(0x1001));
        assert!(!Memory::is_aligned(0x1004));
    }

    proptest! {
        #[test]
        fn last_write_wins(values in proptest::collection::vec((0u64..64, any::<u64>()), 1..100)) {
            let mut m = Memory::new();
            let mut model: std::collections::HashMap<u64, u64> = Default::default();
            for (slot, v) in values {
                let addr = 0x4000 + slot * 8;
                m.write(addr, v);
                model.insert(addr, v);
            }
            for (addr, v) in model {
                prop_assert_eq!(m.read(addr), v);
            }
        }
    }
}
