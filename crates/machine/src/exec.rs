//! The sequential executor.

use parsecs_isa::{AluOp, Effects, Flags, Inst, Operand, Program, Reg};

use crate::{CpuState, Location, MachineError, Memory, Trace, TraceKind, TraceSink, TraceStep};

/// The result of one execution step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// The machine executed one instruction and can continue.
    Continue,
    /// The machine halted (a `halt`, or the outermost flow reached
    /// `endfork`).
    Halted,
}

/// The result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Values emitted by `out` instructions, in program order.
    pub outputs: Vec<u64>,
    /// Number of dynamic instructions executed.
    pub instructions: u64,
    /// Number of dynamic loads.
    pub loads: u64,
    /// Number of dynamic stores.
    pub stores: u64,
}

/// A saved continuation used to give `fork` programs a sequential,
/// depth-first semantics (the paper's section total order).
#[derive(Debug, Clone)]
struct Continuation {
    resume_ip: usize,
    saved_callee: Vec<(Reg, u64)>,
}

/// The sequential reference machine.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    /// Architectural effects of each static instruction, computed once at
    /// load: the traced run reuses them instead of re-deriving (and
    /// re-allocating) the register lists on every dynamic instruction.
    effects: Vec<Effects>,
    cpu: CpuState,
    memory: Memory,
    outputs: Vec<u64>,
    continuations: Vec<Continuation>,
    steps: u64,
    loads: u64,
    stores: u64,
    halted: bool,
    /// Reusable scratch for the locations of the current step, so the
    /// streaming trace path performs no per-instruction allocation.
    scratch_reads: Vec<Location>,
    scratch_writes: Vec<Location>,
    scratch_mem_reads: Vec<u64>,
    scratch_mem_writes: Vec<u64>,
}

impl Machine {
    /// Loads a program: initialises memory from its data segment and places
    /// the instruction pointer at the entry point.
    ///
    /// # Errors
    ///
    /// Returns an error if the program is empty.
    pub fn load(program: &Program) -> Result<Machine, MachineError> {
        if program.is_empty() {
            return Err(MachineError::InvalidIp { ip: 0, len: 0 });
        }
        let mut memory = Memory::new();
        for (addr, value) in program.data_words() {
            memory.write(addr, value);
        }
        Ok(Machine {
            effects: program.insns().iter().map(Effects::of).collect(),
            program: program.clone(),
            cpu: CpuState::at_entry(program.entry()),
            memory,
            outputs: Vec::new(),
            continuations: Vec::new(),
            steps: 0,
            loads: 0,
            stores: 0,
            halted: false,
            scratch_reads: Vec::new(),
            scratch_writes: Vec::new(),
            scratch_mem_reads: Vec::new(),
            scratch_mem_writes: Vec::new(),
        })
    }

    /// The current architectural register state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// The current data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Values emitted so far by `out` instructions.
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Whether the machine has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs until `halt` (or outermost `endfork`).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfFuel`] if the program does not halt
    /// within `fuel` instructions, or any execution error.
    pub fn run(&mut self, fuel: u64) -> Result<Outcome, MachineError> {
        let mut none: Option<&mut Trace> = None;
        self.run_inner(fuel, &mut none)
    }

    /// Runs until halt, recording the dynamic trace.
    ///
    /// Compatibility shim over [`Machine::run_with_sink`]: the [`Trace`]
    /// is itself a [`TraceSink`] that materialises every event. Streaming
    /// consumers should prefer `run_with_sink` directly — it never builds
    /// the event vector.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_traced(&mut self, fuel: u64) -> Result<(Outcome, Trace), MachineError> {
        let mut trace = Trace::new();
        let outcome = self.run_with_sink(fuel, &mut trace)?;
        Ok((outcome, trace))
    }

    /// Runs until halt, streaming every retired instruction into `sink`.
    ///
    /// This is the front of the single-pass trace pipeline: the sink sees
    /// each instruction exactly once, borrowing the machine's scratch
    /// buffers ([`TraceStep`]), so tracing adds no per-instruction
    /// allocation. A sink whose [`TraceSink::wants_more`] turns `false`
    /// (it hit a capacity limit and would only discard further steps)
    /// stops the run at that point; the outcome so far is returned and
    /// the sink's own finishing step reports the condition.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_with_sink<S: TraceSink>(
        &mut self,
        fuel: u64,
        sink: &mut S,
    ) -> Result<Outcome, MachineError> {
        let mut sink = Some(sink);
        self.run_inner(fuel, &mut sink)
    }

    fn run_inner<S: TraceSink>(
        &mut self,
        fuel: u64,
        sink: &mut Option<&mut S>,
    ) -> Result<Outcome, MachineError> {
        let mut remaining = fuel;
        while !self.halted {
            // A stopped sink ends the run before any further instruction
            // (and before the fuel check: no instruction is about to be
            // executed, so reporting OutOfFuel here would mask the
            // sink's own condition, e.g. a latched capacity error).
            if let Some(sink) = sink.as_ref() {
                if !sink.wants_more() {
                    break;
                }
            }
            if remaining == 0 {
                return Err(MachineError::OutOfFuel { steps: self.steps });
            }
            remaining -= 1;
            self.step_sink(sink)?;
        }
        Ok(Outcome {
            outputs: self.outputs.clone(),
            instructions: self.steps,
            loads: self.loads,
            stores: self.stores,
        })
    }

    /// Executes a single instruction, optionally recording it.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid instruction pointer, an unaligned
    /// memory access, or an unresolved target.
    pub fn step(&mut self, trace: &mut Option<Trace>) -> Result<StepEvent, MachineError> {
        let mut sink = trace.as_mut();
        self.step_sink(&mut sink)
    }

    /// Executes a single instruction, streaming it to `sink` when present.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::step`].
    pub fn step_sink<S: TraceSink>(
        &mut self,
        sink: &mut Option<&mut S>,
    ) -> Result<StepEvent, MachineError> {
        if self.halted {
            return Ok(StepEvent::Halted);
        }
        let ip = self.cpu.ip;
        let inst = self
            .program
            .get(ip)
            .cloned()
            .ok_or(MachineError::InvalidIp {
                ip,
                len: self.program.len(),
            })?;

        // Reuse the machine's scratch buffers (restored below); an early
        // error return leaves them empty, which is also fine.
        let mut mem_reads: Vec<u64> = std::mem::take(&mut self.scratch_mem_reads);
        let mut mem_writes: Vec<u64> = std::mem::take(&mut self.scratch_mem_writes);
        mem_reads.clear();
        mem_writes.clear();
        let mut out_value = None;
        let mut next_ip = ip + 1;
        let mut kind = TraceKind::Other;

        match &inst {
            Inst::Mov { src, dst } => {
                let v = self.read_operand(src, ip, &mut mem_reads)?;
                self.write_operand(dst, v, ip, &mut mem_writes)?;
            }
            Inst::Lea { addr, dst } => {
                let ea = self.cpu.effective_address(addr);
                self.cpu.set(*dst, ea);
            }
            Inst::Push { src } => {
                let v = self.read_operand(src, ip, &mut mem_reads)?;
                let rsp = self.cpu.get(Reg::Rsp).wrapping_sub(8);
                self.cpu.set(Reg::Rsp, rsp);
                self.store_word(rsp, v, ip, &mut mem_writes)?;
            }
            Inst::Pop { dst } => {
                let rsp = self.cpu.get(Reg::Rsp);
                let v = self.load_word(rsp, ip, &mut mem_reads)?;
                self.cpu.set(Reg::Rsp, rsp.wrapping_add(8));
                self.write_operand(dst, v, ip, &mut mem_writes)?;
            }
            Inst::Alu { op, src, dst } => {
                let s = self.read_operand(src, ip, &mut mem_reads)?;
                let d = self.read_operand(dst, ip, &mut mem_reads)?;
                let result = op.apply(d, s);
                self.cpu.flags = match op {
                    AluOp::Add => Flags::from_add(d, s),
                    AluOp::Sub => Flags::from_sub(d, s),
                    _ => Flags::from_logic(result),
                };
                self.write_operand(dst, result, ip, &mut mem_writes)?;
            }
            Inst::Unary { op, dst } => {
                let d = self.read_operand(dst, ip, &mut mem_reads)?;
                let result = op.apply(d);
                self.cpu.flags = match op {
                    parsecs_isa::UnaryOp::Neg => Flags::from_sub(0, d),
                    parsecs_isa::UnaryOp::Not => self.cpu.flags,
                    parsecs_isa::UnaryOp::Inc => Flags::from_add(d, 1),
                    parsecs_isa::UnaryOp::Dec => Flags::from_sub(d, 1),
                };
                self.write_operand(dst, result, ip, &mut mem_writes)?;
            }
            Inst::Cmp { src, dst } => {
                let s = self.read_operand(src, ip, &mut mem_reads)?;
                let d = self.read_operand(dst, ip, &mut mem_reads)?;
                self.cpu.flags = Flags::from_sub(d, s);
            }
            Inst::Test { src, dst } => {
                let s = self.read_operand(src, ip, &mut mem_reads)?;
                let d = self.read_operand(dst, ip, &mut mem_reads)?;
                self.cpu.flags = Flags::from_logic(d & s);
            }
            Inst::Jmp { target } => {
                next_ip = target.resolved()?;
            }
            Inst::Jcc { cond, target } => {
                if cond.eval(self.cpu.flags) {
                    next_ip = target.resolved()?;
                }
            }
            Inst::Call { target } => {
                kind = TraceKind::Call;
                let rsp = self.cpu.get(Reg::Rsp).wrapping_sub(8);
                self.cpu.set(Reg::Rsp, rsp);
                self.store_word(rsp, (ip + 1) as u64, ip, &mut mem_writes)?;
                next_ip = target.resolved()?;
            }
            Inst::Ret => {
                kind = TraceKind::Ret;
                let rsp = self.cpu.get(Reg::Rsp);
                let ret = self.load_word(rsp, ip, &mut mem_reads)?;
                self.cpu.set(Reg::Rsp, rsp.wrapping_add(8));
                next_ip = ret as usize;
            }
            Inst::Fork { target } => {
                kind = TraceKind::Fork;
                // Depth-first sequentialisation: the callee path runs now;
                // the forked continuation resumes at the next instruction
                // with the callee-saved registers (and %rsp) as they are at
                // the fork, exactly the register set the paper copies into
                // the section-creation message.
                self.continuations.push(Continuation {
                    resume_ip: ip + 1,
                    saved_callee: self.cpu.fork_copied(),
                });
                next_ip = target.resolved()?;
            }
            Inst::EndFork => {
                kind = TraceKind::EndFork;
                match self.continuations.pop() {
                    Some(cont) => {
                        for (r, v) in cont.saved_callee {
                            self.cpu.set(r, v);
                        }
                        next_ip = cont.resume_ip;
                    }
                    None => {
                        // The outermost flow ended: the run is complete.
                        self.halted = true;
                    }
                }
            }
            Inst::Out { src } => {
                let v = self.read_operand(src, ip, &mut mem_reads)?;
                self.outputs.push(v);
                out_value = Some(v);
            }
            Inst::Nop => {}
            Inst::Halt => {
                kind = TraceKind::Halt;
                self.halted = true;
            }
        }

        self.steps += 1;
        self.loads += mem_reads.len() as u64;
        self.stores += mem_writes.len() as u64;

        if let Some(sink) = sink {
            self.record_step(sink, &inst, ip, kind, &mem_reads, &mem_writes, out_value);
        }
        mem_reads.clear();
        mem_writes.clear();
        self.scratch_mem_reads = mem_reads;
        self.scratch_mem_writes = mem_writes;

        if self.halted {
            return Ok(StepEvent::Halted);
        }
        if next_ip >= self.program.len() {
            return Err(MachineError::InvalidIp {
                ip: next_ip,
                len: self.program.len(),
            });
        }
        self.cpu.ip = next_ip;
        Ok(StepEvent::Continue)
    }

    /// Assembles the sorted, deduplicated location lists of the step just
    /// executed (into the machine's scratch buffers) and streams it to
    /// `sink`.
    #[allow(clippy::too_many_arguments)]
    fn record_step<S: TraceSink>(
        &mut self,
        sink: &mut S,
        inst: &Inst,
        ip: usize,
        kind: TraceKind,
        mem_reads: &[u64],
        mem_writes: &[u64],
        out_value: Option<u64>,
    ) {
        let effects = &self.effects[ip];
        let reads = &mut self.scratch_reads;
        reads.clear();
        reads.extend(effects.reg_reads.iter().map(|r| Location::Reg(*r)));
        if effects.reads_flags {
            reads.push(Location::Flags);
        }
        reads.extend(mem_reads.iter().copied().map(Location::Mem));
        reads.sort_unstable();
        reads.dedup();
        let writes = &mut self.scratch_writes;
        writes.clear();
        writes.extend(effects.reg_writes.iter().map(|r| Location::Reg(*r)));
        if effects.writes_flags {
            writes.push(Location::Flags);
        }
        writes.extend(mem_writes.iter().copied().map(Location::Mem));
        writes.sort_unstable();
        writes.dedup();
        sink.record(&TraceStep {
            seq: self.steps - 1,
            ip,
            mnemonic: inst.mnemonic(),
            reads,
            writes,
            is_control: effects.is_control,
            updates_stack_pointer: effects.updates_stack_pointer,
            kind,
            out_value,
        });
    }

    fn read_operand(
        &mut self,
        op: &Operand,
        ip: usize,
        mem_reads: &mut Vec<u64>,
    ) -> Result<u64, MachineError> {
        match op {
            Operand::Imm(v) => Ok(*v as u64),
            Operand::Reg(r) => Ok(self.cpu.get(*r)),
            Operand::Mem(m) => {
                let addr = self.cpu.effective_address(m);
                self.load_word(addr, ip, mem_reads)
            }
            Operand::Sym(name) => Err(parsecs_isa::IsaError::UndefinedSymbol(name.clone()).into()),
        }
    }

    fn write_operand(
        &mut self,
        op: &Operand,
        value: u64,
        ip: usize,
        mem_writes: &mut Vec<u64>,
    ) -> Result<(), MachineError> {
        match op {
            Operand::Reg(r) => {
                self.cpu.set(*r, value);
                Ok(())
            }
            Operand::Mem(m) => {
                let addr = self.cpu.effective_address(m);
                self.store_word(addr, value, ip, mem_writes)
            }
            Operand::Imm(_) | Operand::Sym(_) => Err(parsecs_isa::IsaError::InvalidOperands {
                mnemonic: "store",
                reason: "destination must be a register or memory".into(),
            }
            .into()),
        }
    }

    fn load_word(
        &mut self,
        addr: u64,
        ip: usize,
        mem_reads: &mut Vec<u64>,
    ) -> Result<u64, MachineError> {
        if !Memory::is_aligned(addr) {
            return Err(MachineError::UnalignedAccess { addr, ip });
        }
        mem_reads.push(addr);
        Ok(self.memory.read(addr))
    }

    fn store_word(
        &mut self,
        addr: u64,
        value: u64,
        ip: usize,
        mem_writes: &mut Vec<u64>,
    ) -> Result<(), MachineError> {
        if !Memory::is_aligned(addr) {
            return Err(MachineError::UnalignedAccess { addr, ip });
        }
        mem_writes.push(addr);
        self.memory.write(addr, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_asm::assemble;
    use proptest::prelude::*;

    fn run_source(src: &str) -> Outcome {
        let program = assemble(src).expect("assembles");
        let mut m = Machine::load(&program).expect("loads");
        m.run(1_000_000).expect("halts")
    }

    /// A sink whose `wants_more` turns false stops the run at that point
    /// (the streaming sectioner uses this to abandon a run whose trace
    /// outgrew the arena, instead of executing the rest into a discarding
    /// sink).
    #[test]
    fn a_saturated_sink_stops_the_run_early() {
        struct Limited {
            seen: usize,
            cap: usize,
        }
        impl TraceSink for Limited {
            fn record(&mut self, _step: &TraceStep<'_>) {
                self.seen += 1;
            }
            fn wants_more(&self) -> bool {
                self.seen < self.cap
            }
        }
        let program = assemble(
            "main: movq $0, %rax
             loop: addq $1, %rax
                   cmpq $100, %rax
                   jne loop
                   out  %rax
                   halt",
        )
        .expect("assembles");
        let mut sink = Limited { seen: 0, cap: 10 };
        let mut m = Machine::load(&program).expect("loads");
        let outcome = m.run_with_sink(1_000_000, &mut sink).expect("stops early");
        assert_eq!(sink.seen, 10);
        assert_eq!(outcome.instructions, 10);
        assert!(outcome.outputs.is_empty(), "never reached the out");

        // The sink stop takes precedence over fuel exhaustion: a sink
        // saturated on the final fueled step reports its own condition,
        // not OutOfFuel.
        let mut sink = Limited { seen: 0, cap: 10 };
        let mut m = Machine::load(&program).expect("loads");
        let outcome = m.run_with_sink(10, &mut sink).expect("stop, not OutOfFuel");
        assert_eq!(outcome.instructions, 10);
    }

    #[test]
    fn arithmetic_and_output() {
        let out = run_source(
            "main: movq $40, %rax
                   addq $2, %rax
                   movq $10, %rbx
                   imulq %rbx, %rax
                   out  %rax
                   halt",
        );
        assert_eq!(out.outputs, vec![420]);
        assert_eq!(out.instructions, 6);
    }

    #[test]
    fn loads_stores_and_lea() {
        let out = run_source(
            "t:    .quad 7, 11, 13
             main: movq $t, %rdi
                   movq $2, %rsi
                   movq (%rdi,%rsi,8), %rax   # rax = t[2] = 13
                   leaq 8(%rdi), %rbx         # rbx = &t[1]
                   movq (%rbx), %rcx          # rcx = 11
                   addq %rcx, %rax
                   movq %rax, 16(%rdi)        # t[2] = 24
                   movq (%rdi,%rsi,8), %rdx
                   out  %rdx
                   halt",
        );
        assert_eq!(out.outputs, vec![24]);
        assert_eq!(out.loads, 3);
        assert_eq!(out.stores, 1);
    }

    #[test]
    fn conditional_branch_loop() {
        // Sum the integers 1..=10 with a countdown loop.
        let out = run_source(
            "main: movq $10, %rcx
                   movq $0, %rax
             loop: addq %rcx, %rax
                   subq $1, %rcx
                   jne  loop
                   out  %rax
                   halt",
        );
        assert_eq!(out.outputs, vec![55]);
    }

    #[test]
    fn call_and_ret() {
        let out = run_source(
            "main:   movq $5, %rdi
                     call square
                     out  %rax
                     halt
             square: movq %rdi, %rax
                     imulq %rdi, %rax
                     ret",
        );
        assert_eq!(out.outputs, vec![25]);
    }

    #[test]
    fn recursive_call_version_of_sum_matches_rust() {
        let data = [4u64, 2, 6, 4, 5, 1, 9, 3];
        let quads: Vec<String> = data.iter().map(u64::to_string).collect();
        let src = format!(
            "t:   .quad {}
             main: movq $t, %rdi
                   movq ${}, %rsi
                   call sum
                   out  %rax
                   halt
             sum:  cmpq $2, %rsi
                   ja .L2
                   movq (%rdi), %rax
                   jne .L1
                   addq 8(%rdi), %rax
             .L1:  ret
             .L2:  pushq %rbx
                   pushq %rdi
                   pushq %rsi
                   shrq %rsi
                   call sum
                   popq %rbx
                   pushq %rbx
                   subq $8, %rsp
                   movq %rax, 0(%rsp)
                   leaq (%rdi,%rsi,8), %rdi
                   subq %rsi, %rbx
                   movq %rbx, %rsi
                   call sum
                   addq 0(%rsp), %rax
                   addq $8, %rsp
                   popq %rsi
                   popq %rdi
                   popq %rbx
                   ret",
            quads.join(", "),
            data.len(),
        );
        let out = run_source(&src);
        assert_eq!(out.outputs, vec![data.iter().sum::<u64>()]);
    }

    #[test]
    fn fork_version_of_sum_matches_call_version() {
        let data = [4u64, 2, 6, 4, 5];
        let quads: Vec<String> = data.iter().map(u64::to_string).collect();
        let src = format!(
            "t:   .quad {}
             main: movq $t, %rdi
                   movq ${}, %rsi
                   fork sum
                   out  %rax
                   halt
             sum:  cmpq $2, %rsi
                   ja .L2
                   movq (%rdi), %rax
                   jne .L1
                   addq 8(%rdi), %rax
             .L1:  endfork
             .L2:  movq %rsi, %rbx
                   shrq %rsi
                   fork sum
                   subq $8, %rsp
                   movq %rax, 0(%rsp)
                   leaq (%rdi,%rsi,8), %rdi
                   subq %rsi, %rbx
                   movq %rbx, %rsi
                   fork sum
                   addq 0(%rsp), %rax
                   addq $8, %rsp
                   endfork",
            quads.join(", "),
            data.len(),
        );
        let out = run_source(&src);
        assert_eq!(out.outputs, vec![21]);
    }

    #[test]
    fn fork_as_main_flow_halts_on_outermost_endfork() {
        let out = run_source(
            "main: movq $1, %rax
                   fork child
                   out %rax
                   endfork
             child: addq $41, %rax
                   endfork",
        );
        // The child runs first (depth-first), then the continuation prints.
        assert_eq!(out.outputs, vec![42]);
    }

    #[test]
    fn trace_records_locations() {
        let program = assemble(
            "t:   .quad 3
             main: movq $t, %rdi
                   movq (%rdi), %rax
                   addq $1, %rax
                   movq %rax, (%rdi)
                   halt",
        )
        .unwrap();
        let mut m = Machine::load(&program).unwrap();
        let (outcome, trace) = m.run_traced(100).unwrap();
        assert_eq!(outcome.instructions, 5);
        assert_eq!(trace.len(), 5);
        let load = &trace.events()[1];
        assert!(load.reads.contains(&Location::Mem(parsecs_isa::DATA_BASE)));
        assert!(load.writes.contains(&Location::Reg(Reg::Rax)));
        let store = &trace.events()[3];
        assert!(store
            .writes
            .contains(&Location::Mem(parsecs_isa::DATA_BASE)));
        assert_eq!(trace.loads(), 1);
        assert_eq!(trace.stores(), 1);
        assert_eq!(trace.count_kind(TraceKind::Halt), 1);
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let program = assemble("main: jmp main").unwrap();
        let mut m = Machine::load(&program).unwrap();
        assert_eq!(
            m.run(10).unwrap_err(),
            MachineError::OutOfFuel { steps: 10 }
        );
    }

    #[test]
    fn falling_off_the_program_is_reported() {
        let program = assemble("main: nop\n nop").unwrap();
        let mut m = Machine::load(&program).unwrap();
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, MachineError::InvalidIp { .. }));
    }

    #[test]
    fn unaligned_access_is_reported() {
        let program = assemble("main: movq $3, %rdi\n movq (%rdi), %rax\n halt").unwrap();
        let mut m = Machine::load(&program).unwrap();
        let err = m.run(10).unwrap_err();
        assert_eq!(err, MachineError::UnalignedAccess { addr: 3, ip: 1 });
    }

    #[test]
    fn empty_program_is_rejected() {
        let program = assemble("").unwrap();
        assert!(Machine::load(&program).is_err());
    }

    proptest! {
        #[test]
        fn alu_matches_native_semantics(a in any::<i64>(), b in any::<i64>()) {
            let src = format!(
                "main: movq ${a}, %rax
                       movq ${b}, %rbx
                       movq %rax, %rcx
                       addq %rbx, %rcx
                       out  %rcx
                       movq %rax, %rcx
                       subq %rbx, %rcx
                       out  %rcx
                       movq %rax, %rcx
                       imulq %rbx, %rcx
                       out  %rcx
                       movq %rax, %rcx
                       xorq %rbx, %rcx
                       out  %rcx
                       halt"
            );
            let out = run_source(&src);
            prop_assert_eq!(out.outputs[0], a.wrapping_add(b) as u64);
            prop_assert_eq!(out.outputs[1], a.wrapping_sub(b) as u64);
            prop_assert_eq!(out.outputs[2], a.wrapping_mul(b) as u64);
            prop_assert_eq!(out.outputs[3], (a ^ b) as u64);
        }

        #[test]
        fn branch_decisions_match_rust_comparisons(a in -1000i64..1000, b in -1000i64..1000) {
            let src = format!(
                "main: movq ${a}, %rax
                       cmpq ${b}, %rax
                       jg   greater
                       out  $0
                       halt
                 greater: out $1
                       halt"
            );
            let out = run_source(&src);
            prop_assert_eq!(out.outputs[0], (a > b) as u64);
        }
    }
}
