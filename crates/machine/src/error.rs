//! Machine execution errors.

use std::error::Error;
use std::fmt;

use parsecs_isa::IsaError;

/// Errors produced while loading or executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The instruction pointer left the program.
    InvalidIp {
        /// The offending instruction index.
        ip: usize,
        /// Program length.
        len: usize,
    },
    /// The fuel (maximum step count) was exhausted before `halt`.
    OutOfFuel {
        /// Number of steps executed.
        steps: u64,
    },
    /// A data memory access was not 8-byte aligned.
    UnalignedAccess {
        /// The offending address.
        addr: u64,
        /// Index of the instruction performing the access.
        ip: usize,
    },
    /// `ret` or `endfork` was executed with an empty call/continuation
    /// context and no enclosing `main` to return to.
    EmptyReturnContext {
        /// Index of the offending instruction.
        ip: usize,
    },
    /// A structural ISA problem surfaced at run time (e.g. an unresolved
    /// target in a hand-constructed program).
    Isa(IsaError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidIp { ip, len } => {
                write!(
                    f,
                    "instruction pointer {ip} outside program of length {len}"
                )
            }
            MachineError::OutOfFuel { steps } => {
                write!(f, "execution did not halt after {steps} steps")
            }
            MachineError::UnalignedAccess { addr, ip } => {
                write!(
                    f,
                    "unaligned 64-bit access to {addr:#x} at instruction {ip}"
                )
            }
            MachineError::EmptyReturnContext { ip } => {
                write!(f, "return without caller at instruction {ip}")
            }
            MachineError::Isa(e) => write!(f, "{e}"),
        }
    }
}

impl Error for MachineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MachineError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for MachineError {
    fn from(e: IsaError) -> MachineError {
        MachineError::Isa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(MachineError::InvalidIp { ip: 9, len: 3 }
            .to_string()
            .contains('9'));
        assert!(MachineError::OutOfFuel { steps: 10 }
            .to_string()
            .contains("10"));
        assert!(MachineError::UnalignedAccess { addr: 0x11, ip: 2 }
            .to_string()
            .contains("0x11"));
        let e: MachineError = IsaError::UndefinedLabel("f".into()).into();
        assert!(e.to_string().contains("undefined label"));
    }
}
