//! Dynamic execution traces.
//!
//! A trace is the sequence of executed instructions together with the
//! architectural locations each one read and wrote. It is the input of the
//! ILP limit analysis (`parsecs-ilp`), which reimplements the methodology
//! behind Figure 7 of the paper, and of the section splitter used by the
//! many-core model.

use std::fmt;

use parsecs_isa::Reg;

/// An architectural location that can carry a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Location {
    /// A general purpose register.
    Reg(Reg),
    /// The arithmetic flags, treated as a single renamable location.
    Flags,
    /// A 64-bit data-memory word at an absolute address.
    Mem(u64),
}

impl Location {
    /// Whether the location is the stack pointer register.
    pub fn is_stack_pointer(&self) -> bool {
        matches!(self, Location::Reg(Reg::Rsp))
    }

    /// Whether the location is a memory word.
    pub fn is_mem(&self) -> bool {
        matches!(self, Location::Mem(_))
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Reg(r) => write!(f, "{r}"),
            Location::Flags => write!(f, "flags"),
            Location::Mem(a) => write!(f, "[{a:#x}]"),
        }
    }
}

/// Coarse classification of a dynamic instruction, used by the section
/// splitter and the statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Any instruction that is not one of the kinds below.
    Other,
    /// A `call`.
    Call,
    /// A `ret`.
    Ret,
    /// A `fork` (section creation).
    Fork,
    /// An `endfork` (section termination).
    EndFork,
    /// A `halt`.
    Halt,
}

/// One executed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the dynamic trace (0-based).
    pub seq: u64,
    /// Static instruction index.
    pub ip: usize,
    /// Mnemonic, for display and debugging.
    pub mnemonic: &'static str,
    /// Locations read by the instruction (registers, flags, memory words).
    pub reads: Vec<Location>,
    /// Locations written by the instruction.
    pub writes: Vec<Location>,
    /// Whether the instruction changes control flow.
    pub is_control: bool,
    /// Whether the instruction is stack-pointer bookkeeping
    /// (cf. [`parsecs_isa::Effects::updates_stack_pointer`]).
    pub updates_stack_pointer: bool,
    /// Classification.
    pub kind: TraceKind,
    /// The value emitted by an `out` instruction, if any.
    pub out_value: Option<u64>,
}

/// One executed instruction as streamed to a [`TraceSink`]: the same
/// information as a [`TraceEvent`], but borrowing the machine's scratch
/// buffers instead of owning per-instruction allocations.
///
/// A step is only valid for the duration of the [`TraceSink::record`]
/// call; sinks that need to keep the data copy what they need (that is
/// exactly what [`Trace`]'s own sink implementation does).
#[derive(Debug, Clone, Copy)]
pub struct TraceStep<'a> {
    /// Position in the dynamic trace (0-based).
    pub seq: u64,
    /// Static instruction index.
    pub ip: usize,
    /// Mnemonic, for display and debugging.
    pub mnemonic: &'static str,
    /// Locations read by the instruction, sorted and deduplicated
    /// (registers, then flags, then memory words — the [`Location`]
    /// order).
    pub reads: &'a [Location],
    /// Locations written by the instruction, sorted and deduplicated.
    pub writes: &'a [Location],
    /// Whether the instruction changes control flow.
    pub is_control: bool,
    /// Whether the instruction is stack-pointer bookkeeping.
    pub updates_stack_pointer: bool,
    /// Classification.
    pub kind: TraceKind,
    /// The value emitted by an `out` instruction, if any.
    pub out_value: Option<u64>,
}

/// A consumer of the dynamic instruction stream.
///
/// [`crate::Machine::run_with_sink`] pushes every retired instruction
/// into a sink as it executes, so consumers that do not need the whole
/// trace at once (the streaming sectioner of `parsecs-trace`) never pay
/// for materialising a [`Trace`] — no per-instruction `Vec`s, no
/// event vector growing to millions of entries.
pub trait TraceSink {
    /// Consumes one retired instruction.
    fn record(&mut self, step: &TraceStep<'_>);

    /// Whether the sink still wants instructions. When a sink reports
    /// `false` (e.g. it hit a capacity limit and would only discard
    /// further steps), [`crate::Machine::run_with_sink`] stops the run at
    /// that point and returns the outcome so far instead of executing the
    /// rest of the program into a discarding sink. Defaults to `true`.
    fn wants_more(&self) -> bool {
        true
    }
}

/// Mutable references forward, so sinks can be passed down call chains
/// without re-wrapping.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn record(&mut self, step: &TraceStep<'_>) {
        (**self).record(step);
    }

    fn wants_more(&self) -> bool {
        (**self).wants_more()
    }
}

/// A dynamic trace: the executed instructions in program order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// The materialising sink: collecting into a [`Trace`] is the
/// compatibility path behind [`crate::Machine::run_traced`].
impl TraceSink for Trace {
    fn record(&mut self, step: &TraceStep<'_>) {
        self.push(TraceEvent {
            seq: step.seq,
            ip: step.ip,
            mnemonic: step.mnemonic,
            reads: step.reads.to_vec(),
            writes: step.writes.to_vec(),
            is_control: step.is_control,
            updates_stack_pointer: step.updates_stack_pointer,
            kind: step.kind,
            out_value: step.out_value,
        });
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of dynamic instructions of a given kind.
    pub fn count_kind(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Number of memory reads (dynamic loads).
    pub fn loads(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.reads.iter().filter(|l| l.is_mem()).count())
            .sum()
    }

    /// Number of memory writes (dynamic stores).
    pub fn stores(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.writes.iter().filter(|l| l.is_mem()).count())
            .sum()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Trace {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for Trace {
    /// Renders the trace in the style of the paper's Figure 3: one numbered
    /// line per dynamic instruction.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{:>5}  [{:>4}] {}", e.seq + 1, e.ip, e.mnemonic)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            seq,
            ip: seq as usize,
            mnemonic: "nop",
            reads: vec![],
            writes: vec![],
            is_control: false,
            updates_stack_pointer: false,
            kind,
            out_value: None,
        }
    }

    #[test]
    fn location_classification() {
        assert!(Location::Reg(Reg::Rsp).is_stack_pointer());
        assert!(!Location::Reg(Reg::Rax).is_stack_pointer());
        assert!(Location::Mem(8).is_mem());
        assert!(!Location::Flags.is_mem());
        assert_eq!(Location::Mem(16).to_string(), "[0x10]");
        assert_eq!(Location::Reg(Reg::Rax).to_string(), "%rax");
    }

    #[test]
    fn trace_counters() {
        let mut t = Trace::new();
        t.push(event(0, TraceKind::Other));
        t.push(event(1, TraceKind::Fork));
        t.push(event(2, TraceKind::Fork));
        t.push(event(3, TraceKind::EndFork));
        assert_eq!(t.len(), 4);
        assert_eq!(t.count_kind(TraceKind::Fork), 2);
        assert_eq!(t.count_kind(TraceKind::EndFork), 1);
        assert_eq!(t.count_kind(TraceKind::Halt), 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn load_store_counters() {
        let mut t = Trace::new();
        let mut e = event(0, TraceKind::Other);
        e.reads = vec![Location::Mem(0x10), Location::Reg(Reg::Rax)];
        e.writes = vec![Location::Mem(0x18)];
        t.push(e);
        assert_eq!(t.loads(), 1);
        assert_eq!(t.stores(), 1);
    }

    #[test]
    fn display_numbers_lines_from_one() {
        let mut t = Trace::new();
        t.push(event(0, TraceKind::Other));
        t.push(event(1, TraceKind::Other));
        let text = t.to_string();
        assert!(text.starts_with("    1"));
        assert_eq!(text.lines().count(), 2);
    }
}
