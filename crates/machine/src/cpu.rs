//! Architectural CPU state: registers, flags, instruction pointer.

use parsecs_isa::{Flags, MemRef, Reg, STACK_TOP};

/// The architectural register state of one flow of control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    regs: [u64; Reg::COUNT],
    /// Arithmetic flags.
    pub flags: Flags,
    /// Instruction pointer (instruction index).
    pub ip: usize,
}

impl CpuState {
    /// A fresh state: all registers zero except `%rsp`, which points to
    /// [`STACK_TOP`], flags cleared, `ip` at `entry`.
    pub fn at_entry(entry: usize) -> CpuState {
        let mut s = CpuState {
            regs: [0; Reg::COUNT],
            flags: Flags::default(),
            ip: entry,
        };
        s.set(Reg::Rsp, STACK_TOP);
        s
    }

    /// Reads a register.
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Computes the effective address of a memory reference with the
    /// current register values.
    pub fn effective_address(&self, m: &MemRef) -> u64 {
        let base = m.base.map(|r| self.get(r)).unwrap_or(0);
        let index = m.index.map(|r| self.get(r)).unwrap_or(0);
        base.wrapping_add(index.wrapping_mul(m.scale as u64))
            .wrapping_add(m.disp as u64)
    }

    /// Snapshot of the callee-saved registers (including `%rsp`), in the
    /// order of [`Reg::ALL`].
    pub fn callee_saved(&self) -> Vec<(Reg, u64)> {
        Reg::ALL
            .into_iter()
            .filter(|r| r.is_callee_saved())
            .map(|r| (r, self.get(r)))
            .collect()
    }

    /// Snapshot of the registers copied to a forked section (the stack
    /// pointer plus the paper's non-volatile set, see
    /// [`Reg::is_fork_copied`]).
    pub fn fork_copied(&self) -> Vec<(Reg, u64)> {
        Reg::ALL
            .into_iter()
            .filter(|r| r.is_fork_copied())
            .map(|r| (r, self.get(r)))
            .collect()
    }
}

impl Default for CpuState {
    fn default() -> CpuState {
        CpuState::at_entry(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_has_stack_pointer() {
        let s = CpuState::at_entry(3);
        assert_eq!(s.ip, 3);
        assert_eq!(s.get(Reg::Rsp), STACK_TOP);
        assert_eq!(s.get(Reg::Rax), 0);
    }

    #[test]
    fn effective_address_combines_base_index_scale_disp() {
        let mut s = CpuState::default();
        s.set(Reg::Rdi, 0x1000);
        s.set(Reg::Rsi, 3);
        let m = MemRef::base_index_scale(Reg::Rdi, Reg::Rsi, 8, 16);
        assert_eq!(s.effective_address(&m), 0x1000 + 24 + 16);
        let m = MemRef::base_disp(Reg::Rdi, -8);
        assert_eq!(s.effective_address(&m), 0x1000 - 8);
        let m = MemRef::absolute(0x2000);
        assert_eq!(s.effective_address(&m), 0x2000);
    }

    #[test]
    fn callee_saved_snapshot() {
        let mut s = CpuState::default();
        s.set(Reg::Rbx, 5);
        s.set(Reg::Rax, 9);
        let snap = s.callee_saved();
        assert_eq!(snap.len(), 7);
        assert!(snap.contains(&(Reg::Rbx, 5)));
        assert!(snap.contains(&(Reg::Rsp, STACK_TOP)));
        assert!(!snap.iter().any(|(r, _)| *r == Reg::Rax));
    }
}
