//! The dataflow scheduler.

use std::collections::HashMap;

use parsecs_machine::{Location, Trace};

use crate::IlpModel;

/// The outcome of scheduling a trace under a dependence model.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpResult {
    /// Number of dynamic instructions scheduled.
    pub instructions: u64,
    /// Number of cycles of the schedule (the critical path under the
    /// chosen model, including resource constraints).
    pub cycles: u64,
    /// `instructions / cycles`.
    pub ilp: f64,
    /// Largest number of instructions scheduled in a single cycle.
    pub peak_parallelism: u64,
}

impl IlpResult {
    fn new(instructions: u64, cycles: u64, peak_parallelism: u64) -> IlpResult {
        let ilp = if cycles == 0 {
            0.0
        } else {
            instructions as f64 / cycles as f64
        };
        IlpResult {
            instructions,
            cycles,
            ilp,
            peak_parallelism,
        }
    }
}

/// Schedules every instruction of `trace` at the earliest cycle permitted
/// by `model` and reports the achieved ILP.
///
/// Cycle numbering starts at 1; an instruction with no constraining
/// dependence issues at cycle 1 and completes at cycle `latency`.
///
/// # Example
///
/// ```
/// use parsecs_ilp::{analyze, IlpModel};
/// use parsecs_machine::Trace;
///
/// let result = analyze(&Trace::new(), &IlpModel::parallel_ideal());
/// assert_eq!(result.instructions, 0);
/// assert_eq!(result.cycles, 0);
/// ```
pub fn analyze(trace: &Trace, model: &IlpModel) -> IlpResult {
    let mut last_write: HashMap<Location, u64> = HashMap::new();
    let mut last_read: HashMap<Location, u64> = HashMap::new();
    let mut last_control_complete: u64 = 0;
    let mut completions: Vec<u64> = Vec::with_capacity(trace.len());
    let mut issued_per_cycle: HashMap<u64, u64> = HashMap::new();
    let mut per_cycle_peak: u64 = 0;
    let mut max_completion: u64 = 0;

    let relevant =
        |loc: &Location| -> bool { !(model.ignore_stack_pointer && loc.is_stack_pointer()) };

    for (i, event) in trace.iter().enumerate() {
        // Earliest cycle at which all dependences are satisfied.
        let mut ready: u64 = 0;

        // True (producer → consumer) dependences.
        for loc in event.reads.iter().filter(|l| relevant(l)) {
            if let Some(c) = last_write.get(loc) {
                ready = ready.max(*c);
            }
        }

        // False dependences, kept only when renaming is disabled.
        for loc in event.writes.iter().filter(|l| relevant(l)) {
            let rename = if loc.is_mem() {
                model.rename_memory
            } else {
                model.rename_registers
            };
            if !rename {
                if let Some(c) = last_write.get(loc) {
                    ready = ready.max(*c);
                }
                if let Some(c) = last_read.get(loc) {
                    ready = ready.max(*c);
                }
            }
        }

        // Control dependences, kept only without perfect prediction.
        if !model.perfect_branch_prediction {
            ready = ready.max(last_control_complete);
        }

        // Finite window: instruction i waits for instruction i - W to
        // complete before it can even enter the window.
        if let Some(window) = model.window {
            if i >= window {
                ready = ready.max(completions[i - window]);
            }
        }

        // Issue at the cycle after every dependence has completed.
        let mut issue = ready + 1;

        // Finite issue width: move to the next cycle with a free slot.
        if let Some(width) = model.issue_width {
            let width = width.max(1) as u64;
            loop {
                let used = issued_per_cycle.get(&issue).copied().unwrap_or(0);
                if used < width {
                    break;
                }
                issue += 1;
            }
        }
        let slot = issued_per_cycle.entry(issue).or_insert(0);
        *slot += 1;
        per_cycle_peak = per_cycle_peak.max(*slot);

        let complete = issue + model.latency - 1;
        completions.push(complete);
        max_completion = max_completion.max(complete);

        // Update the location tables.
        for loc in &event.reads {
            let entry = last_read.entry(*loc).or_insert(0);
            *entry = (*entry).max(complete);
        }
        for loc in &event.writes {
            last_write.insert(*loc, complete);
        }
        if event.is_control {
            last_control_complete = last_control_complete.max(complete);
        }
    }

    IlpResult::new(trace.len() as u64, max_completion, per_cycle_peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_isa::Reg;
    use parsecs_machine::{TraceEvent, TraceKind};
    use proptest::prelude::*;

    fn reg(r: Reg) -> Location {
        Location::Reg(r)
    }

    fn event(seq: u64, reads: Vec<Location>, writes: Vec<Location>) -> TraceEvent {
        TraceEvent {
            seq,
            ip: seq as usize,
            mnemonic: "test",
            reads,
            writes,
            is_control: false,
            updates_stack_pointer: false,
            kind: TraceKind::Other,
            out_value: None,
        }
    }

    fn trace_of(events: Vec<TraceEvent>) -> Trace {
        events.into_iter().collect()
    }

    #[test]
    fn independent_instructions_all_issue_in_cycle_one() {
        let regs = [Reg::Rax, Reg::Rbx, Reg::Rcx, Reg::Rdx];
        let t = trace_of(
            (0..4u64)
                .map(|i| event(i, vec![], vec![reg(regs[i as usize])]))
                .collect(),
        );
        let r = analyze(&t, &IlpModel::parallel_ideal());
        assert_eq!(r.cycles, 1);
        assert_eq!(r.instructions, 4);
        assert_eq!(r.ilp, 4.0);
        assert_eq!(r.peak_parallelism, 4);
    }

    #[test]
    fn dependence_chain_has_ilp_one() {
        // Each instruction reads and writes %rax: a pure RAW chain.
        let t = trace_of(
            (0..8u64)
                .map(|i| event(i, vec![reg(Reg::Rax)], vec![reg(Reg::Rax)]))
                .collect(),
        );
        let r = analyze(&t, &IlpModel::parallel_ideal());
        assert_eq!(r.cycles, 8);
        assert!((r.ilp - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn register_renaming_removes_war_and_waw() {
        // i0 writes rax; i1 reads rax (RAW); i2 writes rax again (WAW with
        // i0, WAR with i1).
        let t = trace_of(vec![
            event(0, vec![], vec![reg(Reg::Rax)]),
            event(1, vec![reg(Reg::Rax)], vec![reg(Reg::Rbx)]),
            event(2, vec![], vec![reg(Reg::Rax)]),
        ]);
        let renamed = analyze(&t, &IlpModel::parallel_ideal());
        assert_eq!(renamed.cycles, 2, "WAW/WAR disappear with renaming");
        let mut no_rename = IlpModel::parallel_ideal();
        no_rename.rename_registers = false;
        let kept = analyze(&t, &no_rename);
        assert_eq!(kept.cycles, 3, "i2 must wait for the read of i1");
    }

    #[test]
    fn memory_renaming_removes_memory_false_dependences() {
        // store [a]; load [a]; store [a] — the second store has WAW+WAR.
        let a = Location::Mem(0x1000);
        let t = trace_of(vec![
            event(0, vec![], vec![a]),
            event(1, vec![a], vec![reg(Reg::Rax)]),
            event(2, vec![], vec![a]),
        ]);
        let seq = analyze(&t, &IlpModel::sequential_oracle());
        assert_eq!(seq.cycles, 3);
        let par = analyze(&t, &IlpModel::parallel_ideal());
        assert_eq!(par.cycles, 2);
    }

    #[test]
    fn control_dependences_serialize_without_prediction() {
        let mut branch = event(1, vec![], vec![]);
        branch.is_control = true;
        let t = trace_of(vec![
            event(0, vec![], vec![reg(Reg::Rax)]),
            branch,
            event(2, vec![], vec![reg(Reg::Rbx)]),
        ]);
        let predicted = analyze(&t, &IlpModel::parallel_ideal());
        assert_eq!(predicted.cycles, 1);
        let in_order = analyze(&t, &IlpModel::in_order());
        assert_eq!(
            in_order.cycles, 2,
            "the instruction after the branch waits for it"
        );
    }

    #[test]
    fn stack_pointer_dependences_can_be_ignored() {
        // A chain of push-like instructions: read+write %rsp each time.
        let t = trace_of(
            (0..6u64)
                .map(|i| {
                    event(
                        i,
                        vec![reg(Reg::Rsp)],
                        vec![reg(Reg::Rsp), Location::Mem(0x100 + 8 * i)],
                    )
                })
                .collect(),
        );
        let seq = analyze(&t, &IlpModel::sequential_oracle());
        assert_eq!(seq.cycles, 6, "the rsp chain serialises the pushes");
        let par = analyze(&t, &IlpModel::parallel_ideal());
        assert_eq!(
            par.cycles, 1,
            "dropping rsp dependences exposes the parallelism"
        );
    }

    #[test]
    fn finite_window_limits_ilp() {
        // 16 independent instructions; a window of 4 forces them to trickle.
        let t = trace_of(
            (0..16u64)
                .map(|i| event(i, vec![], vec![Location::Mem(8 * i)]))
                .collect(),
        );
        let unlimited = analyze(&t, &IlpModel::parallel_ideal());
        assert_eq!(unlimited.cycles, 1);
        let windowed = analyze(&t, &IlpModel::parallel_ideal().with_window(4));
        assert!(windowed.cycles > 1);
        assert!(windowed.ilp <= 4.0 + f64::EPSILON);
    }

    #[test]
    fn issue_width_limits_throughput() {
        let t = trace_of(
            (0..12u64)
                .map(|i| event(i, vec![], vec![Location::Mem(8 * i)]))
                .collect(),
        );
        let r = analyze(&t, &IlpModel::parallel_ideal().with_issue_width(3));
        assert_eq!(r.cycles, 4);
        assert_eq!(r.peak_parallelism, 3);
    }

    #[test]
    fn latency_scales_the_critical_path() {
        let t = trace_of(
            (0..4u64)
                .map(|i| event(i, vec![reg(Reg::Rax)], vec![reg(Reg::Rax)]))
                .collect(),
        );
        let r = analyze(&t, &IlpModel::parallel_ideal().with_latency(3));
        assert_eq!(r.cycles, 12);
    }

    #[test]
    fn empty_trace() {
        let r = analyze(&Trace::new(), &IlpModel::parallel_ideal());
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.ilp, 0.0);
    }

    #[test]
    fn end_to_end_sum_trace_parallel_beats_sequential() {
        let program = parsecs_asm::assemble(
            "t:   .quad 1, 2, 3, 4, 5, 6, 7, 8
             main: movq $t, %rdi
                   movq $8, %rsi
                   call sum
                   out  %rax
                   halt
             sum:  cmpq $2, %rsi
                   ja .L2
                   movq (%rdi), %rax
                   jne .L1
                   addq 8(%rdi), %rax
             .L1:  ret
             .L2:  pushq %rbx
                   pushq %rdi
                   pushq %rsi
                   shrq %rsi
                   call sum
                   popq %rbx
                   pushq %rbx
                   subq $8, %rsp
                   movq %rax, 0(%rsp)
                   leaq (%rdi,%rsi,8), %rdi
                   subq %rsi, %rbx
                   movq %rbx, %rsi
                   call sum
                   addq 0(%rsp), %rax
                   addq $8, %rsp
                   popq %rsi
                   popq %rdi
                   popq %rbx
                   ret",
        )
        .unwrap();
        let mut machine = parsecs_machine::Machine::load(&program).unwrap();
        let (outcome, trace) = machine.run_traced(100_000).unwrap();
        assert_eq!(outcome.outputs, vec![36]);
        let par = analyze(&trace, &IlpModel::parallel_ideal());
        let seq = analyze(&trace, &IlpModel::sequential_oracle());
        assert!(
            par.ilp > seq.ilp,
            "parallel {par:?} must beat sequential {seq:?}"
        );
        assert!(par.ilp > 1.5);
    }

    proptest! {
        /// Structural invariants on random traces: ILP is at least 1, the
        /// schedule never exceeds the instruction count, and removing
        /// constraints (parallel model) never hurts.
        #[test]
        fn invariants_on_random_traces(spec in proptest::collection::vec(
            (0u8..16, 0u8..16, 0u8..8, 0u8..8, any::<bool>()), 1..200))
        {
            let events: Vec<TraceEvent> = spec.iter().enumerate().map(|(i, (r1, w1, ma, mb, ctl))| {
                let mut e = event(
                    i as u64,
                    vec![reg(Reg::from_index(*r1 as usize).unwrap()), Location::Mem(8 * *ma as u64)],
                    vec![reg(Reg::from_index(*w1 as usize).unwrap()), Location::Mem(8 * *mb as u64)],
                );
                e.is_control = *ctl;
                e
            }).collect();
            let t = trace_of(events);
            let par = analyze(&t, &IlpModel::parallel_ideal());
            let seq = analyze(&t, &IlpModel::sequential_oracle());
            let ino = analyze(&t, &IlpModel::in_order());
            prop_assert!(par.cycles >= 1 && par.cycles <= t.len() as u64);
            prop_assert!(seq.cycles >= par.cycles);
            prop_assert!(ino.cycles >= seq.cycles);
            prop_assert!(par.ilp >= 1.0 - f64::EPSILON);
            prop_assert!(par.ilp >= seq.ilp - f64::EPSILON);
        }
    }
}
