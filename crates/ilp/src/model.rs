//! Dependence models for the limit study.

/// Which dependences constrain the dataflow schedule.
///
/// Every switch removes (when `true`) or keeps (when `false`) one family of
/// ordering constraints, following §3 of the paper. The two presets used by
/// the Figure 7 reproduction are [`IlpModel::sequential_oracle`] and
/// [`IlpModel::parallel_ideal`]; [`IlpModel::speculative_core`] adds the
/// finite-window model of Wall's "good" configuration as an ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpModel {
    /// Unlimited register renaming: register (and flags) WAR/WAW
    /// dependences are ignored.
    pub rename_registers: bool,
    /// Memory renaming: memory WAR/WAW dependences are ignored.
    pub rename_memory: bool,
    /// Perfect branch prediction: instructions do not wait for older
    /// control instructions.
    pub perfect_branch_prediction: bool,
    /// Ignore every dependence carried by the stack pointer register
    /// (`%rsp`), as the paper's parallel runs do.
    pub ignore_stack_pointer: bool,
    /// Optional finite instruction window: instruction *i* cannot issue
    /// before instruction *i − window* has completed.
    pub window: Option<usize>,
    /// Optional maximum number of instructions issued per cycle.
    pub issue_width: Option<usize>,
    /// Uniform execution latency in cycles (the paper uses 1).
    pub latency: u64,
}

impl IlpModel {
    /// The paper's *sequential run* model: unlimited register renaming,
    /// perfect branch prediction, **no** memory renaming, stack-pointer
    /// dependences kept.
    pub fn sequential_oracle() -> IlpModel {
        IlpModel {
            rename_registers: true,
            rename_memory: false,
            perfect_branch_prediction: true,
            ignore_stack_pointer: false,
            window: None,
            issue_width: None,
            latency: 1,
        }
    }

    /// The paper's *parallel run* model: everything renamed, control
    /// computed, stack-pointer dependences excluded; only
    /// producer→consumer dependences remain.
    pub fn parallel_ideal() -> IlpModel {
        IlpModel {
            rename_registers: true,
            rename_memory: true,
            perfect_branch_prediction: true,
            ignore_stack_pointer: true,
            window: None,
            issue_width: None,
            latency: 1,
        }
    }

    /// A finite speculative core in the spirit of Wall's "good" model
    /// (2 K-instruction window, 64-wide issue), used as an ablation point
    /// between the two extremes.
    pub fn speculative_core() -> IlpModel {
        IlpModel {
            window: Some(2048),
            issue_width: Some(64),
            ..IlpModel::sequential_oracle()
        }
    }

    /// A strictly in-order, no-renaming model (every dependence kept),
    /// useful as a lower bound in tests and ablations.
    pub fn in_order() -> IlpModel {
        IlpModel {
            rename_registers: false,
            rename_memory: false,
            perfect_branch_prediction: false,
            ignore_stack_pointer: false,
            window: None,
            issue_width: None,
            latency: 1,
        }
    }

    /// Sets the finite window size (builder style).
    pub fn with_window(mut self, window: usize) -> IlpModel {
        self.window = Some(window);
        self
    }

    /// Sets the issue width (builder style).
    pub fn with_issue_width(mut self, width: usize) -> IlpModel {
        self.issue_width = Some(width);
        self
    }

    /// Sets the uniform latency (builder style).
    pub fn with_latency(mut self, latency: u64) -> IlpModel {
        self.latency = latency.max(1);
        self
    }
}

impl Default for IlpModel {
    fn default() -> IlpModel {
        IlpModel::parallel_ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says_they_do() {
        let seq = IlpModel::sequential_oracle();
        let par = IlpModel::parallel_ideal();
        assert!(seq.rename_registers && par.rename_registers);
        assert!(!seq.rename_memory && par.rename_memory);
        assert!(!seq.ignore_stack_pointer && par.ignore_stack_pointer);
        assert!(seq.perfect_branch_prediction && par.perfect_branch_prediction);
    }

    #[test]
    fn builders() {
        let m = IlpModel::parallel_ideal()
            .with_window(64)
            .with_issue_width(4)
            .with_latency(0);
        assert_eq!(m.window, Some(64));
        assert_eq!(m.issue_width, Some(4));
        assert_eq!(m.latency, 1, "latency is clamped to at least one cycle");
    }

    #[test]
    fn speculative_core_is_windowed() {
        let m = IlpModel::speculative_core();
        assert_eq!(m.window, Some(2048));
        assert_eq!(m.issue_width, Some(64));
        assert!(!m.rename_memory);
    }
}
