//! Dependence-distance analysis.
//!
//! Austin & Sohi (ISCA '92) — cited by the paper — showed that ILP is
//! *arbitrarily distant* from the instruction pointer: many producer →
//! consumer pairs are separated by a large number of dynamic instructions,
//! which is exactly why the paper argues for multiple instruction pointers
//! (sections) instead of one deep speculative window. This module measures
//! that distribution on a trace.

use std::collections::HashMap;

use parsecs_machine::{Location, Trace};

/// A histogram of producer→consumer distances (in dynamic instructions),
/// bucketed by powers of two.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistanceHistogram {
    /// `buckets[k]` counts dependences with distance in `[2^k, 2^(k+1))`.
    buckets: Vec<u64>,
    /// Total number of RAW dependences observed.
    total: u64,
    /// Largest observed distance.
    max_distance: u64,
}

impl DistanceHistogram {
    /// The bucket counts; `buckets()[k]` counts distances in
    /// `[2^k, 2^(k+1))`.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of true dependences observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest observed producer→consumer distance.
    pub fn max_distance(&self) -> u64 {
        self.max_distance
    }

    /// Fraction of dependences with distance at least `threshold`
    /// ("distant ILP" in the paper's terminology).
    pub fn fraction_at_least(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let distant: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(k, _)| (1u64 << *k) >= threshold)
            .map(|(_, c)| *c)
            .sum();
        distant as f64 / self.total as f64
    }

    fn record(&mut self, distance: u64) {
        let bucket = 64 - distance.max(1).leading_zeros() as usize - 1;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.total += 1;
        self.max_distance = self.max_distance.max(distance);
    }
}

/// Measures the distance (in dynamic instructions) between every value
/// producer and its consumers.
///
/// Only true (read-after-write) dependences are counted; stack-pointer
/// dependences can be excluded to match the paper's parallel model.
///
/// # Example
///
/// ```
/// use parsecs_ilp::dependence_distances;
/// use parsecs_machine::Trace;
///
/// let h = dependence_distances(&Trace::new(), true);
/// assert_eq!(h.total(), 0);
/// ```
pub fn dependence_distances(trace: &Trace, ignore_stack_pointer: bool) -> DistanceHistogram {
    let mut histogram = DistanceHistogram::default();
    let mut last_writer: HashMap<Location, u64> = HashMap::new();
    for event in trace.iter() {
        for loc in &event.reads {
            if ignore_stack_pointer && loc.is_stack_pointer() {
                continue;
            }
            if let Some(producer) = last_writer.get(loc) {
                histogram.record(event.seq - producer);
            }
        }
        for loc in &event.writes {
            last_writer.insert(*loc, event.seq);
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_isa::Reg;
    use parsecs_machine::{TraceEvent, TraceKind};

    fn event(seq: u64, reads: Vec<Location>, writes: Vec<Location>) -> TraceEvent {
        TraceEvent {
            seq,
            ip: seq as usize,
            mnemonic: "t",
            reads,
            writes,
            is_control: false,
            updates_stack_pointer: false,
            kind: TraceKind::Other,
            out_value: None,
        }
    }

    #[test]
    fn adjacent_dependence_has_distance_one() {
        let t: Trace = vec![
            event(0, vec![], vec![Location::Reg(Reg::Rax)]),
            event(1, vec![Location::Reg(Reg::Rax)], vec![]),
        ]
        .into_iter()
        .collect();
        let h = dependence_distances(&t, false);
        assert_eq!(h.total(), 1);
        assert_eq!(h.max_distance(), 1);
        assert_eq!(h.buckets()[0], 1);
    }

    #[test]
    fn distant_dependences_fall_in_higher_buckets() {
        let mut events = vec![event(0, vec![], vec![Location::Mem(0x10)])];
        for i in 1..100u64 {
            events.push(event(i, vec![], vec![Location::Reg(Reg::Rbx)]));
        }
        events.push(event(100, vec![Location::Mem(0x10)], vec![]));
        let t: Trace = events.into_iter().collect();
        let h = dependence_distances(&t, false);
        assert_eq!(h.max_distance(), 100);
        // 100 lies in [64, 128) = bucket 6.
        assert_eq!(h.buckets()[6], 1);
        assert!(h.fraction_at_least(64) > 0.0);
        assert_eq!(h.fraction_at_least(256), 0.0);
    }

    #[test]
    fn stack_pointer_reads_can_be_excluded() {
        let t: Trace = vec![
            event(0, vec![], vec![Location::Reg(Reg::Rsp)]),
            event(1, vec![Location::Reg(Reg::Rsp)], vec![]),
        ]
        .into_iter()
        .collect();
        assert_eq!(dependence_distances(&t, false).total(), 1);
        assert_eq!(dependence_distances(&t, true).total(), 0);
    }

    #[test]
    fn unwritten_sources_are_not_dependences() {
        let t: Trace = vec![event(0, vec![Location::Reg(Reg::Rax)], vec![])]
            .into_iter()
            .collect();
        assert_eq!(dependence_distances(&t, false).total(), 0);
    }
}
