//! # parsecs-ilp — trace-based ILP limit analysis
//!
//! This crate reimplements the methodology behind Figure 7 of
//! *"Toward a Core Design to Distribute an Execution on a Many-Core
//! Processor"* (PaCT 2015): given a dynamic trace, schedule every
//! instruction at the earliest cycle allowed by a configurable set of
//! dependences and report the resulting instruction-level parallelism
//! (instructions / cycles).
//!
//! The paper contrasts two models:
//!
//! * the **sequential oracle** ([`IlpModel::sequential_oracle`]): unlimited
//!   register renaming and perfect branch prediction, but no memory
//!   renaming and full stack-pointer dependences — the "ultimate
//!   performance of actual out-of-order speculative processors" (the blue
//!   `seq` bars, ILP ≈ 3–6);
//! * the **parallel ideal** ([`IlpModel::parallel_ideal`]): every
//!   destination (registers *and* memory) renamed, control computed rather
//!   than predicted, stack-pointer dependences excluded — only
//!   producer→consumer dependences remain (the numbered bars, ILP in the
//!   hundreds to hundreds of thousands).
//!
//! ## Example
//!
//! ```
//! use parsecs_ilp::{analyze, IlpModel};
//! use parsecs_machine::Machine;
//!
//! let program = parsecs_asm::assemble(
//!     "main: movq $1, %rax
//!            movq $2, %rbx
//!            movq $3, %rcx
//!            addq %rax, %rbx
//!            addq %rax, %rcx
//!            halt",
//! ).expect("assembles");
//! let mut machine = Machine::load(&program)?;
//! let (_, trace) = machine.run_traced(1_000)?;
//! let parallel = analyze(&trace, &IlpModel::parallel_ideal());
//! let sequential = analyze(&trace, &IlpModel::sequential_oracle());
//! assert!(parallel.ilp >= sequential.ilp);
//! # Ok::<(), parsecs_machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod distance;
mod model;

pub use analyzer::{analyze, IlpResult};
pub use distance::{dependence_distances, DistanceHistogram};
pub use model::IlpModel;
