//! The section and dependence vocabulary of the execution model.
//!
//! A *section* (§4.1 of the paper) is a run of dynamically contiguous
//! instructions: it starts when a `fork` creates it and ends at the first
//! `endfork` it reaches. Sections are **totally ordered**; concatenating
//! them in that order rebuilds the sequential trace of the run, which is
//! what lets renaming match every consumer with the closest preceding
//! producer.
//!
//! These types used to live in `parsecs-core`; they moved here so that
//! the streaming trace pipeline (which produces them) sits below the
//! timing simulator (which consumes them). `parsecs-core` re-exports
//! them, so downstream paths are unchanged.

use std::fmt;

use parsecs_machine::Location;

/// Identifier of a section, equal to its position in the total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SectionId(pub usize);

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "section {}", self.0 + 1)
    }
}

/// One section: a contiguous range of the sequential trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSpan {
    /// The section's identity and position in the total order.
    pub id: SectionId,
    /// Index (in the sequential trace) of the section's first instruction.
    pub start: usize,
    /// One past the index of the section's last instruction.
    pub end: usize,
    /// The section that forked this one, and the trace index of that fork.
    /// `None` for the initial section.
    pub creator: Option<(SectionId, usize)>,
    /// Static instruction index at which the section starts fetching.
    pub start_ip: usize,
}

impl SectionSpan {
    /// Number of dynamic instructions in the section.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the section is empty (never happens for well-formed runs,
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Where a source value comes from, as seen by the renaming hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Produced by an earlier instruction of the same section: the local
    /// renaming hits and the value is read from the core's RRM/MRM.
    Local {
        /// Trace index of the producer.
        producer: usize,
    },
    /// Produced by an instruction of an earlier section hosted (in
    /// general) on another core: a renaming request travels backward along
    /// the section order and the value is exported back.
    Remote {
        /// Trace index of the producer.
        producer: usize,
        /// Section of the producer.
        producer_section: SectionId,
    },
    /// Carried by the section-creation message: the stack pointer and the
    /// non-volatile registers are copied at `fork`, so the value is already
    /// in the local register file when the section starts.
    ForkCopy,
    /// A register that was never written: its (zero) value is available
    /// immediately.
    InitialRegister,
    /// A memory word never written by the program: the renaming request
    /// reaches the oldest section and is served by the loader / data memory
    /// hierarchy.
    InitialMemory,
}

/// A source operand of a dynamic instruction together with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceDep {
    /// The architectural location being read.
    pub location: Location,
    /// Where its value comes from.
    pub kind: SourceKind,
}
