//! Errors of the streaming trace pipeline.

use std::error::Error;
use std::fmt;

use parsecs_machine::MachineError;

/// Errors produced while building a [`crate::TraceArena`].
///
/// The arena packs trace indices, section ids and column offsets into
/// `u32`s (and provenance tags into the spare bits) to stay under its
/// per-instruction memory budget; a run that legitimately outgrows one of
/// those packings — possible from a few hundred million dynamic
/// instructions on — is reported as [`TraceError::CapacityExceeded`]
/// instead of aborting the process mid-run, so drivers can fail the one
/// run and keep serving.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The functional execution feeding the pipeline failed (load error,
    /// out of fuel, bad access).
    Machine(MachineError),
    /// The trace outgrew one of the arena's packed-index capacities.
    CapacityExceeded {
        /// Which packing overflowed (`"instructions"`, `"sections"`,
        /// `"dependences"`, `"writes"`).
        resource: &'static str,
        /// The maximum number of `resource` the arena can hold.
        limit: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Machine(e) => write!(f, "functional execution failed: {e}"),
            TraceError::CapacityExceeded { resource, limit } => write!(
                f,
                "trace arena capacity exceeded: more than {limit} {resource} \
                 (the packed columns index {resource} with 32-bit offsets)"
            ),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Machine(e) => Some(e),
            TraceError::CapacityExceeded { .. } => None,
        }
    }
}

impl From<MachineError> for TraceError {
    fn from(e: MachineError) -> TraceError {
        TraceError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = TraceError::CapacityExceeded {
            resource: "dependences",
            limit: u32::MAX as u64,
        };
        assert!(e.to_string().contains("dependences"));
        assert!(e.to_string().contains("capacity exceeded"));
        let e: TraceError = MachineError::OutOfFuel { steps: 3 }.into();
        assert!(e.to_string().contains('3'));
    }
}
