//! The struct-of-arrays trace arena.
//!
//! [`TraceArena`] holds a sectioned, dependence-annotated dynamic trace in
//! flat columns instead of one heap object per instruction: every
//! per-record field is one `Vec` indexed by trace position, and the
//! variable-length parts — source dependences and written locations — are
//! flattened into **one shared slice each**, indexed by `(offset, len)`
//! ranges. Nothing in the arena is pointer-chased and nothing allocates
//! per instruction, which is what lets 10M+-instruction runs fit:
//! the arena costs well under 120 bytes per instruction where the
//! record-per-instruction representation costs ~250–350.
//!
//! A [`PackedDep`] squeezes a full source dependence (architectural
//! location, producer, producer section, provenance) into 16 bytes:
//! data addresses are 8-aligned so a [`Location`] packs into a single
//! `u64` with a tag in the low three bits, and the provenance tag shares
//! a word with the producer's section id.

use parsecs_isa::Reg;
use parsecs_machine::{Location, TraceKind};

use crate::{SectionId, SectionSpan, SourceDep, SourceKind, TraceError};

/// A [`Location`] packed into one word: memory addresses are 8-aligned,
/// so the low three bits carry the variant tag.
const LOC_MEM: u64 = 0;
const LOC_REG: u64 = 1;
const LOC_FLAGS: u64 = 2;

#[inline]
fn pack_location(loc: Location) -> u64 {
    match loc {
        Location::Mem(addr) => {
            // Release builds rely on the machine's quadword alignment (and
            // on `parsecs-check` detecting a corrupted tag after the
            // fact); the low three bits must be free for the variant tag.
            debug_assert!(
                addr & 7 == 0,
                "trace arena requires 8-aligned data addresses, got {addr:#x}"
            );
            addr | LOC_MEM
        }
        Location::Reg(r) => ((r.index() as u64) << 3) | LOC_REG,
        Location::Flags => LOC_FLAGS,
    }
}

#[inline]
fn unpack_location(packed: u64) -> Location {
    match packed & 7 {
        LOC_MEM => Location::Mem(packed),
        LOC_REG => Location::Reg(Reg::ALL[(packed >> 3) as usize]),
        _ => Location::Flags,
    }
}

/// [`SourceKind`] provenance tags (low three bits of
/// [`PackedDep::section_kind`]).
const KIND_LOCAL: u32 = 0;
const KIND_REMOTE: u32 = 1;
const KIND_FORK_COPY: u32 = 2;
const KIND_INITIAL_REG: u32 = 3;
const KIND_INITIAL_MEM: u32 = 4;

/// Sections a producer tag can name: 29 bits (the other three carry the
/// provenance tag).
const MAX_SECTIONS: usize = (1 << 29) - 1;

/// Records the arena can hold (`u32` trace indices, one sentinel spare).
const MAX_RECORDS: u64 = u32::MAX as u64 - 1;

/// Entries the shared dependence slice can hold (`u32` offsets).
const MAX_DEPS: u64 = u32::MAX as u64;

/// Entries the shared write slice can hold (`u32` offsets).
const MAX_WRITES: u64 = u32::MAX as u64;

/// Checks prospective column totals against the arena's packed-index
/// capacities. A free function over plain counts so the overflow
/// behaviour is unit-testable without materialising billions of records.
pub(crate) fn check_capacity(
    records: u64,
    deps: u64,
    writes: u64,
    sections: u64,
) -> Result<(), TraceError> {
    if records > MAX_RECORDS {
        return Err(TraceError::CapacityExceeded {
            resource: "instructions",
            limit: MAX_RECORDS,
        });
    }
    if sections > MAX_SECTIONS as u64 {
        return Err(TraceError::CapacityExceeded {
            resource: "sections",
            limit: MAX_SECTIONS as u64,
        });
    }
    if deps > MAX_DEPS {
        return Err(TraceError::CapacityExceeded {
            resource: "dependences",
            limit: MAX_DEPS,
        });
    }
    if writes > MAX_WRITES {
        return Err(TraceError::CapacityExceeded {
            resource: "writes",
            limit: MAX_WRITES,
        });
    }
    Ok(())
}

/// One source dependence in 16 bytes: the packed location, the producer's
/// trace index and `(producer_section << 3) | provenance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedDep {
    loc: u64,
    producer: u32,
    section_kind: u32,
}

impl PackedDep {
    /// Packs a [`SourceDep`].
    ///
    /// Producers past `u32::MAX` and sections past 2^29 cannot be packed;
    /// the streaming sectioner rejects such traces with a typed
    /// [`TraceError::CapacityExceeded`] before this point, so overflow
    /// here is a caller bug (debug-asserted, and detectable after the
    /// fact by `parsecs-check`'s packing-integrity pass).
    pub fn new(dep: &SourceDep) -> PackedDep {
        let (producer, section, kind) = match dep.kind {
            SourceKind::Local { producer } => (producer, 0, KIND_LOCAL),
            SourceKind::Remote {
                producer,
                producer_section,
            } => {
                debug_assert!(
                    producer_section.0 <= MAX_SECTIONS,
                    "trace arena supports at most {MAX_SECTIONS} sections"
                );
                (producer, producer_section.0, KIND_REMOTE)
            }
            SourceKind::ForkCopy => (0, 0, KIND_FORK_COPY),
            SourceKind::InitialRegister => (0, 0, KIND_INITIAL_REG),
            SourceKind::InitialMemory => (0, 0, KIND_INITIAL_MEM),
        };
        debug_assert!(
            producer < u32::MAX as usize,
            "trace arena supports at most {} instructions",
            u32::MAX
        );
        PackedDep {
            loc: pack_location(dep.location),
            producer: producer as u32,
            section_kind: ((section as u32) << 3) | kind,
        }
    }

    /// Reassembles a dependence from its raw packed words, with **no**
    /// validity checks: the fields are stored verbatim. Exists so
    /// validators and their tests can construct deliberately corrupt
    /// dependences; normal producers should go through
    /// [`PackedDep::new`].
    pub fn from_raw_parts(loc: u64, producer: u32, section_kind: u32) -> PackedDep {
        PackedDep {
            loc,
            producer,
            section_kind,
        }
    }

    /// The raw packed words `(loc, producer, section_kind)` — the packed
    /// location, the producer's trace index, and
    /// `(producer_section << 3) | provenance`. For validators
    /// (`parsecs-check`) that must inspect the encoding itself;
    /// [`PackedDep::location`]/[`PackedDep::kind`] assume a well-formed
    /// packing and silently misdecode a corrupt one.
    pub fn raw_parts(&self) -> (u64, u32, u32) {
        (self.loc, self.producer, self.section_kind)
    }

    /// The architectural location being read.
    #[inline]
    pub fn location(&self) -> Location {
        unpack_location(self.loc)
    }

    /// Where the value comes from.
    #[inline]
    pub fn kind(&self) -> SourceKind {
        match self.section_kind & 7 {
            KIND_LOCAL => SourceKind::Local {
                producer: self.producer as usize,
            },
            KIND_REMOTE => SourceKind::Remote {
                producer: self.producer as usize,
                producer_section: SectionId((self.section_kind >> 3) as usize),
            },
            KIND_FORK_COPY => SourceKind::ForkCopy,
            KIND_INITIAL_REG => SourceKind::InitialRegister,
            _ => SourceKind::InitialMemory,
        }
    }

    /// The unpacked dependence.
    pub fn dep(&self) -> SourceDep {
        SourceDep {
            location: self.location(),
            kind: self.kind(),
        }
    }
}

/// Read-only views of every packed column of a [`TraceArena`], in one
/// borrow. The accessor methods ([`TraceArena::sources`],
/// [`TraceArena::section`], …) index the columns *assuming* the offsets
/// are well-formed; a validator cannot, so [`TraceArena::raw`] hands out
/// the flat slices for bounds-checked inspection.
///
/// Layout contract (what `parsecs-check` verifies): `ip`, `mnemonic_id`,
/// `section`, `kind_flags` and `reg_deps` have one entry per record;
/// `dep_off` (and, on a full arena, `write_off`) have one per record
/// plus a trailing sentinel equal to the shared slice's length; record
/// `i`'s dependences are `deps[dep_off[i]..dep_off[i + 1]]`, the first
/// `reg_deps[i]` of them register-class.
#[derive(Debug, Clone, Copy)]
pub struct RawColumns<'a> {
    /// Static instruction index per record.
    pub ip: &'a [u32],
    /// Mnemonic-table id per record.
    pub mnemonic_id: &'a [u16],
    /// Section id per record.
    pub section: &'a [u32],
    /// Packed [`TraceKind`] + control/load/store flags per record.
    pub kind_flags: &'a [u8],
    /// Offsets into `deps` (one per record, plus a trailing sentinel).
    pub dep_off: &'a [u32],
    /// Register-class prefix length of each record's dep slice.
    pub reg_deps: &'a [u16],
    /// Offsets into `writes` (empty of meaning on a lean arena:
    /// `[0]` exactly).
    pub write_off: &'a [u32],
    /// The shared dependence slice.
    pub deps: &'a [PackedDep],
    /// The shared written-locations slice (packed; empty on a lean
    /// arena).
    pub writes: &'a [u64],
    /// The interned mnemonic table.
    pub mnemonics: &'a [&'static str],
}

/// Per-record `kind_flags` layout: low three bits [`TraceKind`], then the
/// control/load/store flags.
const FLAG_CONTROL: u8 = 1 << 3;
const FLAG_LOAD: u8 = 1 << 4;
const FLAG_STORE: u8 = 1 << 5;

#[inline]
fn pack_kind(kind: TraceKind) -> u8 {
    match kind {
        TraceKind::Other => 0,
        TraceKind::Call => 1,
        TraceKind::Ret => 2,
        TraceKind::Fork => 3,
        TraceKind::EndFork => 4,
        TraceKind::Halt => 5,
    }
}

#[inline]
fn unpack_kind(packed: u8) -> TraceKind {
    match packed & 7 {
        0 => TraceKind::Other,
        1 => TraceKind::Call,
        2 => TraceKind::Ret,
        3 => TraceKind::Fork,
        4 => TraceKind::EndFork,
        _ => TraceKind::Halt,
    }
}

/// The sectioned, dependence-annotated trace of one program run, stored
/// as flat columns (see the module docs).
///
/// Records are indexed by their sequential trace position (`seq`), which
/// is also their position in the concatenated section order. Use
/// [`crate::StreamingSectioner`] (or [`TraceArena::from_program`]) to
/// build one while the program executes, or the `push_*` builder methods
/// to assemble one from already-resolved records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceArena {
    ip: Vec<u32>,
    mnemonic_id: Vec<u16>,
    section: Vec<u32>,
    kind_flags: Vec<u8>,
    /// `deps` range of record `i` is `dep_off[i]..dep_off[i + 1]`; the
    /// first `reg_deps[i]` entries are the register/flags sources, the
    /// rest the memory sources.
    dep_off: Vec<u32>,
    reg_deps: Vec<u16>,
    /// `writes` range of record `i` is `write_off[i]..write_off[i + 1]`.
    write_off: Vec<u32>,
    deps: Vec<PackedDep>,
    writes: Vec<u64>,
    mnemonics: Vec<&'static str>,
    sections: Vec<SectionSpan>,
    outputs: Vec<u64>,
    /// A *lean* arena skips the written-locations columns (`writes`,
    /// `write_off`): the timing simulators never read them (store-ness is
    /// a `kind_flags` bit and every consumer reaches its producer through
    /// `deps`), only the record-representation bridge does. Saves ~15
    /// bytes per instruction on store-heavy chip-scale runs.
    lean: bool,
}

impl TraceArena {
    /// An empty arena.
    pub fn new() -> TraceArena {
        TraceArena {
            dep_off: vec![0],
            write_off: vec![0],
            ..TraceArena::default()
        }
    }

    /// An empty *lean* arena: written locations are not recorded (see
    /// [`TraceArena::records_writes`]). Use for stats-oriented chip-scale
    /// simulation where the written-locations column would be dead
    /// weight; the record-representation bridge
    /// (`SectionedTrace::from_arena`) needs a full arena.
    pub fn new_lean() -> TraceArena {
        TraceArena {
            lean: true,
            ..TraceArena::new()
        }
    }

    /// Whether the arena records written locations ([`TraceArena::written`]
    /// yields them). `false` for lean arenas, whose `written` is always
    /// empty even for stores ([`TraceArena::is_store`] stays accurate).
    pub fn records_writes(&self) -> bool {
        !self.lean
    }

    /// Checks that one more record with `new_deps` dependences and
    /// `new_writes` written locations fits the packed columns.
    pub(crate) fn capacity_for(
        &self,
        new_deps: usize,
        new_writes: usize,
    ) -> Result<(), TraceError> {
        check_capacity(
            self.ip.len() as u64 + 1,
            self.deps.len() as u64 + new_deps as u64,
            self.writes.len() as u64 + new_writes as u64,
            // `sections.len()` is the id of the section currently being
            // recorded; it must itself fit the 29-bit producer tag.
            self.sections.len() as u64 + 1,
        )
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.ip.len()
    }

    /// Whether the arena holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.ip.is_empty()
    }

    /// The sections, in total order.
    pub fn sections(&self) -> &[SectionSpan] {
        &self.sections
    }

    /// The values emitted by `out` during the functional run.
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Static instruction index of record `seq`.
    #[inline]
    pub fn ip(&self, seq: usize) -> usize {
        self.ip[seq] as usize
    }

    /// Mnemonic of record `seq`.
    #[inline]
    pub fn mnemonic(&self, seq: usize) -> &'static str {
        self.mnemonics[self.mnemonic_id[seq] as usize]
    }

    /// Section of record `seq`.
    #[inline]
    pub fn section(&self, seq: usize) -> SectionId {
        SectionId(self.section[seq] as usize)
    }

    /// Position of record `seq` within its section (0-based; derived from
    /// the section span rather than stored).
    #[inline]
    pub fn index_in_section(&self, seq: usize) -> usize {
        seq - self.sections[self.section[seq] as usize].start
    }

    /// Classification of record `seq`.
    #[inline]
    pub fn kind(&self, seq: usize) -> TraceKind {
        unpack_kind(self.kind_flags[seq])
    }

    /// Whether record `seq` is a control-flow instruction.
    #[inline]
    pub fn is_control(&self, seq: usize) -> bool {
        self.kind_flags[seq] & FLAG_CONTROL != 0
    }

    /// Whether record `seq` loads from data memory.
    #[inline]
    pub fn is_load(&self, seq: usize) -> bool {
        self.kind_flags[seq] & FLAG_LOAD != 0
    }

    /// Whether record `seq` stores to data memory.
    #[inline]
    pub fn is_store(&self, seq: usize) -> bool {
        self.kind_flags[seq] & FLAG_STORE != 0
    }

    /// The register and flags sources of record `seq`.
    #[inline]
    pub fn reg_sources(&self, seq: usize) -> &[PackedDep] {
        let start = self.dep_off[seq] as usize;
        &self.deps[start..start + self.reg_deps[seq] as usize]
    }

    /// The memory-word sources of record `seq`.
    #[inline]
    pub fn mem_sources(&self, seq: usize) -> &[PackedDep] {
        let start = self.dep_off[seq] as usize + self.reg_deps[seq] as usize;
        &self.deps[start..self.dep_off[seq + 1] as usize]
    }

    /// All sources of record `seq` (registers and flags first, then
    /// memory words).
    #[inline]
    pub fn sources(&self, seq: usize) -> &[PackedDep] {
        &self.deps[self.dep_off[seq] as usize..self.dep_off[seq + 1] as usize]
    }

    /// The locations written by record `seq` (always empty on a lean
    /// arena — see [`TraceArena::records_writes`]).
    pub fn written(&self, seq: usize) -> impl Iterator<Item = Location> + '_ {
        let range = if self.lean {
            0..0
        } else {
            self.write_off[seq] as usize..self.write_off[seq + 1] as usize
        };
        self.writes[range].iter().map(|&w| unpack_location(w))
    }

    /// The paper's `s-i` name of record `seq` (1-based), e.g. `"2-13"`.
    pub fn name(&self, seq: usize) -> String {
        format!(
            "{}-{}",
            self.section[seq] as usize + 1,
            self.index_in_section(seq) + 1
        )
    }

    /// The number of instructions of each section, in total order.
    pub fn section_sizes(&self) -> Vec<usize> {
        self.sections.iter().map(SectionSpan::len).collect()
    }

    /// Size of the largest section.
    pub fn longest_section(&self) -> usize {
        self.section_sizes().into_iter().max().unwrap_or(0)
    }

    /// Bytes of memory held by the arena (allocated capacity of every
    /// column, shared slice and table — the resident footprint, not the
    /// minimal payload).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<TraceArena>()
            + self.ip.capacity() * size_of::<u32>()
            + self.mnemonic_id.capacity() * size_of::<u16>()
            + self.section.capacity() * size_of::<u32>()
            + self.kind_flags.capacity()
            + self.dep_off.capacity() * size_of::<u32>()
            + self.reg_deps.capacity() * size_of::<u16>()
            + self.write_off.capacity() * size_of::<u32>()
            + self.deps.capacity() * size_of::<PackedDep>()
            + self.writes.capacity() * size_of::<u64>()
            + self.mnemonics.capacity() * size_of::<&'static str>()
            + self.sections.capacity() * size_of::<SectionSpan>()
            + self.outputs.capacity() * size_of::<u64>()
    }

    /// Releases the growth slack of every column (amortised-doubling can
    /// leave up to 2× the payload allocated right after a growth step).
    /// One-time copy cost; worth it when the arena will be held across a
    /// long simulation or its footprint reported.
    pub fn shrink_to_fit(&mut self) {
        self.ip.shrink_to_fit();
        self.mnemonic_id.shrink_to_fit();
        self.section.shrink_to_fit();
        self.kind_flags.shrink_to_fit();
        self.dep_off.shrink_to_fit();
        self.reg_deps.shrink_to_fit();
        self.write_off.shrink_to_fit();
        self.deps.shrink_to_fit();
        self.writes.shrink_to_fit();
        self.mnemonics.shrink_to_fit();
        self.sections.shrink_to_fit();
        self.outputs.shrink_to_fit();
    }

    /// Read-only views of every packed column (see [`RawColumns`]), for
    /// validators that must not trust the offset columns before checking
    /// them.
    pub fn raw(&self) -> RawColumns<'_> {
        RawColumns {
            ip: &self.ip,
            mnemonic_id: &self.mnemonic_id,
            section: &self.section,
            kind_flags: &self.kind_flags,
            dep_off: &self.dep_off,
            reg_deps: &self.reg_deps,
            write_off: &self.write_off,
            deps: &self.deps,
            writes: &self.writes,
            mnemonics: &self.mnemonics,
        }
    }

    /// [`TraceArena::memory_bytes`] per instruction.
    pub fn bytes_per_instruction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.memory_bytes() as f64 / self.len() as f64
        }
    }

    // ------------------------------------------------------------------
    // Builder surface (the streaming sectioner writes the columns
    // directly; these are for assembling an arena from already-resolved
    // records, e.g. `SectionedTrace::to_arena`).
    // ------------------------------------------------------------------

    /// Interns a mnemonic, returning its table id. The table stays tiny
    /// (one entry per distinct mnemonic), so the scan is cheap; hot
    /// producers cache ids per static instruction instead.
    pub fn intern_mnemonic(&mut self, mnemonic: &'static str) -> u16 {
        if let Some(found) = self
            .mnemonics
            .iter()
            .position(|&m| std::ptr::eq(m.as_ptr(), mnemonic.as_ptr()) || m == mnemonic)
        {
            return found as u16;
        }
        let id = u16::try_from(self.mnemonics.len()).expect("fewer than 65536 mnemonics");
        self.mnemonics.push(mnemonic);
        id
    }

    /// Appends one resolved record. Records must be pushed in sequential
    /// trace order; `is_load`/`is_store` are derived (a memory source
    /// means a load, a written memory location means a store), exactly as
    /// the sequential analysis derives them.
    #[allow(clippy::too_many_arguments)]
    pub fn push_record(
        &mut self,
        ip: usize,
        mnemonic: &'static str,
        section: SectionId,
        kind: TraceKind,
        is_control: bool,
        reg_sources: &[SourceDep],
        mem_sources: &[SourceDep],
        writes: &[Location],
    ) {
        let mnemonic_id = self.intern_mnemonic(mnemonic);
        let is_store = writes.iter().any(Location::is_mem);
        self.begin_record(
            ip,
            mnemonic_id,
            SectionId(section.0),
            kind,
            is_control,
            !mem_sources.is_empty(),
            is_store,
        );
        for dep in reg_sources {
            self.push_dep(PackedDep::new(dep));
        }
        for dep in mem_sources {
            self.push_dep(PackedDep::new(dep));
        }
        for &loc in writes {
            self.push_write(loc);
        }
        self.end_record(reg_sources.len());
    }

    /// Appends the next section span. Spans must arrive in total order
    /// and tile the record range.
    pub fn push_section(&mut self, span: SectionSpan) {
        debug_assert_eq!(span.id.0, self.sections.len());
        self.sections.push(span);
    }

    /// Sets the functional outputs of the run.
    pub fn set_outputs(&mut self, outputs: Vec<u64>) {
        self.outputs = outputs;
    }

    // Column-level builder steps (used by the streaming sectioner, and
    // public so external corpora — notably the `parsecs-check` mutation
    // tests — can assemble arenas the record-level surface refuses to).

    /// Opens one record at the column level: pushes the fixed-width
    /// per-record columns and nothing else. Pair with
    /// [`TraceArena::end_record`]; push the record's dependences (and,
    /// on a full arena, its writes) in between. The record-level
    /// [`TraceArena::push_record`] is the convenient surface; this one
    /// exists for streaming producers that already hold packed deps, and
    /// performs **no** capacity checks (callers check
    /// [`crate::TraceError::CapacityExceeded`] conditions up front, as
    /// the streaming sectioner does) — an unclosed or overflowed record
    /// is caught by `parsecs-check`, not here.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_record(
        &mut self,
        ip: usize,
        mnemonic_id: u16,
        section: SectionId,
        kind: TraceKind,
        is_control: bool,
        is_load: bool,
        is_store: bool,
    ) {
        debug_assert!(
            self.ip.len() < u32::MAX as usize - 1,
            "trace arena supports at most {} instructions",
            u32::MAX
        );
        debug_assert!(
            section.0 <= MAX_SECTIONS,
            "trace arena supports at most {MAX_SECTIONS} sections"
        );
        self.ip
            .push(u32::try_from(ip).expect("static index fits u32"));
        self.mnemonic_id.push(mnemonic_id);
        self.section.push(section.0 as u32);
        let mut flags = pack_kind(kind);
        if is_control {
            flags |= FLAG_CONTROL;
        }
        if is_load {
            flags |= FLAG_LOAD;
        }
        if is_store {
            flags |= FLAG_STORE;
        }
        self.kind_flags.push(flags);
    }

    /// Appends one dependence of the record being built (register-class
    /// deps first, then memory deps; `end_record` fixes the split).
    #[inline]
    pub fn push_dep(&mut self, dep: PackedDep) {
        self.deps.push(dep);
    }

    /// Appends one written location of the record being built. Must not
    /// be called on a lean arena.
    #[inline]
    pub fn push_write(&mut self, loc: Location) {
        debug_assert!(!self.lean, "lean arenas do not record writes");
        self.writes.push(pack_location(loc));
    }

    /// Closes the record opened by `begin_record`, recording how many of
    /// the deps pushed since then are register-class sources.
    #[inline]
    pub fn end_record(&mut self, reg_dep_count: usize) {
        self.reg_deps
            .push(u16::try_from(reg_dep_count).expect("fewer than 65536 sources"));
        self.dep_off
            .push(u32::try_from(self.deps.len()).expect("dep slice fits u32 offsets"));
        if !self.lean {
            self.write_off
                .push(u32::try_from(self.writes.len()).expect("write slice fits u32 offsets"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The capacity check is a pure function of the prospective column
    /// totals, so the overflow paths are testable without materialising
    /// four billion records.
    #[test]
    fn capacity_limits_are_reported_as_typed_errors() {
        assert_eq!(
            check_capacity(1_000_000, 3_000_000, 1_500_000, 65_536),
            Ok(())
        );
        assert_eq!(
            check_capacity(MAX_RECORDS, MAX_DEPS, MAX_WRITES, MAX_SECTIONS as u64),
            Ok(())
        );
        assert_eq!(
            check_capacity(MAX_RECORDS + 1, 0, 0, 1),
            Err(TraceError::CapacityExceeded {
                resource: "instructions",
                limit: MAX_RECORDS,
            })
        );
        assert_eq!(
            check_capacity(1, MAX_DEPS + 1, 0, 1),
            Err(TraceError::CapacityExceeded {
                resource: "dependences",
                limit: MAX_DEPS,
            })
        );
        assert_eq!(
            check_capacity(1, 0, MAX_WRITES + 1, 1),
            Err(TraceError::CapacityExceeded {
                resource: "writes",
                limit: MAX_WRITES,
            })
        );
        assert_eq!(
            check_capacity(1, 0, 0, MAX_SECTIONS as u64 + 1),
            Err(TraceError::CapacityExceeded {
                resource: "sections",
                limit: MAX_SECTIONS as u64,
            })
        );
    }

    #[test]
    fn lean_arenas_skip_the_write_columns_but_keep_store_flags() {
        let mut full = TraceArena::new();
        let mut lean = TraceArena::new_lean();
        let dep = SourceDep {
            location: Location::Reg(Reg::Rax),
            kind: SourceKind::InitialRegister,
        };
        let writes = [Location::Mem(0x1000)];
        full.push_record(
            0,
            "movq",
            SectionId(0),
            TraceKind::Other,
            false,
            &[dep],
            &[],
            &writes,
        );
        // The lean builder surface is the streaming sectioner; emulate it
        // at the column level (no write pushes).
        let id = lean.intern_mnemonic("movq");
        lean.begin_record(0, id, SectionId(0), TraceKind::Other, false, false, true);
        lean.push_dep(PackedDep::new(&dep));
        lean.end_record(1);
        assert!(full.records_writes());
        assert!(!lean.records_writes());
        assert!(full.is_store(0) && lean.is_store(0));
        assert_eq!(full.written(0).count(), 1);
        assert_eq!(lean.written(0).count(), 0);
        assert!(lean.memory_bytes() < full.memory_bytes());
    }
}
