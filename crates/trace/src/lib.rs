//! # parsecs-trace — the streaming arena-backed trace pipeline
//!
//! The many-core model consumes a *sectioned, dependence-annotated* trace
//! of the program's functional run. This crate produces one in a single
//! pass: the reference machine streams each retired instruction into a
//! [`StreamingSectioner`] (a [`parsecs_machine::TraceSink`]), which
//! splits the run into the paper's totally-ordered sections, renames
//! every destination and resolves every source to its producer on the
//! fly — appending into a flat struct-of-arrays [`TraceArena`] instead of
//! allocating a record per instruction.
//!
//! Compared with the two-pass pipeline it replaces (materialise the full
//! event vector with `Machine::run_traced`, then post-process it with the
//! sequential analysis), the streaming pipeline:
//!
//! * never builds the intermediate trace (three `Vec`s per instruction);
//! * keeps the per-instruction metadata in flat columns and the
//!   dependences in **one shared 16-byte-packed slice** indexed by
//!   `(offset, len)` ranges — well under 120 bytes per instruction where
//!   the record representation costs ~250–350;
//! * looks registers up in a flat array and memory words in a
//!   multiply-shift-hashed table, instead of SipHashing `Location` keys.
//!
//! The output is held record-for-record identical to the sequential
//! analysis by a differential property test in the workspace root.
//!
//! ## Example
//!
//! ```
//! use parsecs_trace::TraceArena;
//!
//! let program = parsecs_asm::assemble(
//!     "t:   .quad 4, 2
//!      main: movq $t, %rdi
//!            fork leaf
//!            out  %rax
//!            halt
//!      leaf: movq (%rdi), %rax
//!            addq 8(%rdi), %rax
//!            endfork",
//! ).expect("assembles");
//! let arena = TraceArena::from_program(&program, 1_000).expect("runs");
//! assert_eq!(arena.outputs(), &[6]);
//! assert_eq!(arena.sections().len(), 2);
//! assert!(arena.bytes_per_instruction() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod error;
mod section;
mod stream;

pub use arena::{PackedDep, RawColumns, TraceArena};
pub use error::TraceError;
pub use section::{SectionId, SectionSpan, SourceDep, SourceKind};
pub use stream::{AddrHasher, StreamingSectioner};

#[cfg(test)]
mod tests {
    use parsecs_machine::{Location, Machine, TraceKind};

    use super::*;

    /// The paper's running example: Figure 5 preceded by a tiny `main`.
    fn sum_fork_program(data: &[u64]) -> parsecs_isa::Program {
        let quads: Vec<String> = data.iter().map(u64::to_string).collect();
        let src = format!(
            "t:   .quad {}
             main: movq $t, %rdi
                   movq ${}, %rsi
                   fork sum
                   out  %rax
                   halt
             sum:  cmpq $2, %rsi
                   ja .L2
                   movq (%rdi), %rax
                   jne .L1
                   addq 8(%rdi), %rax
             .L1:  endfork
             .L2:  movq %rsi, %rbx
                   shrq %rsi
                   fork sum
                   subq $8, %rsp
                   movq %rax, 0(%rsp)
                   leaq (%rdi,%rsi,8), %rdi
                   subq %rsi, %rbx
                   movq %rbx, %rsi
                   fork sum
                   addq 0(%rsp), %rax
                   addq $8, %rsp
                   endfork",
            quads.join(", "),
            data.len(),
        );
        parsecs_asm::assemble(&src).expect("sum program assembles")
    }

    #[test]
    fn streaming_matches_the_papers_sections() {
        let arena =
            TraceArena::from_program(&sum_fork_program(&[4, 2, 6, 4, 5]), 1_000_000).expect("runs");
        assert_eq!(arena.outputs(), &[21]);
        assert_eq!(arena.sections().len(), 6);
        assert_eq!(arena.section_sizes(), vec![3 + 11, 16, 12, 3, 3, 2]);
        assert_eq!(arena.len(), 50);
        assert_eq!(arena.longest_section(), 16);
        assert_eq!(arena.sections()[0].creator, None);
        let (creator, fork_seq) = arena.sections()[1].creator.unwrap();
        assert_eq!(creator, SectionId(0));
        assert_eq!(arena.kind(fork_seq), TraceKind::Fork);
        for w in arena.sections().windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn streaming_equals_replaying_the_materialised_trace() {
        let program = sum_fork_program(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let streamed = TraceArena::from_program(&program, 1_000_000).expect("runs");
        let mut machine = Machine::load(&program).expect("loads");
        let (outcome, trace) = machine.run_traced(1_000_000).expect("halts");
        let replayed = TraceArena::from_trace(&trace, outcome.outputs).expect("fits");
        assert_eq!(streamed, replayed);
    }

    #[test]
    fn lean_arenas_match_full_arenas_except_for_writes() {
        let program = sum_fork_program(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let full = TraceArena::from_program(&program, 1_000_000).expect("runs");
        let lean = TraceArena::from_program_lean(&program, 1_000_000).expect("runs");
        assert_eq!(full.len(), lean.len());
        assert_eq!(full.sections(), lean.sections());
        assert_eq!(full.outputs(), lean.outputs());
        assert!(lean.memory_bytes() < full.memory_bytes());
        for seq in 0..full.len() {
            assert_eq!(full.sources(seq), lean.sources(seq), "record {seq}");
            assert_eq!(full.reg_sources(seq), lean.reg_sources(seq));
            assert_eq!(full.kind(seq), lean.kind(seq));
            assert_eq!(full.is_store(seq), lean.is_store(seq));
            assert_eq!(full.is_load(seq), lean.is_load(seq));
            assert_eq!(full.is_control(seq), lean.is_control(seq));
            assert_eq!(lean.written(seq).count(), 0);
        }
    }

    #[test]
    fn packed_deps_roundtrip() {
        let deps = [
            SourceDep {
                location: Location::Reg(parsecs_isa::Reg::R13),
                kind: SourceKind::Local { producer: 12345 },
            },
            SourceDep {
                location: Location::Flags,
                kind: SourceKind::Remote {
                    producer: 99,
                    producer_section: SectionId(7),
                },
            },
            SourceDep {
                location: Location::Mem(0x1000_0008),
                kind: SourceKind::InitialMemory,
            },
            SourceDep {
                location: Location::Reg(parsecs_isa::Reg::Rsp),
                kind: SourceKind::ForkCopy,
            },
            SourceDep {
                location: Location::Reg(parsecs_isa::Reg::Rax),
                kind: SourceKind::InitialRegister,
            },
        ];
        for dep in &deps {
            let packed = PackedDep::new(dep);
            assert_eq!(packed.dep(), *dep, "{dep:?}");
        }
        assert_eq!(std::mem::size_of::<PackedDep>(), 16);
    }

    #[test]
    fn arena_exposes_loads_stores_and_dep_classes() {
        let program = parsecs_asm::assemble(
            "t:   .quad 3
             main: movq $t, %rdi
                   movq (%rdi), %rax
                   addq $1, %rax
                   movq %rax, (%rdi)
                   halt",
        )
        .unwrap();
        let arena = TraceArena::from_program(&program, 100).unwrap();
        assert_eq!(arena.len(), 5);
        // The load reads %rdi (register class) and t[0] (memory class).
        assert!(arena.is_load(1));
        assert!(!arena.is_store(1));
        assert_eq!(arena.reg_sources(1).len(), 1);
        assert_eq!(arena.mem_sources(1).len(), 1);
        assert_eq!(
            arena.mem_sources(1)[0].kind(),
            SourceKind::InitialMemory,
            "first load of t[0] is served by the loader"
        );
        // The store writes t[0] and reads the incremented %rax locally.
        assert!(arena.is_store(3));
        assert!(matches!(
            arena.reg_sources(3)[0].kind(),
            SourceKind::Local { producer: 2 }
        ));
        assert!(arena.written(3).any(|l| l.is_mem()));
        // The second load-style source of the add resolves to the movq.
        assert_eq!(arena.mnemonic(3), "movq");
        assert_eq!(arena.kind(4), TraceKind::Halt);
        assert_eq!(arena.name(0), "1-1");
    }

    #[test]
    fn memory_accounting_is_far_below_the_record_representation() {
        let data: Vec<u64> = (1..=40).collect();
        let arena = TraceArena::from_program(&sum_fork_program(&data), 1_000_000).unwrap();
        assert!(arena.len() > 300);
        let per_insn = arena.bytes_per_instruction();
        assert!(
            per_insn < 120.0,
            "arena footprint {per_insn:.1} B/insn exceeds the 120 B budget"
        );
        assert!(arena.memory_bytes() > 0);
    }

    #[test]
    fn empty_and_trailing_traces_are_handled() {
        let empty = StreamingSectioner::new().finish(vec![]).expect("fits");
        assert!(empty.is_empty());
        assert!(empty.sections().is_empty());
        assert_eq!(empty.bytes_per_instruction(), 0.0);
    }
}
