//! The single-pass streaming sectioner.
//!
//! [`StreamingSectioner`] is a [`TraceSink`]: the reference machine pushes
//! each retired instruction into it, and the sink splits the run into
//! sections, renames every destination and resolves every source to its
//! producer **on the fly**, appending straight into a [`TraceArena`]. The
//! result is identical, record for record, to running the machine to
//! completion and post-processing the materialised trace with the
//! sequential analysis (`SectionedTrace::from_trace` in `parsecs-core`) —
//! a property held by a differential proptest — but the pipeline never
//! builds the event vector, never allocates per instruction, and looks
//! registers up in a flat array instead of hashing `Location` keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use parsecs_isa::{Program, Reg};
use parsecs_machine::{Location, Machine, Trace, TraceKind, TraceSink, TraceStep};

use crate::{PackedDep, SectionId, SectionSpan, SourceDep, SourceKind, TraceArena, TraceError};

/// A multiply-xorshift hasher for the memory last-writer table: the keys
/// are 8-aligned data addresses, so the default SipHash's collision
/// resistance buys nothing and its per-lookup cost dominates the
/// sectioner's profile. (splitmix64's finalizer — the same mixer the
/// workspace uses for dataset generation.)
#[derive(Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; the map only ever hashes u64 keys.
        let mut h = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, key: u64) {
        let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

type AddrMap<V> = HashMap<u64, V, BuildHasherDefault<AddrHasher>>;

/// `(producer trace index, producer section)`; `u32::MAX` marks an
/// unwritten location.
const NO_WRITER: (u32, u32) = (u32::MAX, u32::MAX);

/// Register-file slots tracked by the flat last-writer array: the sixteen
/// registers plus the flags.
const REG_SLOTS: usize = Reg::COUNT + 1;
const FLAGS_SLOT: usize = Reg::COUNT;

/// The streaming sectioner (see the module docs). Feed it through
/// [`parsecs_machine::Machine::run_with_sink`] — or any [`TraceStep`]
/// stream in trace order — then call [`StreamingSectioner::finish`].
#[derive(Debug)]
pub struct StreamingSectioner {
    arena: TraceArena,
    /// Fork sites whose created section has not started yet, as
    /// `(creator section, fork trace index)` — the creator stack of the
    /// depth-first total order.
    pending: Vec<(SectionId, usize)>,
    /// Creator of the section currently being recorded.
    current_creator: Option<(SectionId, usize)>,
    /// Trace index at which the current section started.
    current_start: usize,
    /// Static instruction index of the current section's first record.
    current_start_ip: usize,
    /// Set once a `halt` ends the run; later steps are ignored, matching
    /// the sequential analysis (which stops sectioning at the halt).
    halted: bool,
    /// Last writer of each register-file slot.
    reg_writer: [(u32, u32); REG_SLOTS],
    /// Last writer of each data-memory word.
    mem_writer: AddrMap<(u32, u32)>,
    /// Mnemonic table id per static instruction (`u16::MAX` = not yet
    /// interned), so the hot path never hashes strings.
    ip_mnemonic: Vec<u16>,
    /// First capacity overflow hit while recording, if any. Once set the
    /// sink discards further steps and [`StreamingSectioner::finish`]
    /// returns the error instead of a truncated arena.
    error: Option<TraceError>,
}

impl Default for StreamingSectioner {
    fn default() -> StreamingSectioner {
        StreamingSectioner::new()
    }
}

impl StreamingSectioner {
    /// A fresh sectioner with an empty arena.
    pub fn new() -> StreamingSectioner {
        StreamingSectioner {
            arena: TraceArena::new(),
            pending: Vec::new(),
            current_creator: None,
            current_start: 0,
            current_start_ip: 0,
            halted: false,
            reg_writer: [NO_WRITER; REG_SLOTS],
            mem_writer: AddrMap::default(),
            ip_mnemonic: Vec::new(),
            error: None,
        }
    }

    /// A sectioner over a *lean* arena: written locations are resolved
    /// against (the last-writer state needs them) but not stored in the
    /// arena — see [`TraceArena::new_lean`].
    pub fn lean() -> StreamingSectioner {
        StreamingSectioner {
            arena: TraceArena::new_lean(),
            ..StreamingSectioner::new()
        }
    }

    /// Closes the trailing section (for traces that end without a
    /// terminator — cannot happen for halting programs, kept for
    /// robustness), releases the columns' growth slack — so
    /// [`TraceArena::memory_bytes`] reports the same trimmed footprint on
    /// every path — and returns the finished arena.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CapacityExceeded`] when the recorded trace
    /// outgrew one of the arena's packed-index capacities; the partially
    /// built arena is discarded.
    pub fn finish(mut self, outputs: Vec<u64>) -> Result<TraceArena, TraceError> {
        if let Some(error) = self.error {
            return Err(error);
        }
        let n = self.arena.len();
        if self.current_start < n && self.arena.sections().last().map(|s| s.end).unwrap_or(0) < n {
            let id = SectionId(self.arena.sections().len());
            self.arena.push_section(SectionSpan {
                id,
                start: self.current_start,
                end: n,
                creator: self.current_creator,
                start_ip: self.current_start_ip,
            });
        }
        self.arena.set_outputs(outputs);
        self.arena.shrink_to_fit();
        Ok(self.arena)
    }

    /// The arena built so far (for inspection; normally use `finish`).
    pub fn arena(&self) -> &TraceArena {
        &self.arena
    }

    #[inline]
    fn mnemonic_id(&mut self, ip: usize, mnemonic: &'static str) -> u16 {
        if ip >= self.ip_mnemonic.len() {
            self.ip_mnemonic.resize(ip + 1, u16::MAX);
        }
        let cached = self.ip_mnemonic[ip];
        if cached != u16::MAX {
            return cached;
        }
        let id = self.arena.intern_mnemonic(mnemonic);
        self.ip_mnemonic[ip] = id;
        id
    }

    /// Resolves one read against the last-writer state, exactly as the
    /// sequential analysis does.
    #[inline]
    fn resolve(&self, loc: Location, current: u32) -> PackedDep {
        let writer = match loc {
            Location::Reg(r) => self.reg_writer[r.index()],
            Location::Flags => self.reg_writer[FLAGS_SLOT],
            Location::Mem(addr) => self.mem_writer.get(&addr).copied().unwrap_or(NO_WRITER),
        };
        let kind = if writer == NO_WRITER {
            match loc {
                Location::Mem(_) => SourceKind::InitialMemory,
                _ => SourceKind::InitialRegister,
            }
        } else if writer.1 == current {
            SourceKind::Local {
                producer: writer.0 as usize,
            }
        } else {
            // The stack pointer and the paper's non-volatile registers are
            // copied into the section-creation message, so a forked
            // section reads them from its own register file.
            let copied = match loc {
                Location::Reg(r) => r.is_fork_copied(),
                _ => false,
            };
            if copied && self.current_creator.is_some() {
                SourceKind::ForkCopy
            } else {
                SourceKind::Remote {
                    producer: writer.0 as usize,
                    producer_section: SectionId(writer.1 as usize),
                }
            }
        };
        PackedDep::new(&SourceDep {
            location: loc,
            kind,
        })
    }
}

impl TraceSink for StreamingSectioner {
    /// Once a capacity error latches, the sectioner would only discard
    /// steps — telling the machine to stop saves functionally executing
    /// the rest of a multi-hundred-million-instruction program into a
    /// dead sink.
    fn wants_more(&self) -> bool {
        self.error.is_none()
    }

    fn record(&mut self, step: &TraceStep<'_>) {
        if self.halted || self.error.is_some() {
            return;
        }
        // Capacity guard: a trace that outgrows the packed `u32` columns
        // (possible from a few hundred million instructions on) becomes a
        // typed error at `finish` instead of an abort mid-run.
        let stored_writes = if self.arena.records_writes() {
            step.writes.len()
        } else {
            0
        };
        if let Err(e) = self.arena.capacity_for(step.reads.len(), stored_writes) {
            self.error = Some(e);
            return;
        }
        let i = self.arena.len();
        let current = self.arena.sections().len() as u32;
        if i == self.current_start {
            self.current_start_ip = step.ip;
        }

        // Resolve sources: register-class deps first, then memory deps,
        // preserving within-class read order (the order the sequential
        // analysis emits).
        let mut reg_dep_count = 0usize;
        let mut mem_dep_count = 0usize;
        for &loc in step.reads {
            if !loc.is_mem() {
                let dep = self.resolve(loc, current);
                self.arena.push_dep(dep);
                reg_dep_count += 1;
            }
        }
        for &loc in step.reads {
            if loc.is_mem() {
                let dep = self.resolve(loc, current);
                self.arena.push_dep(dep);
                mem_dep_count += 1;
            }
        }

        let mut is_store = false;
        if self.arena.records_writes() {
            for &loc in step.writes {
                self.arena.push_write(loc);
                is_store |= loc.is_mem();
            }
        } else {
            is_store = step.writes.iter().any(Location::is_mem);
        }

        let mnemonic_id = self.mnemonic_id(step.ip, step.mnemonic);
        self.arena.begin_record(
            step.ip,
            mnemonic_id,
            SectionId(current as usize),
            step.kind,
            step.is_control,
            mem_dep_count > 0,
            is_store,
        );
        self.arena.end_record(reg_dep_count);

        // This instruction becomes the last writer of everything it
        // wrote (after its own reads resolved against the previous
        // writers).
        for &loc in step.writes {
            let writer = (i as u32, current);
            match loc {
                Location::Reg(r) => self.reg_writer[r.index()] = writer,
                Location::Flags => self.reg_writer[FLAGS_SLOT] = writer,
                Location::Mem(addr) => {
                    self.mem_writer.insert(addr, writer);
                }
            }
        }

        // Section bookkeeping.
        match step.kind {
            TraceKind::Fork => {
                self.pending.push((SectionId(current as usize), i));
            }
            TraceKind::EndFork | TraceKind::Halt => {
                self.arena.push_section(SectionSpan {
                    id: SectionId(current as usize),
                    start: self.current_start,
                    end: i + 1,
                    creator: self.current_creator,
                    start_ip: self.current_start_ip,
                });
                self.current_start = i + 1;
                self.current_creator = match step.kind {
                    TraceKind::EndFork => self.pending.pop(),
                    _ => None,
                };
                if step.kind == TraceKind::Halt {
                    // A halt ends the whole run; anything the machine
                    // would execute past it (nothing, for the reference
                    // semantics) is not sectioned.
                    self.halted = true;
                }
            }
            _ => {}
        }
    }
}

impl TraceArena {
    /// Runs `program` functionally through the streaming pipeline: the
    /// reference machine executes with a [`StreamingSectioner`] sink, so
    /// sectioning, renaming and dependence resolution happen in the same
    /// single pass as the execution — no intermediate trace is ever
    /// materialised.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Machine`] if the functional execution fails
    /// or does not halt within `fuel` instructions, and
    /// [`TraceError::CapacityExceeded`] if the trace outgrows the arena's
    /// packed columns.
    pub fn from_program(program: &Program, fuel: u64) -> Result<TraceArena, TraceError> {
        TraceArena::run_pipeline(program, fuel, StreamingSectioner::new())
    }

    /// Like [`TraceArena::from_program`] but produces a *lean* arena
    /// (written locations are not stored — see [`TraceArena::new_lean`]):
    /// the variant chip-scale stats-only runs use to minimise resident
    /// bytes per instruction.
    ///
    /// # Errors
    ///
    /// Same as [`TraceArena::from_program`].
    pub fn from_program_lean(program: &Program, fuel: u64) -> Result<TraceArena, TraceError> {
        TraceArena::run_pipeline(program, fuel, StreamingSectioner::lean())
    }

    fn run_pipeline(
        program: &Program,
        fuel: u64,
        mut sink: StreamingSectioner,
    ) -> Result<TraceArena, TraceError> {
        let mut machine = Machine::load(program)?;
        let outcome = machine.run_with_sink(fuel, &mut sink)?;
        sink.finish(outcome.outputs)
    }

    /// Sections an already-materialised trace by replaying it through the
    /// streaming sectioner (the compatibility path for callers that hold
    /// a [`Trace`]).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CapacityExceeded`] if the trace outgrows the
    /// arena's packed columns.
    pub fn from_trace(trace: &Trace, outputs: Vec<u64>) -> Result<TraceArena, TraceError> {
        let mut sink = StreamingSectioner::new();
        for event in trace.iter() {
            sink.record(&TraceStep {
                seq: event.seq,
                ip: event.ip,
                mnemonic: event.mnemonic,
                reads: &event.reads,
                writes: &event.writes,
                is_control: event.is_control,
                updates_stack_pointer: event.updates_stack_pointer,
                kind: event.kind,
                out_value: event.out_value,
            });
        }
        sink.finish(outputs)
    }
}
