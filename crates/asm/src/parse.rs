//! Line-based parser for the gas-like assembly syntax of the paper.

use parsecs_isa::{
    AluOp, Cond, Inst, MemRef, Operand, Program, ProgramBuilder, Reg, Target, UnaryOp,
};

use crate::AsmError;

/// Assembles gas-syntax source text into a resolved [`Program`].
///
/// Supported syntax, matching the paper's listings:
///
/// * labels: `sum:` or `.L1:`, optionally followed by an instruction on the
///   same line;
/// * data: `name: .quad v1, v2, …` and `name: .zero n` (n 64-bit words);
/// * comments: `#` or `//` to end of line;
/// * instructions: `movq`, `leaq`, `pushq`, `popq`, `addq`, `subq`, `andq`,
///   `orq`, `xorq`, `shlq`, `shrq`, `sarq`, `imulq`, `negq`, `notq`,
///   `incq`, `decq`, `cmpq`, `testq`, `jmp`, `j<cc>`, `call`, `ret`,
///   `fork`, `endfork`, `out`, `nop`, `halt`;
/// * one-operand shift forms (`shrq %rsi`) shift by one, as in Figure 2;
/// * operands: `$imm`, `$symbol`, `%reg`, `disp(%base,%index,scale)` and
///   bare labels for control-flow targets.
///
/// The program entry point is the `main` label when present, otherwise the
/// first instruction.
///
/// # Errors
///
/// Returns [`AsmError::Syntax`] with a line number for lexical/syntactic
/// problems and [`AsmError::Isa`] for structural problems (undefined
/// labels, invalid operand combinations, …).
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut builder = ProgramBuilder::new();
    let mut pending_data_label: Option<String> = None;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;

        // Leading `label:` definitions (possibly several on one line).
        while let Some(colon) = find_label_colon(rest) {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if !is_identifier(label) {
                return Err(AsmError::syntax(
                    line_no,
                    format!("invalid label name `{label}`"),
                ));
            }
            rest = tail[1..].trim();
            if rest.starts_with(".quad") || rest.starts_with(".zero") {
                pending_data_label = Some(label.to_string());
            } else {
                builder.label(label);
                pending_data_label = None;
            }
            if rest.is_empty() {
                break;
            }
            // Only treat further text as another label if it also ends with
            // a colon before any whitespace-separated mnemonic; otherwise it
            // is the instruction.
            if find_label_colon(rest).is_none() {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }

        if let Some(args) = rest.strip_prefix(".quad") {
            let label = pending_data_label.take().ok_or_else(|| {
                AsmError::syntax(line_no, ".quad directive without a preceding label")
            })?;
            let words = parse_quad_list(args, line_no)?;
            builder.global_data(label, &words);
            continue;
        }
        if let Some(args) = rest.strip_prefix(".zero") {
            let label = pending_data_label.take().ok_or_else(|| {
                AsmError::syntax(line_no, ".zero directive without a preceding label")
            })?;
            let count: usize = args
                .trim()
                .parse()
                .map_err(|_| AsmError::syntax(line_no, "invalid .zero count"))?;
            builder.global_zeroed(label, count);
            continue;
        }
        if rest.starts_with(".global") || rest.starts_with(".text") || rest.starts_with(".data") {
            // Accepted and ignored: the parsecs program model does not need
            // explicit sections.
            continue;
        }
        if rest.starts_with('.') && !rest.starts_with(".L") {
            return Err(AsmError::syntax(
                line_no,
                format!("unknown directive `{rest}`"),
            ));
        }

        let inst = parse_instruction(rest, line_no)?;
        builder.push(inst);
    }

    builder.build().map_err(AsmError::from)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('#').unwrap_or(line.len());
    let cut2 = line.find("//").unwrap_or(line.len());
    &line[..cut.min(cut2)]
}

/// Finds the colon terminating a leading label, ignoring colons inside
/// operands (there are none in this syntax, but be conservative: the label
/// must come before any whitespace).
fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    if head.contains(char::is_whitespace) || head.is_empty() {
        None
    } else {
        Some(colon)
    }
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

fn parse_quad_list(args: &str, line_no: usize) -> Result<Vec<u64>, AsmError> {
    args.split(',')
        .map(|w| {
            let w = w.trim();
            parse_int(w)
                .map(|v| v as u64)
                .ok_or_else(|| AsmError::syntax(line_no, format!("invalid .quad value `{w}`")))
        })
        .collect()
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
            .ok()
            .or_else(|| u64::from_str_radix(hex, 16).ok().map(|v| v as i64))?
    } else {
        body.parse::<i64>()
            .ok()
            .or_else(|| body.parse::<u64>().ok().map(|v| v as i64))?
    };
    Some(if neg { -value } else { value })
}

fn parse_instruction(text: &str, line_no: usize) -> Result<Inst, AsmError> {
    let (mnemonic, args_text) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let args = split_operands(args_text);
    let err = |msg: String| AsmError::syntax(line_no, msg);
    let expect = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!(
                "`{mnemonic}` expects {n} operand(s), found {}",
                args.len()
            )))
        }
    };
    let operand = |i: usize| parse_operand(args[i], line_no);

    let alu = |op: AluOp| -> Result<Inst, AsmError> {
        if args.len() == 1 && matches!(op, AluOp::Shl | AluOp::Shr | AluOp::Sar) {
            // One-operand shift form: shift by one (Figure 2's `shrq %rsi`).
            return Ok(Inst::Alu {
                op,
                src: Operand::Imm(1),
                dst: parse_operand(args[0], line_no)?,
            });
        }
        expect(2)?;
        Ok(Inst::Alu {
            op,
            src: operand(0)?,
            dst: operand(1)?,
        })
    };
    let unary = |op: UnaryOp| -> Result<Inst, AsmError> {
        expect(1)?;
        Ok(Inst::Unary {
            op,
            dst: operand(0)?,
        })
    };
    let target = |i: usize| -> Result<Target, AsmError> {
        let t = args[i];
        if !is_identifier(t) {
            return Err(AsmError::syntax(line_no, format!("invalid target `{t}`")));
        }
        Ok(Target::label(t))
    };

    let inst = match mnemonic {
        "movq" | "mov" => {
            expect(2)?;
            Inst::Mov {
                src: operand(0)?,
                dst: operand(1)?,
            }
        }
        "leaq" | "lea" => {
            expect(2)?;
            let addr = match parse_operand(args[0], line_no)? {
                Operand::Mem(m) => m,
                other => {
                    return Err(err(format!(
                        "leaq source must be a memory reference, found `{other}`"
                    )))
                }
            };
            let dst = match parse_operand(args[1], line_no)? {
                Operand::Reg(r) => r,
                other => {
                    return Err(err(format!(
                        "leaq destination must be a register, found `{other}`"
                    )))
                }
            };
            Inst::Lea { addr, dst }
        }
        "pushq" | "push" => {
            expect(1)?;
            Inst::Push { src: operand(0)? }
        }
        "popq" | "pop" => {
            expect(1)?;
            Inst::Pop { dst: operand(0)? }
        }
        "addq" => alu(AluOp::Add)?,
        "subq" => alu(AluOp::Sub)?,
        "andq" => alu(AluOp::And)?,
        "orq" => alu(AluOp::Or)?,
        "xorq" => alu(AluOp::Xor)?,
        "shlq" => alu(AluOp::Shl)?,
        "shrq" => alu(AluOp::Shr)?,
        "sarq" => alu(AluOp::Sar)?,
        "imulq" => alu(AluOp::Imul)?,
        "negq" => unary(UnaryOp::Neg)?,
        "notq" => unary(UnaryOp::Not)?,
        "incq" => unary(UnaryOp::Inc)?,
        "decq" => unary(UnaryOp::Dec)?,
        "cmpq" | "cmp" => {
            expect(2)?;
            Inst::Cmp {
                src: operand(0)?,
                dst: operand(1)?,
            }
        }
        "testq" | "test" => {
            expect(2)?;
            Inst::Test {
                src: operand(0)?,
                dst: operand(1)?,
            }
        }
        "jmp" => {
            expect(1)?;
            Inst::Jmp { target: target(0)? }
        }
        "call" => {
            expect(1)?;
            Inst::Call { target: target(0)? }
        }
        "fork" => {
            expect(1)?;
            Inst::Fork { target: target(0)? }
        }
        "ret" => {
            expect(0)?;
            Inst::Ret
        }
        "endfork" => {
            expect(0)?;
            Inst::EndFork
        }
        "out" => {
            expect(1)?;
            Inst::Out { src: operand(0)? }
        }
        "nop" => {
            expect(0)?;
            Inst::Nop
        }
        "halt" => {
            expect(0)?;
            Inst::Halt
        }
        other if other.starts_with('j') => {
            let cond: Cond = other[1..]
                .parse()
                .map_err(|_| AsmError::syntax(line_no, format!("unknown mnemonic `{other}`")))?;
            expect(1)?;
            Inst::Jcc {
                cond,
                target: target(0)?,
            }
        }
        other => return Err(err(format!("unknown mnemonic `{other}`"))),
    };
    Ok(inst)
}

/// Splits an operand list on commas, but not inside parentheses (memory
/// references contain commas: `(%rdi,%rsi,8)`).
fn split_operands(s: &str) -> Vec<&str> {
    let s = s.trim();
    if s.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

fn parse_operand(text: &str, line_no: usize) -> Result<Operand, AsmError> {
    let err = |msg: String| AsmError::syntax(line_no, msg);
    if let Some(body) = text.strip_prefix('$') {
        if let Some(v) = parse_int(body) {
            return Ok(Operand::Imm(v));
        }
        if is_identifier(body) {
            return Ok(Operand::Sym(body.to_string()));
        }
        return Err(err(format!("invalid immediate `{text}`")));
    }
    if text.starts_with('%') {
        let reg: Reg = text
            .parse()
            .map_err(|_| err(format!("unknown register `{text}`")))?;
        return Ok(Operand::Reg(reg));
    }
    if text.contains('(') {
        return parse_memref(text, line_no).map(Operand::Mem);
    }
    if let Some(v) = parse_int(text) {
        // A bare integer is an absolute memory reference (rare; kept for
        // completeness).
        return Ok(Operand::Mem(MemRef::absolute(v)));
    }
    Err(err(format!("cannot parse operand `{text}`")))
}

fn parse_memref(text: &str, line_no: usize) -> Result<MemRef, AsmError> {
    let err = |msg: String| AsmError::syntax(line_no, msg);
    let open = text.find('(').expect("caller checked");
    let close = text
        .rfind(')')
        .ok_or_else(|| err(format!("unbalanced parentheses in `{text}`")))?;
    let disp_text = text[..open].trim();
    let disp = if disp_text.is_empty() {
        0
    } else {
        parse_int(disp_text).ok_or_else(|| err(format!("invalid displacement `{disp_text}`")))?
    };
    let inner = &text[open + 1..close];
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    let parse_reg = |s: &str| -> Result<Option<Reg>, AsmError> {
        if s.is_empty() {
            Ok(None)
        } else {
            s.parse::<Reg>()
                .map(Some)
                .map_err(|_| err(format!("unknown register `{s}`")))
        }
    };
    match parts.as_slice() {
        [base] => Ok(MemRef {
            base: parse_reg(base)?,
            index: None,
            scale: 1,
            disp,
        }),
        [base, index] => Ok(MemRef {
            base: parse_reg(base)?,
            index: parse_reg(index)?,
            scale: 1,
            disp,
        }),
        [base, index, scale] => {
            let scale: u8 = scale
                .parse()
                .map_err(|_| err(format!("invalid scale `{scale}`")))?;
            if ![1, 2, 4, 8].contains(&scale) {
                return Err(err(format!("scale must be 1, 2, 4 or 8, found {scale}")));
            }
            Ok(MemRef {
                base: parse_reg(base)?,
                index: parse_reg(index)?,
                scale,
                disp,
            })
        }
        _ => Err(err(format!("invalid memory reference `{text}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2 of the paper, verbatim (modulo the implicit one-operand
    /// shift which we also accept).
    const FIGURE2: &str = r#"
sum:    cmpq    $2, %rsi        # n>2
        ja      .L2             # if (n>2) goto .L2
        movq    (%rdi), %rax    # rax=t[0]
        jne     .L1             # if (n!=2) goto .L1
        addq    8(%rdi), %rax   # rax+=t[1]
.L1:    ret                     # return (rax)
.L2:    pushq   %rbx            # save rbx
        pushq   %rdi            # save t
        pushq   %rsi            # save n
        shrq    %rsi            # rsi=n/2
        call    sum             # sum(t,n/2)
        popq    %rbx            # rbx=n
        pushq   %rbx            # save n
        subq    $8, %rsp        # allocate temp
        movq    %rax, 0(%rsp)   # temp=sum(t,n/2)
        leaq    (%rdi,%rsi,8), %rdi # rdi=&t[n/2]
        subq    %rsi, %rbx      # rbx=n-n/2
        movq    %rbx, %rsi      # rsi=n-n/2
        call    sum             # sum(&t[n/2],n-n/2)
        addq    0(%rsp), %rax   # rax+=temp
        addq    $8, %rsp        # free temp
        popq    %rsi            # restore rsi (n)
        popq    %rdi            # restore rdi (t)
        popq    %rbx            # restore rbx
        ret                     # return rax
"#;

    #[test]
    fn figure2_assembles_to_25_instructions() {
        let p = assemble(FIGURE2).unwrap();
        // Figure 2 has 26 numbered lines; line 1 is the `sum:` label carrying
        // the first instruction, and `.L1:`/`.L2:` share lines with
        // instructions, so the paper's listing holds 25 instructions.
        assert_eq!(p.len(), 25);
        assert_eq!(p.labels()["sum"], 0);
        assert_eq!(p.labels()[".L1"], 5);
        assert_eq!(p.labels()[".L2"], 6);
        // `shrq %rsi` became a shift-by-one.
        assert_eq!(
            p.get(9).unwrap(),
            &Inst::Alu {
                op: AluOp::Shr,
                src: Operand::Imm(1),
                dst: Operand::Reg(Reg::Rsi)
            }
        );
        // Both calls target `sum` (index 0).
        assert_eq!(p.get(10).unwrap().target().unwrap().resolved().unwrap(), 0);
        assert_eq!(p.get(18).unwrap().target().unwrap().resolved().unwrap(), 0);
    }

    #[test]
    fn data_directives() {
        let src = r#"
            t:   .quad 1, 2, 3
            buf: .zero 4
            main: movq $t, %rdi
                  movq $buf, %rsi
                  halt
        "#;
        let p = assemble(src).unwrap();
        assert_eq!(p.data_address("t"), Some(parsecs_isa::DATA_BASE));
        assert_eq!(p.data_address("buf"), Some(parsecs_isa::DATA_BASE + 24));
        assert_eq!(p.data_size(), 24 + 32);
        assert_eq!(p.entry(), 0);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "
            # full line comment
            main: nop // trailing comment
            halt
        ";
        let p = assemble(src).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn memory_operand_forms() {
        let src = "
            main:
            movq (%rdi), %rax
            movq 8(%rdi), %rax
            movq -16(%rbp), %rax
            movq (%rdi,%rsi,8), %rax
            movq 24(%rdi,%rsi,4), %rax
            halt
        ";
        let p = assemble(src).unwrap();
        let mems: Vec<MemRef> = p
            .insns()
            .iter()
            .filter_map(|i| match i {
                Inst::Mov {
                    src: Operand::Mem(m),
                    ..
                } => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(mems.len(), 5);
        assert_eq!(mems[0], MemRef::base_disp(Reg::Rdi, 0));
        assert_eq!(mems[1], MemRef::base_disp(Reg::Rdi, 8));
        assert_eq!(mems[2], MemRef::base_disp(Reg::Rbp, -16));
        assert_eq!(mems[3], MemRef::base_index_scale(Reg::Rdi, Reg::Rsi, 8, 0));
        assert_eq!(mems[4], MemRef::base_index_scale(Reg::Rdi, Reg::Rsi, 4, 24));
    }

    #[test]
    fn all_jcc_mnemonics_parse() {
        for cond in Cond::ALL {
            let src = format!("main: j{} main\n halt", cond.suffix());
            let p = assemble(&src).unwrap();
            assert_eq!(
                p.get(0).unwrap(),
                &Inst::Jcc {
                    cond,
                    target: Target {
                        label: Some("main".into()),
                        index: Some(0)
                    }
                }
            );
        }
    }

    #[test]
    fn fork_and_endfork_parse() {
        let src = "
            sum: cmpq $2, %rsi
                 fork sum
                 endfork
        ";
        let p = assemble(src).unwrap();
        assert!(matches!(p.get(1).unwrap(), Inst::Fork { .. }));
        assert_eq!(p.get(2).unwrap(), &Inst::EndFork);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = assemble("main: nop\n bogus %rax\n").unwrap_err();
        assert_eq!(err, AsmError::syntax(2, "unknown mnemonic `bogus`"));
        let err = assemble("main: movq %rax\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 1, .. }));
        let err = assemble("main: movq %zz, %rax\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 1, .. }));
        let err = assemble(".quad 1, 2\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 1, .. }));
    }

    #[test]
    fn undefined_label_is_an_isa_error() {
        let err = assemble("main: jmp nowhere\n").unwrap_err();
        assert!(matches!(err, AsmError::Isa(_)));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let src = "main: movq $-8, %rax\n movq $0xff, %rbx\n halt";
        let p = assemble(src).unwrap();
        assert_eq!(
            p.get(0).unwrap(),
            &Inst::Mov {
                src: Operand::Imm(-8),
                dst: Operand::Reg(Reg::Rax)
            }
        );
        assert_eq!(
            p.get(1).unwrap(),
            &Inst::Mov {
                src: Operand::Imm(255),
                dst: Operand::Reg(Reg::Rbx)
            }
        );
    }

    #[test]
    fn split_operands_respects_parentheses() {
        assert_eq!(
            split_operands("(%rdi,%rsi,8), %rdi"),
            vec!["(%rdi,%rsi,8)", "%rdi"]
        );
        assert_eq!(split_operands("$2, %rsi"), vec!["$2", "%rsi"]);
        assert_eq!(split_operands(""), Vec::<&str>::new());
    }
}
