//! # parsecs-asm — a gas-syntax assembler for the parsecs ISA
//!
//! The paper's listings are written in AT&T/gas syntax (`addq 8(%rdi),
//! %rax`, rightmost operand is the destination). This crate turns that text
//! into a [`parsecs_isa::Program`] and back:
//!
//! * [`assemble`] — text → program (labels, `.quad` data, the full
//!   instruction set including `fork`/`endfork`).
//! * [`listing`] — program → text in the layout of the paper's figures.
//!
//! ## Example
//!
//! ```
//! let source = r#"
//!     t:      .quad 4, 2, 6, 4, 5
//!     main:   movq $t, %rdi
//!             movq $5, %rsi
//!             movq (%rdi), %rax
//!             addq 8(%rdi), %rax
//!             out  %rax
//!             halt
//! "#;
//! let program = parsecs_asm::assemble(source)?;
//! assert_eq!(program.len(), 6);
//! assert_eq!(program.data_address("t"), Some(parsecs_isa::DATA_BASE));
//! # Ok::<(), parsecs_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parse;
mod printer;

pub use error::AsmError;
pub use parse::assemble;
pub use printer::{listing, listing_numbered};
