//! Pretty-printers that regenerate the paper's listing layout.

use std::fmt::Write as _;

use parsecs_isa::Program;

/// Renders a program as gas-syntax text that [`crate::assemble`] accepts
/// again (data first, then labelled code).
///
/// # Example
///
/// ```
/// let p = parsecs_asm::assemble("main: movq $1, %rax\n out %rax\n halt")?;
/// let text = parsecs_asm::listing(&p);
/// let q = parsecs_asm::assemble(&text)?;
/// assert_eq!(p.insns(), q.insns());
/// # Ok::<(), parsecs_asm::AsmError>(())
/// ```
pub fn listing(program: &Program) -> String {
    program.to_string()
}

/// Renders a program with one numbered line per instruction, in the style
/// of the paper's Figure 2 / Figure 5 listings.
pub fn listing_numbered(program: &Program) -> String {
    let mut out = String::new();
    for (i, inst) in program.insns().iter().enumerate() {
        let label = program
            .label_at(i)
            .map(|l| format!("{l}:"))
            .unwrap_or_default();
        let _ = writeln!(out, "{:>4}  {:<8}{}", i + 1, label, inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    const SUM_FORK: &str = r#"
sum:    cmpq    $2, %rsi
        ja      .L2
        movq    (%rdi), %rax
        jne     .L1
        addq    8(%rdi), %rax
.L1:    endfork
.L2:    movq    %rsi, %rbx
        shrq    %rsi
        fork    sum
        subq    $8, %rsp
        movq    %rax, 0(%rsp)
        leaq    (%rdi,%rsi,8), %rdi
        subq    %rsi, %rbx
        movq    %rbx, %rsi
        fork    sum
        addq    0(%rsp), %rax
        addq    $8, %rsp
        endfork
"#;

    #[test]
    fn listing_roundtrips_through_the_assembler() {
        let p = assemble(SUM_FORK).unwrap();
        let text = listing(&p);
        let q = assemble(&text).unwrap();
        assert_eq!(p.insns(), q.insns());
        assert_eq!(p.labels(), q.labels());
    }

    #[test]
    fn listing_roundtrips_with_data() {
        let src =
            "t: .quad 4, 2, 6, 4, 5\nmain: movq $t, %rdi\n movq (%rdi), %rax\n out %rax\n halt";
        let p = assemble(src).unwrap();
        let q = assemble(&listing(&p)).unwrap();
        assert_eq!(p.insns(), q.insns());
        assert_eq!(p.data(), q.data());
        assert_eq!(p.entry(), q.entry());
    }

    #[test]
    fn numbered_listing_matches_figure5_shape() {
        let p = assemble(SUM_FORK).unwrap();
        let text = listing_numbered(&p);
        let lines: Vec<&str> = text.lines().collect();
        // Figure 5 has 18 instructions (19 numbered lines, one being the
        // shared label line).
        assert_eq!(lines.len(), 18);
        assert!(lines[0].contains("sum:"));
        assert!(lines[0].contains("cmpq"));
        assert!(lines[8].contains("fork"));
        assert!(lines[17].contains("endfork"));
        assert!(lines[0].starts_with("   1"));
    }
}
