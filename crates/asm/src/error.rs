//! Assembler errors.

use std::error::Error;
use std::fmt;

use parsecs_isa::IsaError;

/// An error produced while assembling source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A syntax error at a given (1-based) source line.
    Syntax {
        /// Source line number.
        line: usize,
        /// Human readable explanation.
        message: String,
    },
    /// A structural error reported by the ISA layer (undefined label,
    /// invalid operands, …).
    Isa(IsaError),
}

impl AsmError {
    pub(crate) fn syntax(line: usize, message: impl Into<String>) -> AsmError {
        AsmError::Syntax {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            AsmError::Isa(e) => write!(f, "{e}"),
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsmError::Syntax { .. } => None,
            AsmError::Isa(e) => Some(e),
        }
    }
}

impl From<IsaError> for AsmError {
    fn from(e: IsaError) -> AsmError {
        AsmError::Isa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_line_number() {
        let e = AsmError::syntax(12, "unknown mnemonic `bogus`");
        assert_eq!(e.to_string(), "line 12: unknown mnemonic `bogus`");
    }

    #[test]
    fn isa_errors_convert() {
        let e: AsmError = IsaError::UndefinedLabel("x".into()).into();
        assert!(e.to_string().contains("undefined label"));
    }
}
