//! Exact per-core cycle attribution.
//!
//! [`CycleAttribution`] replays the per-core section/stall event stream
//! (begin, end, in-place stall, park, requeue) into an additive per-core
//! breakdown of the whole run: every cycle in `1..=total_cycles` lands in
//! exactly one bucket — fetching (`busy`), waiting in place on a known
//! completion (`stalled`, split by [`StallCause`]), hosting only a parked
//! section (`parked`), or `idle`. The accumulator costs O(events), not
//! O(cycles): between events a core's state is constant, so the gap is
//! attributed in one subtraction.
//!
//! Bucket precedence for gap cycles is busy > parked > idle: a core
//! fetching one section while another of its sections is parked counts as
//! busy.
//!
//! The event stream is deterministic and engine-invariant (both engines
//! produce the same per-core events at the same cycles), so attribution
//! is computed *always on* — it is part of `SimStats` and participates in
//! the engines' bit-identity contract rather than being probe-gated.

use crate::probe::StallCause;

/// Additive breakdown of one core's cycles over a whole run.
///
/// `busy + stalled.iter().sum() + parked + idle == total_cycles` on every
/// well-formed run (asserted by the differential tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreBreakdown {
    /// Cycles with an instruction fetch (or a section dequeue) occupying
    /// the fetch slot.
    pub busy: u64,
    /// Cycles waiting in place on a known completion, by [`StallCause`]
    /// (indexed by [`StallCause::index`]).
    pub stalled: [u64; StallCause::COUNT],
    /// Cycles with no section in the fetch slot but at least one section
    /// parked on this core awaiting its stall's completion.
    pub parked: u64,
    /// Cycles with no section in the fetch slot and nothing parked.
    pub idle: u64,
}

impl CoreBreakdown {
    /// Total cycles waiting in place across all causes.
    pub fn stalled_total(&self) -> u64 {
        self.stalled.iter().sum()
    }

    /// Sum of all buckets (equals the run's `total_cycles`).
    pub fn total(&self) -> u64 {
        self.busy + self.stalled_total() + self.parked + self.idle
    }
}

/// Per-core accumulator state between events.
#[derive(Debug, Clone, Copy)]
struct CoreCursor {
    /// The next cycle not yet attributed. Cycles are `1..=total_cycles`.
    next: u64,
    /// Whether a section occupies the fetch slot (gap cycles are busy).
    fetching: bool,
    /// Number of sections parked on this core (gap cycles are parked
    /// when non-zero and not fetching).
    parked_depth: u32,
}

/// Streams per-core section/stall events into [`CoreBreakdown`]s.
///
/// Event cycles must be non-decreasing per core (they are, in both
/// engines: the requeue/deliver/walk/dispatch phases of a cycle touch a
/// core in program order). Cross-core interleaving is irrelevant — the
/// accumulator is per-core.
#[derive(Debug, Clone)]
pub struct CycleAttribution {
    cores: Vec<CoreCursor>,
    acc: Vec<CoreBreakdown>,
}

impl CycleAttribution {
    /// A fresh accumulator for `cores` cores, at cycle 1, all idle.
    pub fn new(cores: usize) -> Self {
        CycleAttribution {
            cores: vec![
                CoreCursor {
                    next: 1,
                    fetching: false,
                    parked_depth: 0,
                };
                cores
            ],
            acc: vec![CoreBreakdown::default(); cores],
        }
    }

    /// Number of cores tracked (the attribution denominator).
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Attributes `[next, to)` to the core's current gap bucket.
    fn advance(&mut self, core: usize, to: u64) {
        let state = &mut self.cores[core];
        if to <= state.next {
            return;
        }
        let gap = to - state.next;
        state.next = to;
        let acc = &mut self.acc[core];
        if state.fetching {
            acc.busy += gap;
        } else if state.parked_depth > 0 {
            acc.parked += gap;
        } else {
            acc.idle += gap;
        }
    }

    /// The root section enters its core's fetch slot before cycle 1
    /// without consuming a dequeue cycle.
    pub fn begin_root(&mut self, core: usize) {
        self.cores[core].fetching = true;
    }

    /// A section was dequeued into the fetch slot at `cycle` (the
    /// dequeue consumes the cycle; fetch starts next cycle).
    pub fn begin(&mut self, core: usize, cycle: u64) {
        self.advance(core, cycle);
        self.acc[core].busy += 1;
        let state = &mut self.cores[core];
        state.next = cycle + 1;
        state.fetching = true;
    }

    /// The section left the fetch slot at `cycle` with its ending
    /// instruction fetched this cycle.
    pub fn end_fetch(&mut self, core: usize, cycle: u64) {
        self.advance(core, cycle);
        self.acc[core].busy += 1;
        let state = &mut self.cores[core];
        state.next = cycle + 1;
        state.fetching = false;
    }

    /// The section left the fetch slot at `cycle` without a fetch (the
    /// empty-section defensive path; consumes no cycle).
    pub fn end_nofetch(&mut self, core: usize, cycle: u64) {
        self.advance(core, cycle);
        self.cores[core].fetching = false;
    }

    /// The instruction fetched at `cycle` stalled in place on a known
    /// completion `completes`; fetch resumes at `max(cycle, completes) + 1`.
    pub fn stall(&mut self, core: usize, cycle: u64, completes: u64, cause: StallCause) {
        self.advance(core, cycle);
        let acc = &mut self.acc[core];
        acc.busy += 1;
        acc.stalled[cause.index()] += completes.saturating_sub(cycle);
        // The fetch slot stays occupied through the wait and fetching
        // resumes right after it, so `fetching` stays true.
        self.cores[core].next = cycle.max(completes) + 1;
    }

    /// The section parked at `cycle` on an unknown completion; the fetch
    /// slot is handed to the core's queued sections.
    pub fn park(&mut self, core: usize, cycle: u64) {
        self.advance(core, cycle);
        self.acc[core].busy += 1;
        let state = &mut self.cores[core];
        state.next = cycle + 1;
        state.fetching = false;
        state.parked_depth += 1;
    }

    /// A parked section rejoined the core's ready queue at `cycle`.
    pub fn requeue(&mut self, core: usize, cycle: u64) {
        self.advance(core, cycle);
        let state = &mut self.cores[core];
        debug_assert!(state.parked_depth > 0, "requeue pairs with a park");
        state.parked_depth = state.parked_depth.saturating_sub(1);
    }

    /// Attributes every core's tail gap through `total_cycles` and
    /// returns the per-core breakdowns.
    pub fn finish(mut self, total_cycles: u64) -> Vec<CoreBreakdown> {
        for core in 0..self.cores.len() {
            self.advance(core, total_cycles + 1);
        }
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_core_attributes_everything_idle() {
        let attr = CycleAttribution::new(2);
        let breakdown = attr.finish(10);
        assert_eq!(breakdown[0].idle, 10);
        assert_eq!(breakdown[1].idle, 10);
        assert_eq!(breakdown[0].total(), 10);
    }

    #[test]
    fn begin_fetch_end_splits_busy_and_idle() {
        let mut attr = CycleAttribution::new(1);
        // Dequeue at 3, fetch 4..=7, ending fetch at 7.
        attr.begin(0, 3);
        attr.end_fetch(0, 7);
        let b = attr.finish(10)[0];
        assert_eq!(b.busy, 5, "dequeue cycle 3 + fetches 4..=7");
        assert_eq!(b.idle, 5, "cycles 1,2,8,9,10");
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn in_place_stall_attributes_wait_by_cause() {
        let mut attr = CycleAttribution::new(1);
        attr.begin_root(0);
        // Fetch 1..=3; the cycle-3 fetch stalls until its producer
        // completes at 6; fetch resumes 7..=8 and the section ends at 8.
        attr.stall(0, 3, 6, StallCause::RemoteRegister);
        attr.end_fetch(0, 8);
        let b = attr.finish(8)[0];
        assert_eq!(b.busy, 5, "fetches at 1,2,3,7,8");
        assert_eq!(b.stalled[StallCause::RemoteRegister.index()], 3, "4..=6");
        assert_eq!(b.idle, 0);
        assert_eq!(b.total(), 8);
    }

    #[test]
    fn stall_completing_in_the_past_waits_zero_cycles() {
        let mut attr = CycleAttribution::new(1);
        attr.begin_root(0);
        attr.stall(0, 5, 4, StallCause::Local);
        attr.end_fetch(0, 6);
        let b = attr.finish(6)[0];
        assert_eq!(b.busy, 6);
        assert_eq!(b.stalled_total(), 0);
        assert_eq!(b.total(), 6);
    }

    #[test]
    fn park_and_requeue_attribute_parked_gap() {
        let mut attr = CycleAttribution::new(1);
        attr.begin_root(0);
        // Fetches 1..=2, parks at 2; requeued at 7, dequeued same cycle,
        // fetches 8..=9, ends at 9.
        attr.park(0, 2);
        attr.requeue(0, 7);
        attr.begin(0, 7);
        attr.end_fetch(0, 9);
        let b = attr.finish(10)[0];
        assert_eq!(b.busy, 5, "1,2 then dequeue 7 then 8,9");
        assert_eq!(b.parked, 4, "3..=6");
        assert_eq!(b.idle, 1, "10");
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn busy_takes_precedence_over_parked() {
        let mut attr = CycleAttribution::new(1);
        attr.begin_root(0);
        // Section A parks at 2; section B dequeues at 3 and runs to 6;
        // A requeues at 9.
        attr.park(0, 2);
        attr.begin(0, 3);
        attr.end_fetch(0, 6);
        attr.requeue(0, 9);
        let b = attr.finish(10)[0];
        assert_eq!(b.busy, 6, "1,2 + dequeue 3 + 4..=6");
        assert_eq!(b.parked, 2, "7,8 waiting on the parked section");
        assert_eq!(b.idle, 2, "9 (queued, not dequeued here) and 10");
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn two_parked_sections_stay_parked_until_the_last_requeue() {
        let mut attr = CycleAttribution::new(1);
        attr.begin_root(0);
        attr.park(0, 1);
        attr.begin(0, 2);
        attr.park(0, 3);
        attr.requeue(0, 5);
        attr.requeue(0, 8);
        let b = attr.finish(10)[0];
        assert_eq!(b.busy, 3, "1, dequeue 2, fetch-and-park 3");
        assert_eq!(b.parked, 4, "4, then 5..=7 with one section still parked");
        assert_eq!(b.idle, 3, "8,9,10");
        assert_eq!(b.total(), 10);
    }
}
