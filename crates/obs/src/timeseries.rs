//! Windowed, bounded-memory gauge recorder.

use crate::probe::{SimProbe, TickGauges};

/// The gauges a [`TimeSeries`] records, one series each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SeriesKind {
    /// Cores with a section in the fetch slot (run-list length).
    Running,
    /// Pending wake events in the calendar queues.
    CalendarDepth,
    /// Section-creation messages in flight on the NoC.
    NocInFlight,
    /// Sections parked on an unknown-completion stall.
    Parked,
    /// Completion-drain round width.
    DrainWidth,
}

impl SeriesKind {
    /// Number of recorded series.
    pub const COUNT: usize = 5;

    /// All series, in `repr` order.
    pub const ALL: [SeriesKind; Self::COUNT] = [
        SeriesKind::Running,
        SeriesKind::CalendarDepth,
        SeriesKind::NocInFlight,
        SeriesKind::Parked,
        SeriesKind::DrainWidth,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Running => "running",
            SeriesKind::CalendarDepth => "calendar_depth",
            SeriesKind::NocInFlight => "noc_in_flight",
            SeriesKind::Parked => "parked",
            SeriesKind::DrainWidth => "drain_width",
        }
    }
}

/// Fixed-resolution, bounded-memory time series over the simulated run.
///
/// Each series holds the per-bucket *maximum* of its gauge, where a
/// bucket covers `resolution()` consecutive cycles. When a sample lands
/// past the bucket cap the recorder coarsens: the resolution doubles and
/// adjacent buckets merge by maximum, so memory stays bounded no matter
/// how long the run grows while peaks are never lost. The event-driven
/// engine skips quiet cycles, so buckets it never visits stay 0.
///
/// The recorder is itself a [`SimProbe`]: attach it with the engines'
/// probed entry points to fill all series in one run.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    resolution: u64,
    max_buckets: usize,
    series: [Vec<u64>; SeriesKind::COUNT],
}

impl TimeSeries {
    /// A recorder starting at `resolution` cycles per bucket, coarsening
    /// whenever any series would exceed `max_buckets` buckets.
    ///
    /// `resolution` and `max_buckets` are clamped to at least 1 and 2.
    pub fn new(resolution: u64, max_buckets: usize) -> Self {
        TimeSeries {
            resolution: resolution.max(1),
            max_buckets: max_buckets.max(2),
            series: Default::default(),
        }
    }

    /// Current cycles-per-bucket (grows by doubling).
    pub fn resolution(&self) -> u64 {
        self.resolution
    }

    /// The recorded per-bucket maxima for `kind`. Bucket `i` covers
    /// cycles `[i * resolution(), (i + 1) * resolution())`.
    pub fn buckets(&self, kind: SeriesKind) -> &[u64] {
        &self.series[kind as usize]
    }

    /// Folds `value` into `kind`'s bucket for `cycle` (by maximum).
    pub fn record(&mut self, kind: SeriesKind, cycle: u64, value: u64) {
        while cycle / self.resolution >= self.max_buckets as u64 {
            self.coarsen();
        }
        let bucket = (cycle / self.resolution) as usize;
        let series = &mut self.series[kind as usize];
        if series.len() <= bucket {
            series.resize(bucket + 1, 0);
        }
        series[bucket] = series[bucket].max(value);
    }

    fn coarsen(&mut self) {
        self.resolution *= 2;
        for series in &mut self.series {
            let merged = series.len().div_ceil(2);
            for i in 0..merged {
                let left = series[2 * i];
                let right = series.get(2 * i + 1).copied().unwrap_or(0);
                series[i] = left.max(right);
            }
            series.truncate(merged);
        }
    }
}

impl SimProbe for TimeSeries {
    fn on_tick(&mut self, gauges: TickGauges) {
        self.record(SeriesKind::Running, gauges.cycle, gauges.running);
        self.record(
            SeriesKind::CalendarDepth,
            gauges.cycle,
            gauges.calendar_depth,
        );
        self.record(SeriesKind::NocInFlight, gauges.cycle, gauges.noc_in_flight);
        self.record(SeriesKind::Parked, gauges.cycle, gauges.parked);
    }

    fn on_drain_round(&mut self, cycle: u64, _round: usize, width: usize, _forked: bool) {
        self.record(SeriesKind::DrainWidth, cycle, width as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_bucket_maxima() {
        let mut ts = TimeSeries::new(10, 8);
        ts.record(SeriesKind::Running, 0, 3);
        ts.record(SeriesKind::Running, 9, 7);
        ts.record(SeriesKind::Running, 10, 2);
        assert_eq!(ts.buckets(SeriesKind::Running), &[7, 2]);
    }

    #[test]
    fn coarsens_by_doubling_and_max_merging() {
        let mut ts = TimeSeries::new(1, 4);
        for cycle in 0..4 {
            ts.record(SeriesKind::Parked, cycle, cycle + 1);
        }
        assert_eq!(ts.resolution(), 1);
        // Cycle 8 needs bucket 8 >= cap 4: coarsen twice to resolution 4.
        ts.record(SeriesKind::Parked, 8, 9);
        assert_eq!(ts.resolution(), 4);
        assert_eq!(ts.buckets(SeriesKind::Parked), &[4, 0, 9]);
    }

    #[test]
    fn memory_stays_bounded_over_long_runs() {
        let mut ts = TimeSeries::new(1, 16);
        for cycle in 0..100_000u64 {
            ts.record(SeriesKind::NocInFlight, cycle, 1);
        }
        assert!(ts.buckets(SeriesKind::NocInFlight).len() <= 16);
        assert!(ts.resolution() >= 100_000 / 16);
    }
}
