//! The [`SimProbe`] trait and its built-in implementations.

/// Why a fetch stage could not advance past an instruction.
///
/// The cause is classified statically from the stalled instruction's
/// dependence sources (the classification is engine-invariant, so both
/// engines report identical causes for identical stalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum StallCause {
    /// A source register is produced on another core and travels the NoC
    /// through the remote renaming path.
    RemoteRegister,
    /// The instruction waits on a memory value produced by a load/store
    /// on another core (the distributed-memory-hierarchy path).
    RemoteMemory,
    /// A source travels with the fork-time register copy. Under the
    /// current fetch semantics fork-copied sources are always available
    /// at fetch, so this cause is reserved for future core models and
    /// never fires today.
    ForkCopy,
    /// The section was ejected from the fetch slot entirely — its stall
    /// completion was unknown at dispatch (typically waiting on a
    /// section-creation handoff still crossing the NoC), so the core was
    /// handed to its queued sections and the section parked.
    NocEjection,
    /// A same-core dependence that was simply not yet executed at fetch.
    Local,
}

impl StallCause {
    /// Number of distinct causes (the attribution bucket arity).
    pub const COUNT: usize = 5;

    /// All causes, in `repr` order (matching the attribution buckets).
    pub const ALL: [StallCause; Self::COUNT] = [
        StallCause::RemoteRegister,
        StallCause::RemoteMemory,
        StallCause::ForkCopy,
        StallCause::NocEjection,
        StallCause::Local,
    ];

    /// Stable snake_case name (used as the JSON field name).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::RemoteRegister => "remote_register",
            StallCause::RemoteMemory => "remote_memory",
            StallCause::ForkCopy => "fork_copy",
            StallCause::NocEjection => "noc_ejection",
            StallCause::Local => "local",
        }
    }

    /// Bucket index of this cause (its `repr` discriminant).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Per-cycle engine gauges sampled by [`SimProbe::on_tick`].
///
/// Gauges describe the *engine's* view of the chip at the start of a
/// simulated cycle. The event-driven engine skips cycles in which nothing
/// happens, so tick streams are an engine-specific sampling of the same
/// execution — unlike the section/stall event streams, they are not
/// expected to match across engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickGauges {
    /// The simulated cycle being processed.
    pub cycle: u64,
    /// Cores with a section occupying their fetch slot.
    pub running: u64,
    /// Pending wake events in the calendar queues (event engine only;
    /// the reference reports 0).
    pub calendar_depth: u64,
    /// Section-creation messages in flight on the NoC.
    pub noc_in_flight: u64,
    /// Sections parked on an unknown-completion stall.
    pub parked: u64,
}

/// Hooks at the simulator's hot seams.
///
/// All hooks default to empty bodies and every call site is guarded by
/// `if P::ENABLED`, so a probe type with [`SimProbe::ENABLED`]` = false`
/// (the [`NoopProbe`]) monomorphizes to the uninstrumented loop — the
/// hook arguments are never even computed.
///
/// Hooks fire only from *sequential* engine phases (never from inside a
/// forked walk or drain round), in a deterministic order for a given
/// engine: per-core event streams (begin/end/park/requeue/stall) are
/// identical across engines, thread counts and stats modes; tick and
/// walk/drain gauges are engine-specific views.
pub trait SimProbe {
    /// Whether hook call sites are compiled in. Leave at the default
    /// `true` for every observing probe; only [`NoopProbe`] sets `false`.
    const ENABLED: bool = true;

    /// A simulated cycle is being processed (fires once per processed
    /// cycle, before the fetch walk).
    fn on_tick(&mut self, _gauges: TickGauges) {}

    /// Core `core` moved section `sid` into its fetch slot at `cycle`
    /// (`resumed` when the section re-enters at a parked resume point;
    /// the root section reports `cycle` 0).
    fn on_section_begin(&mut self, _core: usize, _sid: u32, _cycle: u64, _resumed: bool) {}

    /// Core `core` retired section `sid` from its fetch slot at `cycle`
    /// (`fetched` when the ending instruction was fetched this cycle;
    /// false for the empty-section defensive path).
    fn on_section_end(&mut self, _core: usize, _sid: u32, _cycle: u64, _fetched: bool) {}

    /// Core `core` parked section `sid` at `cycle` on instruction `seq`
    /// whose completion is unknown (see [`StallCause`] for `cause`).
    fn on_section_park(
        &mut self,
        _core: usize,
        _sid: u32,
        _seq: usize,
        _cycle: u64,
        _cause: StallCause,
    ) {
    }

    /// Section `sid` rejoined core `core`'s ready queue at `cycle` after
    /// its parking stall released.
    fn on_section_requeue(&mut self, _core: usize, _sid: u32, _cycle: u64) {}

    /// The last instruction of section `sid` retired at `cycle`.
    fn on_section_retire(&mut self, _sid: u32, _cycle: u64) {}

    /// Core `core` stalled in place on instruction `seq` at `cycle`; the
    /// completion is known and fetch resumes at `resumes`.
    fn on_fetch_stall(
        &mut self,
        _core: usize,
        _seq: usize,
        _cause: StallCause,
        _cycle: u64,
        _resumes: u64,
    ) {
    }

    /// A section-creation message for `sid` left core `from` toward core
    /// `to` at `cycle` (a fork handoff).
    fn on_noc_send(&mut self, _from: usize, _to: usize, _sid: u32, _cycle: u64) {}

    /// The section-creation message for `sid` arrived at core `to` at
    /// `cycle`.
    fn on_noc_deliver(&mut self, _to: usize, _sid: u32, _cycle: u64) {}

    /// The resolver ran completion-drain round `round` of width `width`
    /// while processing `cycle` (`forked` when the round ran on the
    /// pool).
    fn on_drain_round(&mut self, _cycle: u64, _round: usize, _width: usize, _forked: bool) {}

    /// The fetch walk visited `clusters` clusters with `active` cores on
    /// run lists at `cycle` (`forked` when the walk ran on the pool).
    fn on_walk(&mut self, _cycle: u64, _clusters: usize, _active: usize, _forked: bool) {}
}

/// The default probe: observes nothing, costs nothing.
///
/// `ENABLED = false` compiles every hook call site (and its argument
/// computation) out of the monomorphized engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoopProbe;

impl SimProbe for NoopProbe {
    const ENABLED: bool = false;
}

/// A probe that counts every hook firing — the differential tests' way
/// of asserting an *observing* probe leaves the simulation bit-identical
/// while actually exercising every call site.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingProbe {
    /// Cycles processed.
    pub ticks: u64,
    /// Section begins.
    pub begins: u64,
    /// Section ends.
    pub ends: u64,
    /// Section parks.
    pub parks: u64,
    /// Section requeues.
    pub requeues: u64,
    /// Section retirements.
    pub retires: u64,
    /// In-place fetch stalls.
    pub stalls: u64,
    /// NoC sends.
    pub noc_sends: u64,
    /// NoC deliveries.
    pub noc_delivers: u64,
    /// Completion-drain rounds.
    pub drain_rounds: u64,
    /// Fetch walks.
    pub walks: u64,
}

impl CountingProbe {
    /// Sum of all event counters (ignores the per-cycle tick/walk
    /// gauges, which are engine-specific).
    pub fn events(&self) -> u64 {
        self.begins
            + self.ends
            + self.parks
            + self.requeues
            + self.retires
            + self.stalls
            + self.noc_sends
            + self.noc_delivers
    }
}

impl SimProbe for CountingProbe {
    fn on_tick(&mut self, _gauges: TickGauges) {
        self.ticks += 1;
    }
    fn on_section_begin(&mut self, _core: usize, _sid: u32, _cycle: u64, _resumed: bool) {
        self.begins += 1;
    }
    fn on_section_end(&mut self, _core: usize, _sid: u32, _cycle: u64, _fetched: bool) {
        self.ends += 1;
    }
    fn on_section_park(
        &mut self,
        _core: usize,
        _sid: u32,
        _seq: usize,
        _cycle: u64,
        _cause: StallCause,
    ) {
        self.parks += 1;
    }
    fn on_section_requeue(&mut self, _core: usize, _sid: u32, _cycle: u64) {
        self.requeues += 1;
    }
    fn on_section_retire(&mut self, _sid: u32, _cycle: u64) {
        self.retires += 1;
    }
    fn on_fetch_stall(
        &mut self,
        _core: usize,
        _seq: usize,
        _cause: StallCause,
        _cycle: u64,
        _resumes: u64,
    ) {
        self.stalls += 1;
    }
    fn on_noc_send(&mut self, _from: usize, _to: usize, _sid: u32, _cycle: u64) {
        self.noc_sends += 1;
    }
    fn on_noc_deliver(&mut self, _to: usize, _sid: u32, _cycle: u64) {
        self.noc_delivers += 1;
    }
    fn on_drain_round(&mut self, _cycle: u64, _round: usize, _width: usize, _forked: bool) {
        self.drain_rounds += 1;
    }
    fn on_walk(&mut self, _cycle: u64, _clusters: usize, _active: usize, _forked: bool) {
        self.walks += 1;
    }
}
