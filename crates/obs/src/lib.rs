//! Zero-cost simulator telemetry.
//!
//! The simulator engines in `parsecs-core` are instrumented with a
//! [`SimProbe`] trait whose hooks sit at the event loop's hot seams:
//! section begin/park/requeue/retire, fetch stalls with a typed
//! [`StallCause`], NoC send/deliver, drain rounds and cluster walks. The
//! probe is a *generic parameter*, not a trait object: every engine entry
//! point is monomorphized per probe type, and the default [`NoopProbe`]
//! (with [`SimProbe::ENABLED`]` = false`) compiles every hook — and the
//! computation of its arguments — out of the binary. A `NoopProbe` run is
//! bit-identical to an uninstrumented build and within noise of its
//! performance; `repro_perf` gates this with a dedicated guard row.
//!
//! Three consumers ship with the crate:
//!
//! - [`CycleAttribution`] — an exact per-core accumulator splitting every
//!   core's `total_cycles` into additive busy / stalled-by-cause / parked
//!   / idle buckets (surfaced on `SimStats` and the bench JSON).
//! - [`TimeSeries`] — a windowed, bounded-memory recorder for per-cycle
//!   gauges (core occupancy, run-list length, calendar depth, in-flight
//!   NoC messages, drain round width).
//! - [`ChromeTraceWriter`] — streams section-lifetime spans and fork
//!   flows as Chrome `trace_event` JSON loadable in Perfetto
//!   (`repro_perf --trace-out trace.json`).
//!
//! This crate is a leaf: hooks speak plain `usize`/`u64` ids so the probe
//! layer never depends on the engine types it observes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod chrome;
pub mod probe;
pub mod timeseries;

pub use attribution::{CoreBreakdown, CycleAttribution};
pub use chrome::ChromeTraceWriter;
pub use probe::{CountingProbe, NoopProbe, SimProbe, StallCause, TickGauges};
pub use timeseries::{SeriesKind, TimeSeries};
