//! Chrome `trace_event` export (Perfetto-loadable).

use std::io::{self, Write};

use crate::probe::{SimProbe, StallCause, TickGauges};

/// Streams the probe event stream as Chrome `trace_event` JSON.
///
/// Layout: one track (`tid`) per core under a single process (`pid` 0),
/// with one complete span per section residency (begin → end/park), an
/// async flow arrow per fork handoff (NoC send → deliver), instant
/// markers for in-place fetch stalls (named by [`StallCause`]), and
/// sampled counter tracks for the per-cycle gauges. One simulated cycle
/// maps to one microsecond of trace time.
///
/// The writer streams: events go to the sink as they fire (wrap the sink
/// in a [`std::io::BufWriter`] for file output) and [`finish`] closes the
/// JSON object — the output is a complete, valid document only after
/// `finish` returns. I/O errors are sticky: the first error stops all
/// further output and is returned by `finish`.
///
/// Load the result at <https://ui.perfetto.dev> or `chrome://tracing`.
///
/// [`finish`]: ChromeTraceWriter::finish
#[derive(Debug)]
pub struct ChromeTraceWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
    events: u64,
    named_cores: Vec<bool>,
    counter_stride: u64,
    next_counter: u64,
}

impl<W: Write> ChromeTraceWriter<W> {
    /// Default cycle stride between counter samples.
    pub const DEFAULT_COUNTER_STRIDE: u64 = 64;

    /// A writer streaming to `out` with the default counter stride.
    pub fn new(out: W) -> Self {
        Self::with_counter_stride(out, Self::DEFAULT_COUNTER_STRIDE)
    }

    /// A writer sampling gauge counters every `stride` cycles (0 is
    /// clamped to 1).
    pub fn with_counter_stride(out: W, stride: u64) -> Self {
        ChromeTraceWriter {
            out,
            error: None,
            events: 0,
            named_cores: Vec::new(),
            counter_stride: stride.max(1),
            next_counter: 0,
        }
    }

    /// Number of trace events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn emit(&mut self, event: std::fmt::Arguments<'_>) {
        if self.error.is_some() {
            return;
        }
        let lead = if self.events == 0 {
            "{\"traceEvents\":[\n"
        } else {
            ",\n"
        };
        if let Err(e) = write!(self.out, "{lead}{event}") {
            self.error = Some(e);
            return;
        }
        self.events += 1;
    }

    /// Emits the lazy `thread_name` metadata for a core's track once.
    fn name_core(&mut self, core: usize) {
        if self.named_cores.len() <= core {
            self.named_cores.resize(core + 1, false);
        }
        if self.named_cores[core] {
            return;
        }
        self.named_cores[core] = true;
        self.emit(format_args!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{core},\
             \"args\":{{\"name\":\"core {core}\"}}}}"
        ));
    }

    /// Closes the JSON document and returns the sink (or the first I/O
    /// error hit while streaming).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.events == 0 {
            self.out.write_all(b"{\"traceEvents\":[")?;
        }
        self.out.write_all(b"\n]}\n")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> SimProbe for ChromeTraceWriter<W> {
    fn on_tick(&mut self, gauges: TickGauges) {
        if gauges.cycle < self.next_counter {
            return;
        }
        self.next_counter = gauges.cycle + self.counter_stride;
        self.emit(format_args!(
            "{{\"name\":\"chip\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\
             \"running\":{},\"calendar_depth\":{},\"noc_in_flight\":{},\"parked\":{}}}}}",
            gauges.cycle,
            gauges.running,
            gauges.calendar_depth,
            gauges.noc_in_flight,
            gauges.parked
        ));
    }

    fn on_section_begin(&mut self, core: usize, sid: u32, cycle: u64, resumed: bool) {
        self.name_core(core);
        self.emit(format_args!(
            "{{\"name\":\"S{sid}\",\"cat\":\"section\",\"ph\":\"B\",\"ts\":{cycle},\
             \"pid\":0,\"tid\":{core},\"args\":{{\"resumed\":{resumed}}}}}"
        ));
    }

    fn on_section_end(&mut self, core: usize, sid: u32, cycle: u64, fetched: bool) {
        // The ending fetch occupies `cycle`, so the span closes after it.
        let ts = if fetched { cycle + 1 } else { cycle };
        self.emit(format_args!(
            "{{\"name\":\"S{sid}\",\"cat\":\"section\",\"ph\":\"E\",\"ts\":{ts},\
             \"pid\":0,\"tid\":{core}}}"
        ));
    }

    fn on_section_park(
        &mut self,
        core: usize,
        sid: u32,
        seq: usize,
        cycle: u64,
        cause: StallCause,
    ) {
        self.emit(format_args!(
            "{{\"name\":\"S{sid}\",\"cat\":\"section\",\"ph\":\"E\",\"ts\":{},\
             \"pid\":0,\"tid\":{core},\"args\":{{\"parked\":true,\"seq\":{seq},\
             \"cause\":\"{}\"}}}}",
            cycle + 1,
            cause.name()
        ));
    }

    fn on_section_requeue(&mut self, core: usize, sid: u32, cycle: u64) {
        self.name_core(core);
        self.emit(format_args!(
            "{{\"name\":\"requeue S{sid}\",\"cat\":\"section\",\"ph\":\"i\",\"ts\":{cycle},\
             \"pid\":0,\"tid\":{core},\"s\":\"t\"}}"
        ));
    }

    fn on_section_retire(&mut self, sid: u32, cycle: u64) {
        self.emit(format_args!(
            "{{\"name\":\"retire S{sid}\",\"cat\":\"retire\",\"ph\":\"i\",\"ts\":{cycle},\
             \"pid\":0,\"tid\":0,\"s\":\"g\"}}"
        ));
    }

    fn on_fetch_stall(
        &mut self,
        core: usize,
        seq: usize,
        cause: StallCause,
        cycle: u64,
        resumes: u64,
    ) {
        self.name_core(core);
        self.emit(format_args!(
            "{{\"name\":\"stall:{}\",\"cat\":\"stall\",\"ph\":\"i\",\"ts\":{cycle},\
             \"pid\":0,\"tid\":{core},\"s\":\"t\",\"args\":{{\"seq\":{seq},\"resumes\":{resumes}}}}}",
            cause.name()
        ));
    }

    fn on_noc_send(&mut self, from: usize, to: usize, sid: u32, cycle: u64) {
        self.name_core(from);
        self.emit(format_args!(
            "{{\"name\":\"fork S{sid}\",\"cat\":\"noc\",\"ph\":\"s\",\"id\":{sid},\
             \"ts\":{cycle},\"pid\":0,\"tid\":{from},\"args\":{{\"to\":{to}}}}}"
        ));
    }

    fn on_noc_deliver(&mut self, to: usize, sid: u32, cycle: u64) {
        self.name_core(to);
        self.emit(format_args!(
            "{{\"name\":\"fork S{sid}\",\"cat\":\"noc\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{sid},\"ts\":{cycle},\"pid\":0,\"tid\":{to}}}"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_a_valid_document() {
        let writer = ChromeTraceWriter::new(Vec::new());
        let out = writer.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "{\"traceEvents\":[\n]}\n");
    }

    #[test]
    fn spans_and_flows_stream_as_json_lines() {
        let mut writer = ChromeTraceWriter::new(Vec::new());
        writer.on_section_begin(3, 7, 10, false);
        writer.on_noc_send(3, 5, 8, 12);
        writer.on_noc_deliver(5, 8, 20);
        writer.on_section_end(3, 7, 15, true);
        assert_eq!(writer.events(), 6, "4 events + 2 lazy thread names");
        let out = String::from_utf8(writer.finish().unwrap()).unwrap();
        assert!(out.starts_with("{\"traceEvents\":[\n"));
        assert!(out.ends_with("\n]}\n"));
        assert!(out.contains("\"ph\":\"B\""));
        assert!(out.contains("\"ph\":\"E\",\"ts\":16"));
        assert!(out.contains("\"ph\":\"s\""));
        assert!(out.contains("\"ph\":\"f\""));
    }

    #[test]
    fn counter_samples_respect_the_stride() {
        let mut writer = ChromeTraceWriter::with_counter_stride(Vec::new(), 10);
        for cycle in 0..25 {
            writer.on_tick(TickGauges {
                cycle,
                running: 1,
                ..TickGauges::default()
            });
        }
        assert_eq!(writer.events(), 3, "samples at 0, 10, 20");
    }
}
