//! Minimal hand-rolled JSON emission shared by the bench binaries.
//!
//! Every `repro_*` binary writes its `BENCH_*.json` through this module
//! instead of carrying its own `format!` strings: [`Obj`] builds one row
//! as an insertion-ordered object, [`array()`] renders the row list as the
//! one-row-per-line array document the plotting scripts and the CI
//! `json.load` check consume. The numeric formatting mirrors what the
//! binaries emitted before centralisation — integers and booleans
//! verbatim, floats at an explicit fixed precision — so the files stay
//! diffable across revisions.

use std::fmt::{self, Write as _};

/// Escapes `s` for a JSON string literal (without the surrounding
/// quotes): `"` and `\` are backslash-escaped, control characters become
/// `\n`/`\r`/`\t` or `\u00XX`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An insertion-ordered JSON object builder.
///
/// Fields render in the order they are added. String values go through
/// [`escape`]; numeric, boolean and pre-encoded values are appended via
/// their `Display` form (see [`Obj::field`]).
#[derive(Debug, Default, Clone)]
pub struct Obj {
    body: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push_str(", ");
        }
        let _ = write!(self.body, "\"{}\": ", escape(key));
    }

    /// Adds an escaped, quoted string field.
    pub fn str(mut self, key: &str, value: &str) -> Obj {
        self.key(key);
        let _ = write!(self.body, "\"{}\"", escape(value));
        self
    }

    /// Adds a quoted string field, or `null` when `value` is `None`.
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Obj {
        match value {
            Some(v) => self.str(key, v),
            None => self.field(key, "null"),
        }
    }

    /// Adds a field rendered through `Display`, verbatim: integers,
    /// booleans, or an already-encoded JSON value such as a nested
    /// [`Obj::build`] result. Never pass an unescaped string here — use
    /// [`Obj::str`] for strings and [`Obj::fixed`] for floats.
    pub fn field(mut self, key: &str, value: impl fmt::Display) -> Obj {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a float at a fixed `decimals` precision (`decimals == 0`
    /// renders a bare integer literal). Non-finite values — which JSON
    /// cannot represent — render as `null`.
    pub fn fixed(mut self, key: &str, value: f64, decimals: usize) -> Obj {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.body, "{value:.decimals$}");
        } else {
            self.body.push_str("null");
        }
        self
    }

    /// Renders the object: `{"a": 1, "b": "two"}`.
    pub fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Renders pre-built rows (each an [`Obj::build`] result) as the bench
/// files' array document: one row per line, two-space indented, with a
/// trailing newline.
pub fn array(rows: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = rows.into_iter().map(|row| format!("  {row}")).collect();
    if body.is_empty() {
        return "[]\n".into();
    }
    format!("[\n{}\n]\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_fields_render_in_insertion_order() {
        let row = Obj::new()
            .str("workload", "chain_sum-8000")
            .field("cores", 64)
            .field("headline", true)
            .build();
        assert_eq!(
            row,
            "{\"workload\": \"chain_sum-8000\", \"cores\": 64, \"headline\": true}"
        );
    }

    #[test]
    fn fixed_controls_precision_and_rejects_non_finite() {
        let row = Obj::new()
            .fixed("ms", 1.23456, 3)
            .fixed("count", 12345.6, 0)
            .fixed("bad", f64::NAN, 2)
            .build();
        assert_eq!(row, "{\"ms\": 1.235, \"count\": 12346, \"bad\": null}");
    }

    #[test]
    fn opt_str_emits_null_for_none() {
        let row = Obj::new()
            .opt_str("fallback", None)
            .opt_str("reason", Some("drain"))
            .build();
        assert_eq!(row, "{\"fallback\": null, \"reason\": \"drain\"}");
    }

    #[test]
    fn nested_objects_compose_through_field() {
        let inner = Obj::new().field("64", 120).field("256", 95).build();
        let row = Obj::new().field("cycles", inner).build();
        assert_eq!(row, "{\"cycles\": {\"64\": 120, \"256\": 95}}");
    }

    #[test]
    fn array_matches_the_bench_file_shape() {
        let doc = array([
            Obj::new().field("a", 1).build(),
            Obj::new().field("b", 2).build(),
        ]);
        assert_eq!(doc, "[\n  {\"a\": 1},\n  {\"b\": 2}\n]\n");
        assert_eq!(array(Vec::<String>::new()), "[]\n");
    }
}
