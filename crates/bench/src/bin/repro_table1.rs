//! Regenerates Table 1 of the paper: the ten PBBS benchmarks used for the
//! ILP study, together with the kernel each analogue implements and a small
//! smoke run proving the analogue matches its oracle.

use parsecs_cc::Backend;
use parsecs_driver::{ExecutionBackend, SequentialBackend};
use parsecs_workloads::pbbs::Catalog;

fn main() {
    println!("Table 1: Ten benchmarks of the PBBS suite (parsecs analogues)");
    println!(
        "{:<4} {:<40} {:<18} {:>14} {:>10}",
        "id", "benchmark", "kernel", "instructions", "checked"
    );
    for benchmark in Catalog::table1() {
        let size = 48;
        let seed = 1;
        let program = benchmark
            .program(size, seed, Backend::Calls)
            .expect("embedded benchmarks compile");
        let report = SequentialBackend
            .execute_fueled(&program, 500_000_000)
            .expect("programs halt");
        let ok = report.outputs == benchmark.expected(size, seed);
        println!(
            "{:<4} {:<40} {:<18} {:>14} {:>10}",
            format!("{:02}", benchmark.id()),
            benchmark.name(),
            benchmark.kernel(),
            report.instructions,
            if ok { "ok" } else { "MISMATCH" },
        );
    }
}
