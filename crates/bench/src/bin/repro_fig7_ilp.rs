//! Regenerates Figure 7 of the paper: the ILP of the ten PBBS-analog
//! benchmarks under the *parallel* model (all destinations renamed, control
//! computed, stack-pointer dependences excluded) across a geometric dataset
//! sweep, next to the *sequential oracle* model (unlimited register
//! renaming and perfect prediction, but no memory renaming).
//!
//! The paper sweeps 11 dataset sizes producing 1 M–1 G instruction traces;
//! this harness scales the sweep down (default 5 sizes starting at 16
//! elements — pass a different count/base on the command line:
//! `repro_fig7_ilp [base] [count]`).

use parsecs_bench::{dataset_sweep, ilp_row};
use parsecs_workloads::pbbs::Catalog;

fn main() {
    let mut args = std::env::args().skip(1);
    let base: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let sizes = dataset_sweep(base, count);

    println!("Figure 7: ILP of the ten benchmarks, parallel vs sequential models");
    println!(
        "(parallel-model ILP per dataset size, then the sequential oracle on the largest size)"
    );
    println!();
    let header: Vec<String> = sizes.iter().map(|s| format!("n={s}")).collect();
    println!(
        "{:<4} {:<40} {} {:>10}",
        "id",
        "benchmark",
        header
            .iter()
            .map(|h| format!("{h:>10}"))
            .collect::<String>(),
        "seq"
    );

    for benchmark in Catalog::table1() {
        let mut cells = String::new();
        let mut last_seq = 0.0;
        for &size in &sizes {
            let row = ilp_row(benchmark, size, 1);
            cells.push_str(&format!("{:>10.1}", row.parallel_ilp));
            last_seq = row.sequential_ilp;
        }
        println!(
            "{:<4} {:<40} {} {:>10.2}",
            format!("{:02}", benchmark.id()),
            benchmark.name(),
            cells,
            last_seq,
        );
    }
    println!();
    println!(
        "Paper's qualitative claims to check: parallel ILP is orders of magnitude above the\n\
         sequential oracle (3.2-5.6 in the paper), and it grows with the dataset for the\n\
         data-parallel benchmarks 1, 2, 5, 6, 9 and 10."
    );
}
