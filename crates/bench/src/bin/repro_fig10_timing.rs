//! Regenerates Figure 10 of the paper: the cycle-by-cycle execution timing
//! of `sum(t,5)` with one section per core, printed as one table per core
//! with the six pipeline-stage columns (fd rr ew ar ma ret).

use parsecs_core::format_figure10;
use parsecs_driver::{ManyCoreBackend, Runner};
use parsecs_workloads::sum;

fn main() {
    let data = [4u64, 2, 6, 4, 5];
    let program = sum::fork_program(&data);
    let report = Runner::new(&program)
        .fuel(100_000)
        .on(ManyCoreBackend::with_cores(8))
        .run()
        .expect("simulates");
    let result = report.sim().expect("many-core backend carries a SimResult");

    println!("Figure 10: execution timing of the sum(t,5) run");
    println!(
        "(paper: 45 instructions fetched by cycle 30 and retired by cycle 43 on 5 cores;\n\
         this run adds a 5-instruction main wrapper and a 6th section for it)"
    );
    println!();
    print!("{}", format_figure10(result));
    println!("sections           : {}", result.stats.sections);
    println!("cores used         : {}", result.stats.cores_used);
    println!("last fetch cycle   : {}", result.stats.fetch_cycles);
    println!("last retire cycle  : {}", result.stats.total_cycles);
    println!("fetch IPC          : {:.2}", report.fetch_ipc);
    println!("retire IPC         : {:.2}", report.retire_ipc);
    println!(
        "remote reg requests: {}",
        result.stats.remote_register_requests
    );
    println!(
        "remote mem requests: {}",
        result.stats.remote_memory_requests
    );
    println!("loader/DMH accesses: {}", result.stats.dmh_accesses);
    println!("outputs            : {:?}", report.outputs);
}
