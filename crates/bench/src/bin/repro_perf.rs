//! Wall-clock comparison of the event-driven many-core simulator against
//! the retained cycle-stepping reference on the large-scale workloads of
//! `parsecs_workloads::scale` — the artefact behind the repository's
//! simulator performance trajectory.
//!
//! Every cell simulates one pre-sectioned trace with both engines,
//! asserts the two [`SimResult`](parsecs_core::SimResult)s are
//! **bit-identical** (this is the
//! large-scale differential test), checks the functional outputs against
//! the workload's Rust oracle, and records the wall-clock times (best of
//! [`RUNS`] after one warm-up) in `BENCH_sim.json`.
//!
//! The headline cell is the serial `chain_sum` under a latency-stress NoC
//! (a deeply pipelined interconnect charging 96+96 cycles per leg): the
//! run is dominated by cycles in which every core is idle or stalled on a
//! known future event, which the event-driven scheduler skips in O(1) and
//! the cycle stepper scans core by core. The acceptance bar is a ≥5×
//! speedup there at 64 cores on ≥1M dynamic instructions.
//!
//! The functional front-end is the **streaming trace pipeline**: each
//! workload is pre-executed once through [`TraceArena::from_program`]
//! (machine → streaming sectioner → arena, one pass) and both engines
//! simulate the same arena. The pipeline itself is also measured: the
//! `chain_sum` cell times the retired two-pass front-end
//! (`Machine::run_traced` + `SectionedTrace::from_trace`) against the
//! streaming pipeline and records the speedup plus the arena's
//! bytes-per-instruction footprint.
//!
//! The run fails (exit code 1) when any cell reports a forced stall
//! release — the deadlock detector fired, so the timings cannot be
//! trusted — when the headline speedup drops below the 5x bar, or (full
//! mode) when the streaming pipeline's advantage over the two-pass
//! front-end drops below 2x on the 1.2M-instruction chain_sum cell; CI
//! runs the quick grid under the same engine gates.
//!
//! A **validation guard row** always rides along: the stats-only
//! 1024-core `fan_chain` cell is timed with `SimConfig::validate`
//! explicitly off and explicitly on. The off cell is the exact hot path
//! of the pre-validation simulator (one never-taken branch), so its time
//! must stay within noise (±15%, full mode) of the stats-only mode cell
//! measured in the same process — the gate proving the static analyzer
//! is zero-cost when disabled. Both times land in `BENCH_sim.json` so
//! the absolute numbers stay comparable across revisions.
//!
//! A **threaded row** also rides along: the same stats-only 1024-core
//! `fan_chain` cell run sequentially (`threads = 1`) and with the
//! cluster-sharded parallel engine (`--threads`, default auto =
//! available CPUs). The two results must be **bit-identical** — the
//! parallel walk/drain fork replays the sequential order exactly — and
//! on a ≥8-way host the threaded cell must be ≥3× faster (full mode
//! only; the gate stays disarmed on smaller hosts and quick runs, the
//! bit-identity assertion never does).
//!
//! A **probe guard row** rides along the same cell: the explicit probed
//! entry point ([`ManyCoreSim::simulate_arena_probed`]) with the
//! compiled-out [`NoopProbe`] must stay within noise (±15%, full mode)
//! of the unprobed stats cell measured in the same process — the gate
//! proving the telemetry layer is zero-cost when disabled — and an
//! enabled [`CountingProbe`] run must be bit-identical to the unprobed
//! one (observers never steer). Every grid row also records the cycle
//! attribution telemetry (occupancy plus busy / stalled-by-cause /
//! parked / idle chip totals) in `BENCH_sim.json`.
//!
//! Usage: `repro_perf [--quick] [--validate] [--threads N] [--json [PATH]]
//! [--trace-out PATH]` — `--quick` shrinks the grid for CI smoke runs
//! (default JSON path `BENCH_sim.json`); `--validate` runs every grid
//! cell with the full static analysis (`parsecs-check`) on, which also
//! disarms the guard rows' noise gates (every cell then pays the
//! analysis by design); `--threads` sets the threaded row's worker
//! count (`0` = auto, default follows `PARSECS_THREADS`); `--trace-out`
//! re-runs the headline cell with a streaming
//! [`ChromeTraceWriter`] and writes a
//! Perfetto-loadable Chrome trace to `PATH`.

use std::io::BufWriter;
use std::time::Instant;

use parsecs_bench::{json, AttributionTotals};
use parsecs_core::{
    ChainAffine, ChromeTraceWriter, CountingProbe, ForkFallback, ManyCoreSim, NoopProbe,
    ScheduleBounds, SectionedTrace, SimConfig, TraceArena,
};
use parsecs_isa::Program;
use parsecs_noc::NocConfig;
use parsecs_workloads::scale;

/// Timed rounds per cell (after one untimed warm-up); each round times
/// the event-driven engine and the reference back to back, and the best
/// time per engine is recorded, so noisy-machine phases hit both engines
/// rather than biasing one.
const RUNS: usize = 5;

struct Cell {
    workload: String,
    config: String,
    sim: ManyCoreSim,
    trace: std::rc::Rc<TraceArena>,
    expected: Vec<u64>,
    headline: bool,
}

struct Row {
    workload: String,
    config: String,
    cores: usize,
    instructions: u64,
    sections: usize,
    total_cycles: u64,
    fetch_ipc: f64,
    forced_stall_releases: u64,
    arena_bytes_per_insn: f64,
    event_ms: f64,
    reference_ms: f64,
    speedup: f64,
    /// Chip-wide fetch-slot occupancy over all configured cores.
    occupancy: f64,
    /// Chip-wide sums of the per-core cycle attribution table.
    attr: AttributionTotals,
    headline: bool,
}

/// Streaming-vs-two-pass front-end comparison on the headline workload.
struct Pipeline {
    workload: String,
    instructions: u64,
    legacy_ms: f64,
    streaming_ms: f64,
    speedup: f64,
    arena_bytes_per_insn: f64,
}

/// Full-mode vs stats-only comparison on the 1024-core chip-scale cell:
/// what dropping the stage table (and the resolver's three stage
/// columns) buys in wall clock and resident state.
struct ModeRow {
    workload: String,
    cores: usize,
    instructions: u64,
    full_ms: f64,
    stats_ms: f64,
    speedup: f64,
    full_state_bytes_per_insn: f64,
    stats_state_bytes_per_insn: f64,
}

/// Timed rounds for the chip-scale full-vs-stats cell (after one untimed
/// warm-up per mode): the cell simulates 10M+ instructions at 1024
/// cores, so a short best-of keeps the bench's runtime sane.
const MODE_RUNS: usize = 2;

/// Sequential vs threaded comparison on the stats-only chip-scale cell:
/// the cluster-sharded parallel engine against the single-thread path,
/// with the results asserted bit-identical.
struct ThreadRow {
    workload: String,
    cores: usize,
    /// Resolved worker count of the threaded cell (`--threads`, `0` =
    /// auto).
    threads: usize,
    instructions: u64,
    sequential_ms: f64,
    threaded_ms: f64,
    speedup: f64,
    /// The threaded cell's typed fork verdict: `None` when the parallel
    /// fork ran (both static certificates issued), `Some` with the
    /// withheld certificate otherwise — never silent.
    fallback: Option<ForkFallback>,
}

/// Times the stats-only cell sequentially and with `threads` workers and
/// asserts the two [`parsecs_core::SimResult`]s are bit-identical (the
/// certified parallel drain's contract).
fn measure_threads(
    name: &str,
    arena: &TraceArena,
    cores: usize,
    threads: usize,
    validate: bool,
) -> ThreadRow {
    let mut base = SimConfig::with_cores(cores).stats_only();
    base.validate = validate;
    let seq_sim = ManyCoreSim::new(base.clone().with_threads(1));
    let thr_config = base.with_threads(threads);
    let resolved = thr_config.effective_threads().min(cores);
    let thr_sim = ManyCoreSim::new(thr_config);
    let sequential = seq_sim.simulate_arena(arena).expect("simulates");
    let mut threaded = thr_sim.simulate_arena(arena).expect("simulates");
    // The fork verdict is reported on its own (the sequential run never
    // asks for a fork, so it is trivially `None` there); everything else
    // must be bit-identical whether or not the fork was certified.
    let fallback = threaded.fork_fallback.take();
    assert_eq!(
        sequential, threaded,
        "{name}: threaded run diverges from the sequential engine"
    );
    let mut seq_ms = f64::INFINITY;
    let mut thr_ms = f64::INFINITY;
    for _ in 0..MODE_RUNS {
        let (_, ms) = timed(|| seq_sim.simulate_arena(arena).expect("simulates"));
        seq_ms = seq_ms.min(ms);
        let (_, ms) = timed(|| thr_sim.simulate_arena(arena).expect("simulates"));
        thr_ms = thr_ms.min(ms);
    }
    ThreadRow {
        workload: name.to_string(),
        cores,
        threads: resolved,
        instructions: arena.len() as u64,
        sequential_ms: seq_ms,
        threaded_ms: thr_ms,
        speedup: seq_ms / thr_ms,
        fallback,
    }
}

/// The validation guard: the stats-only chip-scale cell with the static
/// analysis explicitly off (the pre-validation hot path) and explicitly
/// on (analysis + simulation).
struct GuardRow {
    workload: String,
    cores: usize,
    instructions: u64,
    validate_off_ms: f64,
    validate_on_ms: f64,
    /// `validate_on_ms / validate_off_ms` — what the full static
    /// analysis costs on top of the simulation when armed.
    overhead: f64,
    /// Measured cycles of the validated run, paired with its schedule
    /// bounds below.
    cycles: u64,
    /// The schedule analyzer's verdict attached by the validated run:
    /// certified lower bound plus the list-schedule prediction.
    schedule: ScheduleBounds,
}

/// Times the stats-only cell with validation off and on. The off
/// configuration pins `validate: false` regardless of `PARSECS_VALIDATE`,
/// so the guard always measures the unvalidated hot path.
fn measure_guard(name: &str, arena: &TraceArena, cores: usize) -> GuardRow {
    let mut off_config = SimConfig::with_cores(cores).stats_only();
    off_config.validate = false;
    let off_sim = ManyCoreSim::new(off_config);
    let on_sim = ManyCoreSim::new(SimConfig::with_cores(cores).stats_only().validated());
    let off = off_sim.simulate_arena(arena).expect("simulates");
    let on = on_sim.simulate_arena(arena).expect("simulates");
    assert_eq!(
        off.stats, on.stats,
        "{name}: validation changed the timing model"
    );
    assert!(on.check.as_ref().is_some_and(|report| report.is_clean()));
    let schedule = on
        .check
        .as_ref()
        .and_then(|report| report.schedule.clone())
        .expect("a validated run attaches schedule bounds");
    let cycles = on.stats.total_cycles;
    assert!(
        cycles >= schedule.lb,
        "{name}: measured {cycles} cycles undercuts the certified bound {}",
        schedule.lb
    );
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    for _ in 0..MODE_RUNS {
        let (_, ms) = timed(|| off_sim.simulate_arena(arena).expect("simulates"));
        off_ms = off_ms.min(ms);
        let (_, ms) = timed(|| on_sim.simulate_arena(arena).expect("simulates"));
        on_ms = on_ms.min(ms);
    }
    GuardRow {
        workload: name.to_string(),
        cores,
        instructions: arena.len() as u64,
        validate_off_ms: off_ms,
        validate_on_ms: on_ms,
        overhead: on_ms / off_ms,
        cycles,
        schedule,
    }
}

/// Times both stats modes on one arena at `cores` cores and checks the
/// streaming aggregates are bit-identical to the recorded ones.
fn measure_modes(name: &str, arena: &TraceArena, cores: usize, validate: bool) -> ModeRow {
    let mut full_config = SimConfig::with_cores(cores);
    full_config.validate = validate;
    let mut stats_config = SimConfig::with_cores(cores).stats_only();
    stats_config.validate = validate;
    let full_sim = ManyCoreSim::new(full_config);
    let stats_sim = ManyCoreSim::new(stats_config);
    let full = full_sim.simulate_arena(arena).expect("simulates");
    let stats = stats_sim.simulate_arena(arena).expect("simulates");
    assert_eq!(
        full.stats, stats.stats,
        "{name} @{cores}c: stats-only aggregates diverge from full mode"
    );
    assert_eq!(full.outputs, stats.outputs);
    let mut full_ms = f64::INFINITY;
    let mut stats_ms = f64::INFINITY;
    for _ in 0..MODE_RUNS {
        let (_, ms) = timed(|| full_sim.simulate_arena(arena).expect("simulates"));
        full_ms = full_ms.min(ms);
        let (_, ms) = timed(|| stats_sim.simulate_arena(arena).expect("simulates"));
        stats_ms = stats_ms.min(ms);
    }
    let n = arena.len() as f64;
    ModeRow {
        workload: name.to_string(),
        cores,
        instructions: arena.len() as u64,
        full_ms,
        stats_ms,
        speedup: full_ms / stats_ms,
        full_state_bytes_per_insn: full.sim_state_bytes() as f64 / n,
        stats_state_bytes_per_insn: stats.sim_state_bytes() as f64 / n,
    }
}

fn stress_noc() -> SimConfig {
    let mut config = SimConfig::with_cores(64);
    config.noc = NocConfig {
        base_latency: 96,
        per_hop_latency: 96,
        link_bandwidth: None,
    };
    config
}

fn arena_of(program: &Program, fuel: u64) -> std::rc::Rc<TraceArena> {
    std::rc::Rc::new(TraceArena::from_program(program, fuel).expect("workload halts within fuel"))
}

/// Times the two front-ends on one program: the retired two-pass path
/// (materialise the trace, then section it) against the streaming
/// pipeline (best of 3 each).
fn measure_pipeline(name: &str, program: &Program, fuel: u64) -> Pipeline {
    // One untimed warm-up per path, so neither side's first timed round
    // runs cold.
    std::hint::black_box(SectionedTrace::from_program(program, fuel).expect("halts"));
    let mut arena = TraceArena::from_program(program, fuel).expect("halts");
    let mut legacy_ms = f64::INFINITY;
    let mut streaming_ms = f64::INFINITY;
    for _ in 0..3 {
        let (_, ms) = timed(|| SectionedTrace::from_program(program, fuel).expect("halts"));
        legacy_ms = legacy_ms.min(ms);
        let (streamed, ms) = timed(|| TraceArena::from_program(program, fuel).expect("halts"));
        streaming_ms = streaming_ms.min(ms);
        arena = streamed;
    }
    Pipeline {
        workload: name.to_string(),
        instructions: arena.len() as u64,
        legacy_ms,
        streaming_ms,
        speedup: legacy_ms / streaming_ms,
        arena_bytes_per_insn: arena.bytes_per_instruction(),
    }
}

/// Applies the `--validate` flag to one cell configuration.
fn with_validation(mut config: SimConfig, validate: bool) -> SimConfig {
    if validate {
        config.validate = true;
    }
    config
}

fn build_grid(quick: bool, validate: bool) -> Vec<Cell> {
    // ~1M+ dynamic instructions per workload at full scale; ~1/12 of that
    // for the CI smoke grid.
    let (chain_n, hist_n, tree_n) = if quick {
        (8_000, 8_000, 20_000)
    } else {
        (110_000, 100_000, 250_000)
    };
    let seed = 7;
    let buckets = 64;

    let chain = arena_of(
        &scale::chain_sum_program(chain_n, seed),
        scale::chain_sum_fuel(chain_n),
    );
    let histogram = arena_of(
        &scale::histogram_program(hist_n, buckets, seed),
        scale::histogram_fuel(hist_n, buckets),
    );
    let tree = arena_of(
        &scale::tree_sum_program(tree_n, seed),
        scale::tree_sum_fuel(tree_n),
    );

    vec![
        Cell {
            workload: format!("chain_sum-{chain_n}"),
            config: "64c:default".into(),
            sim: ManyCoreSim::new(with_validation(SimConfig::with_cores(64), validate)),
            trace: chain.clone(),
            expected: scale::chain_sum_expected(chain_n, seed),
            headline: false,
        },
        Cell {
            workload: format!("chain_sum-{chain_n}"),
            config: "64c:noc96+96".into(),
            sim: ManyCoreSim::new(with_validation(stress_noc(), validate)),
            trace: chain.clone(),
            expected: scale::chain_sum_expected(chain_n, seed),
            headline: true,
        },
        Cell {
            // The chained-writer co-location policy, measured where the
            // handoff path is long: under the stress NoC each link's
            // renaming round trip to the previous link costs 2×(96+96)
            // cycles unless the two links share a core. Chain-affine
            // placement roughly halves the simulated runtime of this cell
            // versus the round-robin stress cell above.
            workload: format!("chain_sum-{chain_n}"),
            config: "64c:noc96+96:chain-affine".into(),
            sim: ManyCoreSim::new(with_validation(
                stress_noc().with_placement(ChainAffine),
                validate,
            )),
            trace: chain,
            expected: scale::chain_sum_expected(chain_n, seed),
            headline: false,
        },
        Cell {
            workload: format!("histogram-{hist_n}x{buckets}"),
            config: "64c:default".into(),
            sim: ManyCoreSim::new(with_validation(SimConfig::with_cores(64), validate)),
            trace: histogram,
            expected: scale::histogram_expected(hist_n, buckets, seed),
            headline: false,
        },
        Cell {
            workload: format!("tree_sum-{tree_n}"),
            config: "64c:default".into(),
            sim: ManyCoreSim::new(with_validation(SimConfig::with_cores(64), validate)),
            trace: tree,
            expected: scale::tree_sum_expected(tree_n, seed),
            headline: false,
        },
    ]
}

fn timed<T>(run: impl Fn() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = std::hint::black_box(run());
    (result, start.elapsed().as_secs_f64() * 1e3)
}

fn measure(cell: &Cell) -> Row {
    // One untimed warm-up per engine, then RUNS interleaved rounds; keep
    // each engine's best time.
    let event = cell.sim.simulate_arena(&cell.trace).expect("simulates");
    let reference = cell
        .sim
        .simulate_arena_reference(&cell.trace)
        .expect("reference simulates");
    let mut event_ms = f64::INFINITY;
    let mut reference_ms = f64::INFINITY;
    for _ in 0..RUNS {
        let (_, ms) = timed(|| {
            cell.sim
                .simulate_arena_reference(&cell.trace)
                .expect("reference simulates")
        });
        reference_ms = reference_ms.min(ms);
        let (_, ms) = timed(|| cell.sim.simulate_arena(&cell.trace).expect("simulates"));
        event_ms = event_ms.min(ms);
    }
    assert_eq!(
        event, reference,
        "{} [{}]: event-driven and reference results diverge",
        cell.workload, cell.config
    );
    assert_eq!(
        event.outputs, cell.expected,
        "{} [{}]: outputs disagree with the oracle",
        cell.workload, cell.config
    );
    Row {
        workload: cell.workload.clone(),
        config: cell.config.clone(),
        cores: cell.sim.config().cores,
        instructions: event.stats.instructions,
        sections: event.stats.sections,
        total_cycles: event.stats.total_cycles,
        fetch_ipc: event.stats.fetch_ipc,
        forced_stall_releases: event.stats.forced_stall_releases,
        arena_bytes_per_insn: event.stats.trace_bytes_per_instruction(),
        event_ms,
        reference_ms,
        speedup: reference_ms / event_ms,
        occupancy: event.stats.occupancy(),
        attr: AttributionTotals::from_cores(&event.stats.attribution),
        headline: cell.headline,
    }
}

/// The probe guard: the stats-only chip-scale cell through the explicit
/// probed entry point, with the compiled-out [`NoopProbe`] (must sit in
/// the unprobed cell's noise band — the zero-cost contract) and with an
/// enabled [`CountingProbe`] (bit-identical by contract; its cost is
/// recorded for scale, not gated).
struct ProbeRow {
    workload: String,
    cores: usize,
    instructions: u64,
    noop_ms: f64,
    counting_ms: f64,
    /// `counting_ms / noop_ms` — what an enabled every-event observer
    /// costs on top of the bare engine.
    counting_overhead: f64,
    /// Events the counting probe observed in one run.
    events: u64,
}

/// Times the stats-only cell through [`ManyCoreSim::simulate_arena_probed`]
/// with both probes and asserts the counting run is bit-identical to the
/// unprobed one.
fn measure_probe(name: &str, arena: &TraceArena, cores: usize) -> ProbeRow {
    let mut config = SimConfig::with_cores(cores).stats_only();
    config.validate = false;
    let sim = ManyCoreSim::new(config);
    let plain = sim.simulate_arena(arena).expect("simulates");
    let mut counting = CountingProbe::default();
    let counted = sim
        .simulate_arena_probed(arena, &mut counting)
        .expect("simulates");
    assert_eq!(plain, counted, "{name}: an observing probe steered the run");
    assert!(counting.events() > 0, "{name}: the probe observed nothing");
    let mut noop_ms = f64::INFINITY;
    let mut counting_ms = f64::INFINITY;
    for _ in 0..MODE_RUNS {
        let (_, ms) = timed(|| {
            sim.simulate_arena_probed(arena, &mut NoopProbe)
                .expect("simulates")
        });
        noop_ms = noop_ms.min(ms);
        let (_, ms) = timed(|| {
            sim.simulate_arena_probed(arena, &mut CountingProbe::default())
                .expect("simulates")
        });
        counting_ms = counting_ms.min(ms);
    }
    ProbeRow {
        workload: name.to_string(),
        cores,
        instructions: arena.len() as u64,
        noop_ms,
        counting_ms,
        counting_overhead: counting_ms / noop_ms,
        events: counting.events(),
    }
}

fn to_json(
    rows: &[Row],
    pipeline: &Pipeline,
    modes: &ModeRow,
    guard: &GuardRow,
    threaded: &ThreadRow,
    probe: &ProbeRow,
) -> String {
    let mut body: Vec<String> = rows
        .iter()
        .map(|r| {
            let row = json::Obj::new()
                .str("workload", &r.workload)
                .str("config", &r.config)
                .field("cores", r.cores)
                .field("instructions", r.instructions)
                .field("sections", r.sections)
                .field("total_cycles", r.total_cycles)
                .fixed("fetch_ipc", r.fetch_ipc, 4)
                .field("forced_stall_releases", r.forced_stall_releases)
                .fixed("arena_bytes_per_insn", r.arena_bytes_per_insn, 1)
                .fixed("event_ms", r.event_ms, 3)
                .fixed("reference_ms", r.reference_ms, 3)
                .fixed("speedup", r.speedup, 2);
            r.attr
                .append_fields(row, r.occupancy)
                .field("headline", r.headline)
                .build()
        })
        .collect();
    body.push(
        json::Obj::new()
            .str("workload", &pipeline.workload)
            .str("config", "pipeline")
            .field("instructions", pipeline.instructions)
            .fixed("legacy_ms", pipeline.legacy_ms, 3)
            .fixed("streaming_ms", pipeline.streaming_ms, 3)
            .fixed("pipeline_speedup", pipeline.speedup, 2)
            .fixed("arena_bytes_per_insn", pipeline.arena_bytes_per_insn, 1)
            .build(),
    );
    body.push(
        json::Obj::new()
            .str("workload", &modes.workload)
            .str("config", "full-vs-stats")
            .field("cores", modes.cores)
            .field("instructions", modes.instructions)
            .fixed("full_ms", modes.full_ms, 3)
            .fixed("stats_ms", modes.stats_ms, 3)
            .fixed("stats_speedup", modes.speedup, 2)
            .fixed(
                "full_state_bytes_per_insn",
                modes.full_state_bytes_per_insn,
                1,
            )
            .fixed(
                "stats_state_bytes_per_insn",
                modes.stats_state_bytes_per_insn,
                1,
            )
            .build(),
    );
    body.push(
        json::Obj::new()
            .str("workload", &guard.workload)
            .str("config", "validate-guard")
            .field("cores", guard.cores)
            .field("instructions", guard.instructions)
            .fixed("validate_off_ms", guard.validate_off_ms, 3)
            .fixed("validate_on_ms", guard.validate_on_ms, 3)
            .fixed("validate_overhead", guard.overhead, 3)
            .field("total_cycles", guard.cycles)
            .field("lb_cycles", guard.schedule.lb)
            .field("predicted_cycles", guard.schedule.predicted_cycles)
            .fixed("lb_tightness", guard.schedule.tightness(guard.cycles), 4)
            .build(),
    );
    body.push(
        json::Obj::new()
            .str("workload", &threaded.workload)
            .str("config", "threaded")
            .field("cores", threaded.cores)
            .field("threads", threaded.threads)
            .field("instructions", threaded.instructions)
            .fixed("sequential_ms", threaded.sequential_ms, 3)
            .fixed("threaded_ms", threaded.threaded_ms, 3)
            .fixed("threaded_speedup", threaded.speedup, 2)
            .opt_str(
                "fork_fallback",
                threaded.fallback.map(|f| f.reason.to_string()).as_deref(),
            )
            .build(),
    );
    body.push(
        json::Obj::new()
            .str("workload", &probe.workload)
            .str("config", "probe-guard")
            .field("cores", probe.cores)
            .field("instructions", probe.instructions)
            .fixed("noop_probe_ms", probe.noop_ms, 3)
            .fixed("counting_probe_ms", probe.counting_ms, 3)
            .fixed("counting_overhead", probe.counting_overhead, 3)
            .field("probe_events", probe.events)
            .build(),
    );
    json::array(body)
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<20} {:<16} {:>9} {:>9} {:>11} {:>7} {:>7} {:>10} {:>10} {:>8}",
        "workload",
        "config",
        "insns",
        "sections",
        "cycles",
        "forced",
        "B/insn",
        "event ms",
        "ref ms",
        "speedup"
    );
    for r in rows {
        println!(
            "{:<20} {:<16} {:>9} {:>9} {:>11} {:>7} {:>7.1} {:>10.1} {:>10.1} {:>7.1}x{}",
            r.workload,
            r.config,
            r.instructions,
            r.sections,
            r.total_cycles,
            r.forced_stall_releases,
            r.arena_bytes_per_insn,
            r.event_ms,
            r.reference_ms,
            r.speedup,
            if r.headline { "  <- headline" } else { "" }
        );
    }
}

fn main() {
    let mut quick = false;
    let mut validate = false;
    let mut threads = SimConfig::default().threads.max(2);
    let mut json_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--validate" => validate = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a count (0 = auto)");
            }
            "--json" => {
                json_path = Some(match args.peek() {
                    Some(path) if !path.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_sim.json".into(),
                });
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a file path"));
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (supported: --quick --validate \
                     --threads N --json [PATH] --trace-out PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    let grid = build_grid(quick, validate);
    eprintln!(
        "measuring {} cells ({} mode{}, best of {RUNS} runs per engine)...",
        grid.len(),
        if quick { "quick" } else { "full" },
        if validate { ", validated" } else { "" }
    );
    let rows: Vec<Row> = grid.iter().map(measure).collect();
    print_table(&rows);

    // Front-end pipeline comparison on the chain_sum workload.
    let chain_n = if quick { 8_000 } else { 110_000 };
    let pipeline = measure_pipeline(
        &format!("chain_sum-{chain_n}"),
        &scale::chain_sum_program(chain_n, 7),
        scale::chain_sum_fuel(chain_n),
    );
    println!(
        "pipeline {:<22} {:>9} insns  legacy {:>7.1} ms  streaming {:>7.1} ms  \
         {:>4.1}x  arena {:>5.1} B/insn",
        pipeline.workload,
        pipeline.instructions,
        pipeline.legacy_ms,
        pipeline.streaming_ms,
        pipeline.speedup,
        pipeline.arena_bytes_per_insn,
    );

    // Full-vs-stats on the 1024-core fan_chain cell: the batched drain
    // plus the dropped stage table must buy a real wall-clock win at the
    // scale where the simulator's own state blows the cache (>=10M
    // instructions in full mode; a ~1M-instruction instance in quick
    // mode, where the gate stays unarmed).
    let (chains, links) = if quick { (1024, 70) } else { (1024, 700) };
    let fan = arena_of(
        &scale::fan_chain_program(chains, links, 7),
        scale::fan_chain_fuel(chains, links),
    );
    let modes = measure_modes(&format!("fan_chain-{chains}x{links}"), &fan, 1024, validate);
    println!(
        "modes    {:<22} {:>9} insns  full {:>9.1} ms  stats {:>9.1} ms  {:>4.2}x  \
         state {:>5.1} -> {:>4.1} B/insn",
        modes.workload,
        modes.instructions,
        modes.full_ms,
        modes.stats_ms,
        modes.speedup,
        modes.full_state_bytes_per_insn,
        modes.stats_state_bytes_per_insn,
    );

    // The validation guard row: the same stats-only chip-scale cell with
    // the static analysis pinned off (the pre-validation hot path) and
    // pinned on.
    let guard = measure_guard(&modes.workload.clone(), &fan, 1024);
    println!(
        "guard    {:<22} {:>9} insns  val-off {:>6.1} ms  val-on {:>6.1} ms  {:>4.2}x",
        guard.workload,
        guard.instructions,
        guard.validate_off_ms,
        guard.validate_on_ms,
        guard.overhead,
    );

    // The threaded row: the same stats-only chip-scale cell, sequential
    // vs the cluster-sharded parallel engine, bit-identical by contract.
    let threaded = measure_threads(&modes.workload.clone(), &fan, 1024, threads, validate);
    println!(
        "threads  {:<22} {:>9} insns  1t {:>9.1} ms  {}t {:>9.1} ms  {:>4.2}x  fork {}",
        threaded.workload,
        threaded.instructions,
        threaded.sequential_ms,
        threaded.threads,
        threaded.threaded_ms,
        threaded.speedup,
        match (threaded.fallback, threaded.threads) {
            (Some(f), _) => f.to_string(),
            (None, 0 | 1) => "off (single worker)".into(),
            (None, _) => "certified".into(),
        },
    );

    // The probe guard row: the same stats-only chip-scale cell through
    // the explicit probed entry point, compiled-out and enabled.
    let probe = measure_probe(&modes.workload.clone(), &fan, 1024);
    println!(
        "probe    {:<22} {:>9} insns  noop {:>9.1} ms  counting {:>7.1} ms  {:>4.2}x  \
         {} events",
        probe.workload,
        probe.instructions,
        probe.noop_ms,
        probe.counting_ms,
        probe.counting_overhead,
        probe.events,
    );

    // A Perfetto-loadable Chrome trace of the headline cell: section
    // residency spans per core, fork flow arrows, stall markers and
    // sampled chip gauges, one microsecond per simulated cycle.
    if let Some(path) = &trace_out {
        let cell = grid.iter().find(|c| c.headline).expect("headline cell");
        let file = std::fs::File::create(path).expect("create the --trace-out file");
        let mut writer = ChromeTraceWriter::new(BufWriter::new(file));
        let traced = cell
            .sim
            .simulate_arena_probed(&cell.trace, &mut writer)
            .expect("simulates");
        assert_eq!(traced.outputs, cell.expected);
        let events = writer.events();
        writer.finish().expect("flush the Chrome trace");
        eprintln!(
            "wrote {events} trace events for {} [{}] to {path}",
            cell.workload, cell.config
        );
    }

    if let Some(path) = json_path {
        std::fs::write(
            &path,
            to_json(&rows, &pipeline, &modes, &guard, &threaded, &probe),
        )
        .expect("write BENCH_sim.json");
        eprintln!("wrote {} rows to {path}", rows.len() + 5);
    }

    // Hard gates. Any forced stall release means the stall/wake model
    // broke down and every recorded timing is suspect — fail the run (and
    // CI) outright, in quick mode too. The headline event-vs-reference
    // speedup must also hold its >= 5x acceptance bar.
    let mut failed = false;
    for row in &rows {
        if row.forced_stall_releases > 0 {
            eprintln!(
                "FAIL: {} [{}] reports {} forced stall release(s); \
                 the timing model is not trustworthy",
                row.workload, row.config, row.forced_stall_releases
            );
            failed = true;
        }
    }
    let headline = rows.iter().find(|r| r.headline).expect("headline cell");
    if headline.speedup < 5.0 {
        eprintln!(
            "FAIL: headline speedup {:.1}x is below the 5x acceptance bar \
             (machine noise? rerun on an idle machine)",
            headline.speedup
        );
        failed = true;
    }
    // The streaming pipeline must beat the retired two-pass front-end by
    // >=2x on the full-size chain_sum cell (quick-mode instances are too
    // small for a stable ratio, so the gate only arms in full mode).
    if !quick && pipeline.speedup < 2.0 {
        eprintln!(
            "FAIL: streaming pipeline speedup {:.1}x is below the 2x \
             acceptance bar on {}",
            pipeline.speedup, pipeline.workload
        );
        failed = true;
    }
    // The threaded cell must be >=3x faster than the sequential one on a
    // host with at least 8 CPUs (full mode only; smaller hosts and quick
    // instances cannot sustain the fork, but their bit-identity assertion
    // above still ran).
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    if !quick && host_cpus >= 8 && threaded.threads >= 8 && threaded.speedup < 3.0 {
        eprintln!(
            "FAIL: threaded speedup {:.2}x at {} workers is below the 3x \
             acceptance bar on {} ({} host CPUs)",
            threaded.speedup, threaded.threads, threaded.workload, host_cpus
        );
        failed = true;
    }
    // Stats-only must beat full mode by >=1.3x on the 10M-instruction
    // 1024-core cell (again full mode only: the quick instance fits in
    // cache, which is precisely the effect being measured).
    if !quick && modes.speedup < 1.3 {
        eprintln!(
            "FAIL: stats-only speedup {:.2}x is below the 1.3x acceptance bar \
             on {} at {} cores",
            modes.speedup, modes.workload, modes.cores
        );
        failed = true;
    }
    // Validation must be zero-cost when disabled: the guard's off cell is
    // the identical workload/mode as the stats cell above, so the two
    // times must agree within machine noise (+-15%). Disarmed in quick
    // mode (sub-100ms cells are all noise) and under --validate (the
    // stats cell then pays the analysis while the off cell never does).
    if !quick && !validate {
        let ratio = guard.validate_off_ms / modes.stats_ms;
        if !(0.85..=1.15).contains(&ratio) {
            eprintln!(
                "FAIL: validation-off stats cell at {:.1} ms deviates {:.0}% from \
                 the stats-only baseline {:.1} ms — the disabled validate path \
                 is not free",
                guard.validate_off_ms,
                (ratio - 1.0).abs() * 100.0,
                modes.stats_ms
            );
            failed = true;
        }
        // The telemetry layer must be zero-cost when compiled out: the
        // NoopProbe cell is the identical workload/mode as the stats
        // cell, with every hook monomorphized to nothing, so its time
        // must also sit in the same ±15% noise band.
        let probe_ratio = probe.noop_ms / modes.stats_ms;
        if !(0.85..=1.15).contains(&probe_ratio) {
            eprintln!(
                "FAIL: NoopProbe stats cell at {:.1} ms deviates {:.0}% from \
                 the stats-only baseline {:.1} ms — the disabled probe layer \
                 is not free",
                probe.noop_ms,
                (probe_ratio - 1.0).abs() * 100.0,
                modes.stats_ms
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
