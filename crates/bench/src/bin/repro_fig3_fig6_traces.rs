//! Regenerates Figures 3, 4 and 6 of the paper: the 59-instruction
//! sequential trace of `sum(t,5)` (call version), its call tree summarised
//! as section sizes, and the 45-instruction parallel trace split into five
//! sections.

use parsecs_core::SectionedTrace;
use parsecs_driver::{Runner, SequentialBackend};
use parsecs_workloads::sum;

fn main() {
    let data = [4u64, 2, 6, 4, 5];

    // Figure 3: the call-version trace, recorded by the sequential backend.
    let call = sum::call_program(&data);
    let report = Runner::new(&call)
        .fuel(100_000)
        .on(SequentialBackend)
        .run()
        .expect("halts");
    let trace = report.trace().expect("sequential backend records a trace");
    println!(
        "Figure 3: sequential trace of sum(t,5) — {} instructions",
        report.instructions - 5
    );
    println!("(59 in the paper; the count excludes the 5-instruction main/out/halt wrapper)");
    println!("{trace}");

    // Figures 4 and 6: the fork-version sections.
    let fork = sum::fork_program(&data);
    let sectioned = SectionedTrace::from_program(&fork, 100_000).expect("runs");
    println!(
        "Figure 4/6: parallel run of sum(t,5) — {} instructions in {} sections",
        sectioned.len() - 5,
        sectioned.sections().len()
    );
    println!("(45 instructions in 5 sections in the paper, longest section 16)");
    for span in sectioned.sections() {
        let creator = span
            .creator
            .map(|(s, seq)| format!("forked by {} at trace index {}", s, seq))
            .unwrap_or_else(|| "initial section".to_string());
        println!("  {}: {} instructions ({creator})", span.id, span.len());
        for record in sectioned.section_records(span.id) {
            println!("    {:>6}  {}", record.name(), record.mnemonic);
        }
    }
    println!(
        "result: {:?} (expected {:?})",
        sectioned.outputs(),
        sum::expected(&data)
    );
}
