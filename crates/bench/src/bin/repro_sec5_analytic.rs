//! Regenerates the §5 analytical evaluation of the paper: the closed-form
//! instruction count, fetch time and retirement time of `sum` over `5·2ⁿ`
//! elements, next to the many-core simulator's measured values.
//!
//! Pass the maximum doubling exponent on the command line
//! (`repro_sec5_analytic [max_n]`, default 6 → up to 320 elements).

use parsecs_core::analytic;
use parsecs_driver::{ManyCoreBackend, Runner};
use parsecs_workloads::sum;

fn main() {
    let max_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);

    println!("Section 5: analytic model vs many-core simulation for sum(5*2^n)");
    println!(
        "{:>3} {:>9} {:>12} {:>12} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "n",
        "elements",
        "insns(anl)",
        "insns(sim)",
        "fetch(anl)",
        "fetch(sim)",
        "ret(anl)",
        "ret(sim)",
        "fIPC(anl)",
        "fIPC(sim)"
    );
    for n in 0..=max_n {
        let model = analytic::sum_model(n);
        let data = sum::dataset(n, 7);
        let program = sum::fork_program(&data);
        let cores = (model.elements as usize).clamp(8, 256);
        let report = Runner::new(&program)
            .on(ManyCoreBackend::with_cores(cores))
            .run()
            .expect("simulates");
        assert_eq!(report.outputs, sum::expected(&data));
        println!(
            "{:>3} {:>9} {:>12} {:>12} {:>11} {:>11} {:>11} {:>11} {:>9.1} {:>9.1}",
            n,
            model.elements,
            model.instructions,
            report.instructions - 5,
            model.fetch_cycles,
            report.fetch_cycles(),
            model.retire_cycles,
            report.cycles,
            model.fetch_ipc(),
            report.fetch_ipc,
        );
    }
    println!();
    println!(
        "Paper's headline row (n = 8, 1280 elements): 15 090 instructions fetched in 126 cycles\n\
         (~120 IPC) and retired in 163 cycles (~92 IPC). Shapes to check: simulated instruction\n\
         counts equal the closed form exactly; fetch and retire cycles grow linearly in n\n\
         (i.e. logarithmically in the data size) while the instruction count doubles, so the\n\
         fetch/retire IPC roughly doubles per step, as in the paper."
    );
}
