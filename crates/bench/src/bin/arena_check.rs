//! Static analysis of every workload generator's trace arena — the
//! `parsecs-check` artefact.
//!
//! For each of the five `parsecs_workloads::scale` generators
//! (`histogram`, `tree_sum`, `chain_sum`, `synth_histogram`,
//! `fan_chain`) the binary builds the arena through the streaming
//! pipeline and runs the full static analysis:
//!
//! * the **invariant validator** must come back clean (zero violations);
//! * the **race certifier** must issue [`DrainSafety::Certified`] — the
//!   precondition the planned parallel drain fork (ROADMAP item 1)
//!   demands — and the table records the round count and the widest
//!   round (the fork's available parallelism);
//! * the **bounds analyzer**'s critical path is cross-checked against
//!   the event-driven engine at 64, 256 and 1024 cores: every
//!   configuration must retire in `total_cycles ≥ critical_path`.
//!
//! Any violation, missing certificate or undercut bound fails the run
//! (exit 1). CI runs `--quick` and uploads the table next to the bench
//! grids.
//!
//! Usage: `arena_check [--quick] [--threads N] [--json [PATH]]` —
//! `--quick` shrinks the instances for CI smoke runs (default JSON path
//! `BENCH_check.json`); `--threads` cross-checks the bound on the
//! cluster-sharded parallel engine instead (`0` = auto, default follows
//! `PARSECS_THREADS`) — the certificates this binary reports are exactly
//! what authorises that engine's drain fork.

use parsecs_core::{check_arena, DrainSafety, ManyCoreSim, SimConfig, TraceArena};
use parsecs_isa::Program;
use parsecs_workloads::scale;

/// Chip sizes the critical-path bound is cross-checked at.
const CORE_GRID: [usize; 3] = [64, 256, 1024];

struct Target {
    name: String,
    program: Program,
    fuel: u64,
}

struct Row {
    workload: String,
    instructions: usize,
    sections: usize,
    violations: usize,
    drain: DrainSafety,
    critical_path: u64,
    ilp_width: f64,
    /// Simulated retirement span per entry of [`CORE_GRID`].
    cycles: Vec<u64>,
    /// Every `cycles` entry is at or above `critical_path`.
    bound_holds: bool,
}

fn build_targets(quick: bool) -> Vec<Target> {
    let seed = 7;
    let (hist_keys, buckets) = if quick { (2_000, 64) } else { (50_000, 64) };
    let tree_n = if quick { 4_000 } else { 120_000 };
    let chain_n = if quick { 2_000 } else { 50_000 };
    let (synth_keys, synth_buckets) = if quick {
        (20_000, 256)
    } else {
        (300_000, 2048)
    };
    let (chains, links) = if quick { (64, 20) } else { (512, 120) };
    vec![
        Target {
            name: format!("histogram-{hist_keys}x{buckets}"),
            program: scale::histogram_program(hist_keys, buckets, seed),
            fuel: scale::histogram_fuel(hist_keys, buckets),
        },
        Target {
            name: format!("tree_sum-{tree_n}"),
            program: scale::tree_sum_program(tree_n, seed),
            fuel: scale::tree_sum_fuel(tree_n),
        },
        Target {
            name: format!("chain_sum-{chain_n}"),
            program: scale::chain_sum_program(chain_n, seed),
            fuel: scale::chain_sum_fuel(chain_n),
        },
        Target {
            name: format!("synth_histogram-{synth_keys}x{synth_buckets}"),
            program: scale::synth_histogram_program(synth_keys, synth_buckets, seed),
            fuel: scale::synth_histogram_fuel(synth_keys, synth_buckets),
        },
        Target {
            name: format!("fan_chain-{chains}x{links}"),
            program: scale::fan_chain_program(chains, links, seed),
            fuel: scale::fan_chain_fuel(chains, links),
        },
    ]
}

fn analyze(target: &Target, threads: usize) -> Row {
    let arena =
        TraceArena::from_program(&target.program, target.fuel).expect("workload halts within fuel");
    let report = check_arena(&arena);
    let (critical_path, ilp_width) = report
        .bounds
        .as_ref()
        .map(|b| (b.critical_path, b.ilp_width()))
        .unwrap_or((0, 0.0));
    let cycles: Vec<u64> = CORE_GRID
        .iter()
        .map(|&cores| {
            ManyCoreSim::new(
                SimConfig::with_cores(cores)
                    .stats_only()
                    .with_threads(threads),
            )
            .simulate_arena(&arena)
            .expect("simulates")
            .stats
            .total_cycles
        })
        .collect();
    let bound_holds = report.is_clean() && cycles.iter().all(|&c| c >= critical_path);
    Row {
        workload: target.name.clone(),
        instructions: report.instructions,
        sections: report.sections,
        violations: report.violations.len(),
        drain: report.drain.clone(),
        critical_path,
        ilp_width,
        cycles,
        bound_holds,
    }
}

fn drain_summary(drain: &DrainSafety) -> String {
    match drain {
        DrainSafety::Certified {
            rounds,
            max_round_width,
        } => format!("certified ({rounds} rounds, width {max_round_width})"),
        DrainSafety::Conflict {
            round,
            first,
            second,
        } => {
            format!("CONFLICT round {round}: records {first}/{second}")
        }
        DrainSafety::Unchecked => "unchecked".into(),
        _ => "unknown".into(),
    }
}

fn to_json(rows: &[Row]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = CORE_GRID
                .iter()
                .zip(&r.cycles)
                .map(|(cores, cycles)| format!("\"{cores}\": {cycles}"))
                .collect();
            format!(
                "  {{\"workload\": \"{}\", \"instructions\": {}, \"sections\": {}, \
                 \"violations\": {}, \"drain\": \"{}\", \"critical_path\": {}, \
                 \"ilp_width\": {:.2}, \"cycles\": {{{}}}, \"bound_holds\": {}}}",
                r.workload,
                r.instructions,
                r.sections,
                r.violations,
                drain_summary(&r.drain),
                r.critical_path,
                r.ilp_width,
                cells.join(", "),
                r.bound_holds,
            )
        })
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

fn main() {
    let mut quick = false;
    let mut threads = SimConfig::default().threads;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a count (0 = auto)");
            }
            "--json" => {
                json_path = Some(match args.peek() {
                    Some(path) if !path.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_check.json".into(),
                });
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (supported: --quick --threads N --json [PATH])"
                );
                std::process::exit(2);
            }
        }
    }

    let targets = build_targets(quick);
    eprintln!(
        "checking {} workload arenas ({} mode, bound cross-checked at {CORE_GRID:?} cores)...",
        targets.len(),
        if quick { "quick" } else { "full" }
    );
    let rows: Vec<Row> = targets.iter().map(|t| analyze(t, threads)).collect();

    println!(
        "{:<28} {:>9} {:>9} {:>5} {:<32} {:>10} {:>6} {:>11} {:>6}",
        "workload", "insns", "sections", "viol", "drain", "crit path", "ILP", "min cycles", "bound"
    );
    for r in &rows {
        println!(
            "{:<28} {:>9} {:>9} {:>5} {:<32} {:>10} {:>6.1} {:>11} {:>6}",
            r.workload,
            r.instructions,
            r.sections,
            r.violations,
            drain_summary(&r.drain),
            r.critical_path,
            r.ilp_width,
            r.cycles.iter().min().copied().unwrap_or(0),
            if r.bound_holds { "ok" } else { "FAIL" }
        );
    }

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&rows)).expect("write BENCH_check.json");
        eprintln!("wrote {} rows to {path}", rows.len());
    }

    let mut failed = false;
    for r in &rows {
        if r.violations > 0 {
            eprintln!(
                "FAIL: {} has {} invariant violation(s)",
                r.workload, r.violations
            );
            failed = true;
        }
        if !r.drain.is_certified() {
            eprintln!(
                "FAIL: {} was not certified for the parallel drain: {}",
                r.workload,
                drain_summary(&r.drain)
            );
            failed = true;
        }
        if !r.bound_holds {
            eprintln!(
                "FAIL: {} retires in {:?} cycles, below the static critical path {}",
                r.workload, r.cycles, r.critical_path
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
