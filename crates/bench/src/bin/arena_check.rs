//! Static analysis of every workload generator's trace arena — the
//! `parsecs-check` artefact.
//!
//! For each of the five `parsecs_workloads::scale` generators
//! (`histogram`, `tree_sum`, `chain_sum`, `synth_histogram`,
//! `fan_chain`) the binary builds the arena through the streaming
//! pipeline and runs the full static analysis:
//!
//! * the **invariant validator** must come back clean (zero violations);
//! * the **race certifier** must issue [`DrainSafety::Certified`] — the
//!   precondition the planned parallel drain fork (ROADMAP item 1)
//!   demands — and the table records the round count and the widest
//!   round (the fork's available parallelism);
//! * the **bounds analyzer**'s critical path is cross-checked against
//!   the event-driven engine at 64, 256 and 1024 cores: every
//!   configuration must retire in `total_cycles ≥ critical_path`;
//! * the **progress prover** runs on every (placement × chip) cell of
//!   that grid — the exact placement the engine used — and its verdict
//!   is cross-checked against the runtime deadlock detector: a cell the
//!   prover marked [`Progress::Proven`] must never deadlock (a
//!   `PotentialCycle` verdict on a quiet cell is fine — the hold-slot
//!   abstraction is deliberately conservative about section capacity);
//! * the **schedule analyzer** (`bound_schedule`) runs on every cell's
//!   exact placement and chip model: the certified NoC-weighted lower
//!   bound must satisfy `critical_path ≤ lb ≤ cycles`, and the
//!   uncertified list-schedule predictor is *scored* — the Spearman
//!   rank correlation between `predicted_cycles` and measured cycles,
//!   pooled over every completed grid cell, is recorded in the JSON
//!   summary row and gated `ρ ≥ 0.8` in full (non-`--quick`) runs.
//!
//! Any violation, missing certificate, undercut bound,
//! proven-but-deadlocked disagreement or (full runs) failed
//! rank-correlation gate fails the run (exit 1). CI runs `--quick` and
//! uploads the table next to the bench grids.
//!
//! Usage: `arena_check [--quick] [--progress] [--schedule] [--threads N]
//! [--json [PATH]]` — `--quick` shrinks the instances for CI smoke runs
//! (default JSON path `BENCH_check.json`); `--progress` adds the
//! prover's verdict, longest wait chain and witness length to the
//! printed table; `--schedule` adds the schedule-bound columns (lb per
//! grid entry, binding terms, worst tightness) — the JSON always
//! carries both; `--threads` cross-checks the bound on the
//! cluster-sharded parallel engine instead (`0` = auto, default follows
//! `PARSECS_THREADS`) — the certificates this binary reports are exactly
//! what authorises that engine's drain fork.

use parsecs_bench::{json, spearman};
use parsecs_core::{
    bound_schedule, check_arena, prove_progress, DrainSafety, ManyCoreSim, Progress,
    ScheduleBounds, SimConfig, SimError, TraceArena,
};
use parsecs_isa::Program;
use parsecs_workloads::scale;

/// Chip sizes the critical-path bound is cross-checked at.
const CORE_GRID: [usize; 3] = [64, 256, 1024];

/// Minimum Spearman rank correlation between the list-schedule
/// prediction and the measured cycles, gated in full (non-quick) runs.
const RHO_GATE: f64 = 0.8;

struct Target {
    name: String,
    program: Program,
    fuel: u64,
}

struct Row {
    workload: String,
    instructions: usize,
    sections: usize,
    violations: usize,
    drain: DrainSafety,
    critical_path: u64,
    ilp_width: f64,
    /// Simulated retirement span per entry of [`CORE_GRID`].
    cycles: Vec<u64>,
    /// Progress verdict per entry of [`CORE_GRID`], proven on the exact
    /// placement the simulated run used.
    progress: Vec<Progress>,
    /// Whether the runtime deadlock detector fired (or the run diverged
    /// outright) per entry of [`CORE_GRID`].
    deadlocked: Vec<bool>,
    /// Config-aware schedule bounds per entry of [`CORE_GRID`], on the
    /// exact placement and chip model of the simulated cell.
    schedule: Vec<ScheduleBounds>,
    /// Every `cycles` entry is at or above `critical_path`.
    bound_holds: bool,
    /// Every completed cell satisfies `critical_path ≤ lb ≤ cycles`.
    schedule_holds: bool,
    /// No grid cell was statically `Proven` yet deadlocked at runtime.
    proofs_consistent: bool,
}

fn build_targets(quick: bool) -> Vec<Target> {
    let seed = 7;
    let (hist_keys, buckets) = if quick { (2_000, 64) } else { (50_000, 64) };
    let tree_n = if quick { 4_000 } else { 120_000 };
    let chain_n = if quick { 2_000 } else { 50_000 };
    let (synth_keys, synth_buckets) = if quick {
        (20_000, 256)
    } else {
        (300_000, 2048)
    };
    let (chains, links) = if quick { (64, 20) } else { (512, 120) };
    vec![
        Target {
            name: format!("histogram-{hist_keys}x{buckets}"),
            program: scale::histogram_program(hist_keys, buckets, seed),
            fuel: scale::histogram_fuel(hist_keys, buckets),
        },
        Target {
            name: format!("tree_sum-{tree_n}"),
            program: scale::tree_sum_program(tree_n, seed),
            fuel: scale::tree_sum_fuel(tree_n),
        },
        Target {
            name: format!("chain_sum-{chain_n}"),
            program: scale::chain_sum_program(chain_n, seed),
            fuel: scale::chain_sum_fuel(chain_n),
        },
        Target {
            name: format!("synth_histogram-{synth_keys}x{synth_buckets}"),
            program: scale::synth_histogram_program(synth_keys, synth_buckets, seed),
            fuel: scale::synth_histogram_fuel(synth_keys, synth_buckets),
        },
        Target {
            name: format!("fan_chain-{chains}x{links}"),
            program: scale::fan_chain_program(chains, links, seed),
            fuel: scale::fan_chain_fuel(chains, links),
        },
    ]
}

fn analyze(target: &Target, threads: usize) -> Row {
    let arena =
        TraceArena::from_program(&target.program, target.fuel).expect("workload halts within fuel");
    let report = check_arena(&arena);
    let (critical_path, ilp_width) = report
        .bounds
        .as_ref()
        .map(|b| (b.critical_path, b.ilp_width()))
        .unwrap_or((0, 0.0));
    let mut cycles = Vec::with_capacity(CORE_GRID.len());
    let mut progress = Vec::with_capacity(CORE_GRID.len());
    let mut deadlocked = Vec::with_capacity(CORE_GRID.len());
    let mut schedule = Vec::with_capacity(CORE_GRID.len());
    for &cores in &CORE_GRID {
        let config = SimConfig::with_cores(cores)
            .stats_only()
            .with_threads(threads);
        // The prover judges the exact placement the run used; when the
        // run diverges (a hard deadlock), recompute the same placement
        // from the policy so the cell still gets a verdict.
        let (cell_cycles, cell_deadlocked, hosts) =
            match ManyCoreSim::new(config.clone()).simulate_arena(&arena) {
                Ok(result) => (
                    result.stats.total_cycles,
                    result.stats.forced_stall_releases > 0,
                    result.core_of.iter().map(|c| c.0).collect::<Vec<_>>(),
                ),
                Err(SimError::Diverged { .. }) => (
                    0,
                    true,
                    config
                        .placement
                        .assign(arena.sections(), &config.chip_view())
                        .iter()
                        .map(|c| c.0)
                        .collect(),
                ),
                Err(e) => panic!("{}: {cores}-core run failed: {e}", target.name),
            };
        cycles.push(cell_cycles);
        deadlocked.push(cell_deadlocked);
        progress.push(prove_progress(
            &arena,
            &hosts,
            cores,
            config.max_sections_per_core,
        ));
        schedule.push(bound_schedule(&arena, &hosts, &config.chip_model()));
    }
    let bound_holds = report.is_clean() && cycles.iter().all(|&c| c >= critical_path);
    // The sandwich: the weighted bound dominates the config-independent
    // one and never exceeds the measured span (cells that diverged
    // report 0 cycles and already fail `bound_holds`, so skip them).
    let schedule_holds = report.is_clean()
        && cycles
            .iter()
            .zip(&schedule)
            .all(|(&c, s)| s.lb >= critical_path && (c == 0 || c >= s.lb));
    let proofs_consistent = progress
        .iter()
        .zip(&deadlocked)
        .all(|(p, &dead)| !(dead && p.is_proven()));
    Row {
        workload: target.name.clone(),
        instructions: report.instructions,
        sections: report.sections,
        violations: report.violations.len(),
        drain: report.drain.clone(),
        critical_path,
        ilp_width,
        cycles,
        progress,
        deadlocked,
        schedule,
        bound_holds,
        schedule_holds,
        proofs_consistent,
    }
}

/// The cycles/lb ratio of the row's loosest grid cell (the headline
/// tightness number), over completed cells only.
fn worst_tightness(row: &Row) -> f64 {
    row.cycles
        .iter()
        .zip(&row.schedule)
        .filter(|(&c, s)| c > 0 && s.lb > 0)
        .map(|(&c, s)| s.tightness(c))
        .fold(f64::NAN, f64::max)
}

/// Compact per-grid-entry rendering, e.g. `118/96/96` for the lbs or
/// `p/w/p` for the binding terms.
fn grid_summary(parts: impl Iterator<Item = String>) -> String {
    parts.collect::<Vec<_>>().join("/")
}

/// Witness length of a `PotentialCycle` verdict (0 when proven).
fn witness_len(progress: &Progress) -> usize {
    match progress {
        Progress::PotentialCycle { witness } => witness.len(),
        _ => 0,
    }
}

/// One-word verdict summary for a grid cell.
fn progress_summary(progress: &Progress) -> String {
    match progress.longest_wait_chain() {
        Some(chain) => format!("proven(chain {chain})"),
        None => format!("cycle({} edges)", witness_len(progress)),
    }
}

/// Row-level summary across the grid: `proven` when every cell is, or
/// the core counts whose placements admit a wait cycle.
fn progress_row_summary(row: &Row) -> String {
    if row.progress.iter().all(Progress::is_proven) {
        "proven".into()
    } else {
        let cores: Vec<String> = CORE_GRID
            .iter()
            .zip(&row.progress)
            .filter(|(_, p)| !p.is_proven())
            .map(|(cores, _)| cores.to_string())
            .collect();
        format!("cycle@{}", cores.join(","))
    }
}

fn drain_summary(drain: &DrainSafety) -> String {
    match drain {
        DrainSafety::Certified {
            rounds,
            max_round_width,
        } => format!("certified ({rounds} rounds, width {max_round_width})"),
        DrainSafety::Conflict {
            round,
            first,
            second,
        } => {
            format!("CONFLICT round {round}: records {first}/{second}")
        }
        DrainSafety::Unchecked => "unchecked".into(),
        _ => "unknown".into(),
    }
}

/// The trailing summary row: the pooled predictor score over every
/// completed grid cell, and whether the `ρ ≥ 0.8` gate applies (full
/// runs) and passes.
fn summary_json(rho: Option<f64>, pairs: usize, gated: bool) -> String {
    json::Obj::new()
        .field("summary", true)
        .field("predictor_pairs", pairs)
        .fixed("spearman_rho", rho.unwrap_or(f64::NAN), 4)
        .fixed("rho_gate", RHO_GATE, 2)
        .field("rho_gate_armed", gated)
        .field(
            "rho_gate_holds",
            rho.is_some_and(|rho| rho >= RHO_GATE) || !gated,
        )
        .build()
}

fn to_json(rows: &[Row], summary: String) -> String {
    let row_objs = rows.iter().map(|r| {
        let cycles = CORE_GRID
            .iter()
            .zip(&r.cycles)
            .fold(json::Obj::new(), |obj, (cores, cycles)| {
                obj.field(&cores.to_string(), cycles)
            })
            .build();
        let proofs = CORE_GRID
            .iter()
            .zip(r.progress.iter().zip(&r.deadlocked))
            .fold(json::Obj::new(), |obj, (cores, (progress, deadlocked))| {
                let proof = json::Obj::new()
                    .str(
                        "verdict",
                        if progress.is_proven() {
                            "proven"
                        } else {
                            "potential-cycle"
                        },
                    )
                    .field("wait_chain", progress.longest_wait_chain().unwrap_or(0))
                    .field("witness", witness_len(progress))
                    .field("deadlocked", deadlocked)
                    .build();
                obj.field(&cores.to_string(), proof)
            })
            .build();
        let schedule = CORE_GRID
            .iter()
            .zip(r.schedule.iter().zip(&r.cycles))
            .fold(json::Obj::new(), |obj, (cores, (s, &measured))| {
                let cell = json::Obj::new()
                    .field("lb_cycles", s.lb)
                    .field("path_bound", s.path_bound)
                    .field("work_bound", s.work_bound)
                    .field("ejection_bound", s.ejection_bound)
                    .str("binding", &s.binding.to_string())
                    .field("predicted_cycles", s.predicted_cycles)
                    .fixed(
                        "lb_tightness",
                        if measured > 0 {
                            s.tightness(measured)
                        } else {
                            f64::NAN
                        },
                        4,
                    )
                    .build();
                obj.field(&cores.to_string(), cell)
            })
            .build();
        json::Obj::new()
            .str("workload", &r.workload)
            .field("instructions", r.instructions)
            .field("sections", r.sections)
            .field("violations", r.violations)
            .str("drain", &drain_summary(&r.drain))
            .field("critical_path", r.critical_path)
            .fixed("ilp_width", r.ilp_width, 2)
            .field("cycles", cycles)
            .field("progress", proofs)
            .field("schedule", schedule)
            .field("bound_holds", r.bound_holds)
            .field("schedule_holds", r.schedule_holds)
            .field("proofs_consistent", r.proofs_consistent)
            .build()
    });
    json::array(row_objs.chain(std::iter::once(summary)))
}

fn main() {
    let mut quick = false;
    let mut show_progress = false;
    let mut show_schedule = false;
    let mut threads = SimConfig::default().threads;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--progress" => show_progress = true,
            "--schedule" => show_schedule = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a count (0 = auto)");
            }
            "--json" => {
                json_path = Some(match args.peek() {
                    Some(path) if !path.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_check.json".into(),
                });
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' \
                     (supported: --quick --progress --schedule --threads N --json [PATH])"
                );
                std::process::exit(2);
            }
        }
    }

    let targets = build_targets(quick);
    eprintln!(
        "checking {} workload arenas ({} mode, bound cross-checked at {CORE_GRID:?} cores)...",
        targets.len(),
        if quick { "quick" } else { "full" }
    );
    let rows: Vec<Row> = targets.iter().map(|t| analyze(t, threads)).collect();

    print!(
        "{:<28} {:>9} {:>9} {:>5} {:<32} {:>10} {:>6} {:>11} {:>6}",
        "workload", "insns", "sections", "viol", "drain", "crit path", "ILP", "min cycles", "bound"
    );
    if show_progress {
        print!(" {:<18} {:>10} {:>8}", "progress", "wait chain", "witness");
    }
    if show_schedule {
        print!(
            " {:>24} {:>8} {:>9} {:>7}",
            "lb 64/256/1024", "binding", "predicted", "tight"
        );
    }
    println!();
    for r in &rows {
        print!(
            "{:<28} {:>9} {:>9} {:>5} {:<32} {:>10} {:>6.1} {:>11} {:>6}",
            r.workload,
            r.instructions,
            r.sections,
            r.violations,
            drain_summary(&r.drain),
            r.critical_path,
            r.ilp_width,
            r.cycles.iter().min().copied().unwrap_or(0),
            if r.bound_holds { "ok" } else { "FAIL" }
        );
        if show_progress {
            let chain = r
                .progress
                .iter()
                .filter_map(Progress::longest_wait_chain)
                .max();
            let witness = r.progress.iter().map(witness_len).max().unwrap_or(0);
            print!(
                " {:<18} {:>10} {:>8}",
                progress_row_summary(r),
                chain.map_or_else(|| "-".into(), |c| c.to_string()),
                witness,
            );
        }
        if show_schedule {
            print!(
                " {:>24} {:>8} {:>9} {:>7.2}",
                grid_summary(r.schedule.iter().map(|s| s.lb.to_string())),
                grid_summary(
                    r.schedule
                        .iter()
                        .map(|s| s.binding.to_string()[..1].to_string())
                ),
                grid_summary(r.schedule.iter().map(|s| s.predicted_cycles.to_string())),
                worst_tightness(r),
            );
        }
        println!();
    }

    // The predictor score: measured vs predicted cycles pooled over
    // every completed grid cell, gated in full mode only (the quick
    // instances are too small for a stable rank ordering).
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for r in &rows {
        for (&c, s) in r.cycles.iter().zip(&r.schedule) {
            if c > 0 {
                measured.push(c as f64);
                predicted.push(s.predicted_cycles as f64);
            }
        }
    }
    let rho = spearman(&measured, &predicted);
    let rho_gated = !quick;
    eprintln!(
        "predictor rank correlation over {} cells: rho = {} (gate >= {RHO_GATE}: {})",
        measured.len(),
        rho.map_or_else(|| "undefined".into(), |r| format!("{r:.4}")),
        if rho_gated {
            "armed"
        } else {
            "quick mode, off"
        }
    );

    if let Some(path) = json_path {
        let summary = summary_json(rho, measured.len(), rho_gated);
        std::fs::write(&path, to_json(&rows, summary)).expect("write BENCH_check.json");
        eprintln!("wrote {} rows to {path}", rows.len() + 1);
    }

    let mut failed = false;
    for r in &rows {
        if r.violations > 0 {
            eprintln!(
                "FAIL: {} has {} invariant violation(s)",
                r.workload, r.violations
            );
            failed = true;
        }
        if !r.drain.is_certified() {
            eprintln!(
                "FAIL: {} was not certified for the parallel drain: {}",
                r.workload,
                drain_summary(&r.drain)
            );
            failed = true;
        }
        if !r.bound_holds {
            eprintln!(
                "FAIL: {} retires in {:?} cycles, below the static critical path {}",
                r.workload, r.cycles, r.critical_path
            );
            failed = true;
        }
        for (cores, (progress, &deadlocked)) in
            CORE_GRID.iter().zip(r.progress.iter().zip(&r.deadlocked))
        {
            if deadlocked && progress.is_proven() {
                eprintln!(
                    "FAIL: {} at {cores} cores deadlocked on a placement the prover \
                     certified ({})",
                    r.workload,
                    progress_summary(progress)
                );
                failed = true;
            }
        }
        if !r.schedule_holds {
            eprintln!(
                "FAIL: {} violates the schedule-bound sandwich \
                 (critical path <= lb <= cycles) on some grid cell: \
                 lb {:?} vs cycles {:?}",
                r.workload,
                r.schedule.iter().map(|s| s.lb).collect::<Vec<_>>(),
                r.cycles,
            );
            failed = true;
        }
    }
    if rho_gated && !rho.is_some_and(|r| r >= RHO_GATE) {
        eprintln!(
            "FAIL: predictor rank correlation {} falls below the {RHO_GATE} gate",
            rho.map_or_else(|| "undefined".into(), |r| format!("{r:.4}")),
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
