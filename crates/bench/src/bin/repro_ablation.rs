//! Ablations over the design choices called out in DESIGN.md: number of
//! cores, NoC hop latency, section placement policy, fetch-stall behaviour
//! and the per-section renaming walk penalty, measured on the fork-based
//! sum and on the fork-compiled quicksort.

use parsecs_cc::Backend;
use parsecs_core::{ManyCoreSim, Placement, SimConfig};
use parsecs_isa::Program;
use parsecs_noc::NocConfig;
use parsecs_workloads::{pbbs::Benchmark, sum};

fn row(label: &str, program: &Program, config: SimConfig) {
    let result = ManyCoreSim::new(config).run(program).expect("simulates");
    println!(
        "{:<44} {:>8} {:>8} {:>9} {:>10.2} {:>10.2}",
        label,
        result.stats.sections,
        result.stats.fetch_cycles,
        result.stats.total_cycles,
        result.stats.fetch_ipc,
        result.stats.retire_ipc,
    );
}

fn sweep(name: &str, program: &Program) {
    println!("== {name} ==");
    println!(
        "{:<44} {:>8} {:>8} {:>9} {:>10} {:>10}",
        "configuration", "sections", "fetch", "retire", "fetchIPC", "retireIPC"
    );
    for cores in [1, 2, 4, 16, 64] {
        row(&format!("{cores} cores (crossbar, default NoC)"), program, SimConfig::with_cores(cores));
    }
    let mut slow = SimConfig::with_cores(16);
    slow.noc = NocConfig { base_latency: 2, per_hop_latency: 4, link_bandwidth: None };
    row("16 cores, slow NoC (2 + 4/hop)", program, slow);
    let mut walk = SimConfig::with_cores(16);
    walk.per_section_hop = 4;
    row("16 cores, 4-cycle per-section renaming walk", program, walk);
    let mut least = SimConfig::with_cores(16);
    least.placement = Placement::LeastLoaded;
    row("16 cores, least-loaded placement", program, least);
    let mut no_stall = SimConfig::with_cores(16);
    no_stall.fetch_stalls_on_unresolved_control = false;
    row("16 cores, fetch never stalls on control", program, no_stall);
    println!();
}

fn main() {
    let data = sum::dataset(4, 7); // 80 elements
    sweep("fork-based sum, 80 elements", &sum::fork_program(&data));

    let quicksort = Benchmark::ComparisonSort
        .program(64, 3, Backend::Forks)
        .expect("compiles");
    sweep("fork-compiled quicksort, 64 keys", &quicksort);
}
