//! Ablations over the design choices called out in DESIGN.md — number of
//! cores, NoC hop latency, section placement policy, fetch-stall behaviour
//! and the per-section renaming walk penalty — measured on the fork-based
//! sum and on the fork-compiled quicksort.
//!
//! All configurations are expressed as
//! [`ExecutionBackend`](parsecs_driver::ExecutionBackend)s and executed
//! concurrently by one [`Sweep`]. Pass `--json [PATH]` to also emit the
//! sweep results as JSON (default path `BENCH_sweep.json`), which is the
//! artefact the perf trajectory records. Validated many-core points also
//! carry the schedule analyzer's columns — `lb_cycles` (certified lower
//! bound), `predicted_cycles` (list-schedule estimate) and
//! `lb_tightness` (measured / lb) — so the sweep doubles as a
//! zero-simulation DSE oracle trace: every ablation cell records how far
//! the static bound was from the measurement it would have predicted.

use std::fs::File;
use std::io::BufWriter;

use parsecs_cc::Backend;
use parsecs_core::{LoadAware, Placement, SimConfig};
use parsecs_driver::{ManyCoreBackend, Sweep, SweepPoint};
use parsecs_noc::NocConfig;
use parsecs_workloads::{pbbs::Benchmark, sum};

/// The 7-point chip-size axis (1 → 64 cores).
const CORE_AXIS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn build_sweep() -> Sweep {
    let data = sum::dataset(4, 7); // 80 elements
    let quicksort = Benchmark::ComparisonSort
        .program(64, 3, Backend::Forks)
        .expect("compiles");

    let mut sweep = Sweep::new()
        .fuel(10_000_000)
        .program("fork-sum-80", sum::fork_program(&data))
        .program("fork-quicksort-64", quicksort)
        .manycore_cores(&CORE_AXIS);

    // Off-axis ablations, all at 16 cores.
    let mut slow = SimConfig::with_cores(16);
    slow.noc = NocConfig {
        base_latency: 2,
        per_hop_latency: 4,
        link_bandwidth: None,
    };
    sweep = sweep.backend(ManyCoreBackend::new(slow));
    let mut walk = SimConfig::with_cores(16);
    walk.per_section_hop = 4;
    sweep = sweep.backend(ManyCoreBackend::new(walk));
    sweep = sweep.backend(ManyCoreBackend::new(
        SimConfig::with_cores(16).with_placement(Placement::LeastLoaded),
    ));
    sweep = sweep.backend(ManyCoreBackend::new(
        SimConfig::with_cores(16).with_placement(LoadAware),
    ));
    let mut no_stall = SimConfig::with_cores(16);
    no_stall.fetch_stalls_on_unresolved_control = false;
    sweep.backend(ManyCoreBackend::new(no_stall))
}

fn print_row(point: &SweepPoint, current_program: &mut String) {
    if &point.program != current_program {
        *current_program = point.program.clone();
        println!("== {current_program} ==");
        println!(
            "{:<36} {:>8} {:>8} {:>9} {:>10} {:>10}",
            "backend", "sections", "fetch", "retire", "fetchIPC", "retireIPC"
        );
    }
    match &point.outcome {
        Ok(report) => {
            let sections = report
                .sim()
                .map(|s| s.stats.sections.to_string())
                .unwrap_or_default();
            println!(
                "{:<36} {:>8} {:>8} {:>9} {:>10.2} {:>10.2}",
                point.backend,
                sections,
                report.fetch_cycles(),
                report.cycles,
                report.fetch_ipc,
                report.retire_ipc,
            );
        }
        Err(e) => println!("{:<36} failed: {e}", point.backend),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let json_path = match args.next().as_deref() {
        Some("--json") => Some(args.next().unwrap_or_else(|| "BENCH_sweep.json".into())),
        Some(other) => {
            eprintln!("unknown argument '{other}' (supported: --json [PATH])");
            std::process::exit(2);
        }
        None => None,
    };

    let sweep = build_sweep();
    eprintln!("running {} sweep cells on a bounded pool...", sweep.len());

    // Stream every point as it completes (grid order): the table row goes
    // to stdout and the JSON row to the artefact immediately, so no
    // report — each one carries a full per-instruction stage table — is
    // retained once printed.
    let mut current_program = String::new();
    let mut failed = 0usize;
    let mut total = 0usize;
    let mut on_point = |point: &SweepPoint| {
        print_row(point, &mut current_program);
        if point.outcome.is_err() {
            failed += 1;
        }
        total += 1;
    };
    match &json_path {
        Some(path) => {
            let file = File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
            sweep
                .run_json_with(BufWriter::new(file), &mut on_point)
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
        }
        None => {
            sweep.run_with(|point| on_point(&point));
        }
    }
    println!();

    if let Some(path) = &json_path {
        eprintln!("wrote {total} sweep points to {path}");
    }

    // A broken cell must fail the run (and CI), not just print a row.
    if failed > 0 {
        eprintln!("{failed} of {total} sweep cells failed");
        std::process::exit(1);
    }
}
