//! Ablations over the design choices called out in DESIGN.md — number of
//! cores, NoC hop latency, section placement policy, fetch-stall behaviour
//! and the per-section renaming walk penalty — measured on the fork-based
//! sum and on the fork-compiled quicksort.
//!
//! All configurations are expressed as [`ExecutionBackend`]s and executed
//! concurrently by one [`Sweep`]. Pass `--json [PATH]` to also emit the
//! sweep results as JSON (default path `BENCH_sweep.json`), which is the
//! artefact the perf trajectory records.

use parsecs_cc::Backend;
use parsecs_core::{LoadAware, Placement, SimConfig};
use parsecs_driver::{sweep_to_json, ManyCoreBackend, Sweep, SweepPoint};
use parsecs_noc::NocConfig;
use parsecs_workloads::{pbbs::Benchmark, sum};

/// The 7-point chip-size axis (1 → 64 cores).
const CORE_AXIS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn build_sweep() -> Sweep {
    let data = sum::dataset(4, 7); // 80 elements
    let quicksort = Benchmark::ComparisonSort
        .program(64, 3, Backend::Forks)
        .expect("compiles");

    let mut sweep = Sweep::new()
        .fuel(10_000_000)
        .program("fork-sum-80", sum::fork_program(&data))
        .program("fork-quicksort-64", quicksort)
        .manycore_cores(&CORE_AXIS);

    // Off-axis ablations, all at 16 cores.
    let mut slow = SimConfig::with_cores(16);
    slow.noc = NocConfig {
        base_latency: 2,
        per_hop_latency: 4,
        link_bandwidth: None,
    };
    sweep = sweep.backend(ManyCoreBackend::new(slow));
    let mut walk = SimConfig::with_cores(16);
    walk.per_section_hop = 4;
    sweep = sweep.backend(ManyCoreBackend::new(walk));
    sweep = sweep.backend(ManyCoreBackend::new(
        SimConfig::with_cores(16).with_placement(Placement::LeastLoaded),
    ));
    sweep = sweep.backend(ManyCoreBackend::new(
        SimConfig::with_cores(16).with_placement(LoadAware),
    ));
    let mut no_stall = SimConfig::with_cores(16);
    no_stall.fetch_stalls_on_unresolved_control = false;
    sweep.backend(ManyCoreBackend::new(no_stall))
}

fn print_table(points: &[SweepPoint]) {
    let mut current_program = String::new();
    for point in points {
        if point.program != current_program {
            current_program = point.program.clone();
            println!("== {current_program} ==");
            println!(
                "{:<36} {:>8} {:>8} {:>9} {:>10} {:>10}",
                "backend", "sections", "fetch", "retire", "fetchIPC", "retireIPC"
            );
        }
        match &point.outcome {
            Ok(report) => {
                let sections = report
                    .sim()
                    .map(|s| s.stats.sections.to_string())
                    .unwrap_or_default();
                println!(
                    "{:<36} {:>8} {:>8} {:>9} {:>10.2} {:>10.2}",
                    point.backend,
                    sections,
                    report.fetch_cycles(),
                    report.cycles,
                    report.fetch_ipc,
                    report.retire_ipc,
                );
            }
            Err(e) => println!("{:<36} failed: {e}", point.backend),
        }
    }
    println!();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let json_path = match args.next().as_deref() {
        Some("--json") => Some(args.next().unwrap_or_else(|| "BENCH_sweep.json".into())),
        Some(other) => {
            eprintln!("unknown argument '{other}' (supported: --json [PATH])");
            std::process::exit(2);
        }
        None => None,
    };

    let sweep = build_sweep();
    eprintln!("running {} sweep cells concurrently...", sweep.len());
    let points = sweep.run();
    print_table(&points);

    if let Some(path) = json_path {
        std::fs::write(&path, sweep_to_json(&points)).expect("write sweep JSON");
        eprintln!("wrote {} sweep points to {path}", points.len());
    }

    // A broken cell must fail the run (and CI), not just print a row.
    let failed = points.iter().filter(|p| p.outcome.is_err()).count();
    if failed > 0 {
        eprintln!("{failed} of {} sweep cells failed", points.len());
        std::process::exit(1);
    }
}
