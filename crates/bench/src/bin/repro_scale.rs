//! The 256–1024-core scale table — the first numbers this repository has
//! beyond 64 cores.
//!
//! Every cell runs one ≥10M-dynamic-instruction workload (built once per
//! workload through the streaming trace pipeline,
//! [`TraceArena::from_program`]) on the event-driven engine at 256, 512
//! and 1024 cores, checks the functional outputs against the workload's
//! Rust oracle, and records:
//!
//! * the **pipeline** numbers — pre-execution + sectioning wall clock,
//!   sectioning throughput (instructions/s) and the arena footprint in
//!   bytes per instruction (gated at ≤ 120 B/insn; the old
//!   record-per-instruction representation cost ~250–350);
//! * the **simulation** numbers — wall clock, simulated cycles, fetch
//!   IPC and the peak per-core section count.
//!
//! The headline cell is `fan_chain` (1024 independent serial accumulator
//! chains) at **1024 cores and ≥10M instructions**: it must complete with
//! **zero forced stall releases** — the deadlock detector staying silent
//! at full chip width is the scale acceptance bar. Any firing is reported
//! through [`DriverError::Deadlock`] and fails the run (exit 1), exactly
//! as `ManyCoreBackend` would refuse the report; the footprint gate fails
//! the run the same way.
//!
//! Usage: `repro_scale [--quick] [--json [PATH]]` — `--quick` shrinks the
//! grid to one 256-core, ~2M-instruction cell for CI smoke runs (default
//! JSON path `BENCH_scale.json`).

use std::time::Instant;

use parsecs_core::{ManyCoreSim, SimConfig, TraceArena};
use parsecs_driver::DriverError;
use parsecs_isa::Program;
use parsecs_workloads::scale;

/// Arena footprint acceptance bar, in bytes per dynamic instruction.
const ARENA_BYTES_PER_INSN_BAR: f64 = 120.0;

struct Workload {
    name: String,
    program: Program,
    fuel: u64,
    expected: Vec<u64>,
    /// Core counts to simulate this workload at.
    cores: Vec<usize>,
    /// Whether the largest-cores cell is the acceptance headline.
    headline: bool,
}

struct Row {
    workload: String,
    cores: usize,
    instructions: u64,
    sections: usize,
    pre_ms: f64,
    sectioning_insns_per_sec: f64,
    arena_bytes: u64,
    arena_bytes_per_insn: f64,
    sim_ms: f64,
    total_cycles: u64,
    fetch_ipc: f64,
    peak_sections_per_core: usize,
    forced_stall_releases: u64,
    headline: bool,
}

fn build_grid(quick: bool) -> Vec<Workload> {
    let seed = 7;
    if quick {
        // One ~2M-instruction cell at 256 cores for CI.
        let (keys, buckets) = (140_000, 1024);
        return vec![Workload {
            name: format!("synth_histogram-{keys}x{buckets}"),
            program: scale::synth_histogram_program(keys, buckets, seed),
            fuel: scale::synth_histogram_fuel(keys, buckets),
            expected: scale::synth_histogram_expected(keys, buckets, seed),
            cores: vec![256],
            headline: false,
        }];
    }
    let (keys, buckets) = (700_000, 4096);
    let (chains, links) = (1024, 700);
    vec![
        Workload {
            name: format!("synth_histogram-{keys}x{buckets}"),
            program: scale::synth_histogram_program(keys, buckets, seed),
            fuel: scale::synth_histogram_fuel(keys, buckets),
            expected: scale::synth_histogram_expected(keys, buckets, seed),
            cores: vec![256, 512, 1024],
            headline: false,
        },
        Workload {
            name: format!("fan_chain-{chains}x{links}"),
            program: scale::fan_chain_program(chains, links, seed),
            fuel: scale::fan_chain_fuel(chains, links),
            expected: scale::fan_chain_expected(chains, links, seed),
            cores: vec![256, 1024],
            headline: true,
        },
    ]
}

fn measure(workload: &Workload) -> Vec<Row> {
    // The pipeline runs once per workload; every chip size simulates the
    // same arena.
    let start = Instant::now();
    let arena = TraceArena::from_program(&workload.program, workload.fuel).expect("workload halts");
    let pre_ms = start.elapsed().as_secs_f64() * 1e3;
    let n = arena.len();

    workload
        .cores
        .iter()
        .map(|&cores| {
            let sim = ManyCoreSim::new(SimConfig::with_cores(cores));
            let start = Instant::now();
            let result = sim.simulate_arena(&arena).expect("simulates");
            let sim_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                result.outputs, workload.expected,
                "{} @{cores}c: outputs disagree with the oracle",
                workload.name
            );
            Row {
                workload: workload.name.clone(),
                cores,
                instructions: result.stats.instructions,
                sections: result.stats.sections,
                pre_ms,
                sectioning_insns_per_sec: n as f64 / (pre_ms / 1e3),
                arena_bytes: result.stats.trace_arena_bytes,
                arena_bytes_per_insn: result.stats.trace_bytes_per_instruction(),
                sim_ms,
                total_cycles: result.stats.total_cycles,
                fetch_ipc: result.stats.fetch_ipc,
                peak_sections_per_core: result.stats.peak_sections_per_core,
                forced_stall_releases: result.stats.forced_stall_releases,
                headline: workload.headline && cores == *workload.cores.iter().max().unwrap(),
            }
        })
        .collect()
}

fn to_json(rows: &[Row]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"cores\": {}, \"instructions\": {}, \
                 \"sections\": {}, \"pre_ms\": {:.3}, \"sectioning_insns_per_sec\": {:.0}, \
                 \"arena_bytes\": {}, \"arena_bytes_per_insn\": {:.1}, \"sim_ms\": {:.3}, \
                 \"total_cycles\": {}, \"fetch_ipc\": {:.4}, \"peak_sections_per_core\": {}, \
                 \"forced_stall_releases\": {}, \"headline\": {}}}",
                r.workload,
                r.cores,
                r.instructions,
                r.sections,
                r.pre_ms,
                r.sectioning_insns_per_sec,
                r.arena_bytes,
                r.arena_bytes_per_insn,
                r.sim_ms,
                r.total_cycles,
                r.fetch_ipc,
                r.peak_sections_per_core,
                r.forced_stall_releases,
                r.headline,
            )
        })
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<26} {:>6} {:>10} {:>8} {:>8} {:>9} {:>7} {:>9} {:>11} {:>9} {:>7}",
        "workload",
        "cores",
        "insns",
        "sections",
        "pre ms",
        "Minsns/s",
        "B/insn",
        "sim ms",
        "cycles",
        "fetchIPC",
        "forced"
    );
    for r in rows {
        println!(
            "{:<26} {:>6} {:>10} {:>8} {:>8.0} {:>9.1} {:>7.1} {:>9.0} {:>11} {:>9.1} {:>7}{}",
            r.workload,
            r.cores,
            r.instructions,
            r.sections,
            r.pre_ms,
            r.sectioning_insns_per_sec / 1e6,
            r.arena_bytes_per_insn,
            r.sim_ms,
            r.total_cycles,
            r.fetch_ipc,
            r.forced_stall_releases,
            if r.headline { "  <- headline" } else { "" }
        );
    }
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => {
                json_path = Some(match args.peek() {
                    Some(path) if !path.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_scale.json".into(),
                });
            }
            other => {
                eprintln!("unknown argument '{other}' (supported: --quick --json [PATH])");
                std::process::exit(2);
            }
        }
    }

    let grid = build_grid(quick);
    eprintln!(
        "scaling {} workload(s) across 256-1024 cores ({} mode)...",
        grid.len(),
        if quick { "quick" } else { "full" }
    );
    let rows: Vec<Row> = grid.iter().flat_map(measure).collect();
    print_table(&rows);

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&rows)).expect("write BENCH_scale.json");
        eprintln!("wrote {} rows to {path}", rows.len());
    }

    // Hard gates.
    let mut failed = false;
    for row in &rows {
        if row.forced_stall_releases > 0 {
            // The same refusal ManyCoreBackend encodes: a forced release
            // means the stall/wake model broke down and no timing in this
            // table can be trusted.
            eprintln!(
                "FAIL: {} @{}c: {}",
                row.workload,
                row.cores,
                DriverError::Deadlock {
                    forced_stall_releases: row.forced_stall_releases
                }
            );
            failed = true;
        }
        if row.arena_bytes_per_insn > ARENA_BYTES_PER_INSN_BAR {
            eprintln!(
                "FAIL: {} @{}c: arena footprint {:.1} B/insn exceeds the \
                 {ARENA_BYTES_PER_INSN_BAR} B/insn bar",
                row.workload, row.cores, row.arena_bytes_per_insn
            );
            failed = true;
        }
    }
    if !quick {
        let headline = rows.iter().find(|r| r.headline).expect("headline cell");
        if headline.cores < 1024 || headline.instructions < 10_000_000 {
            eprintln!(
                "FAIL: headline cell must be >=10M instructions at 1024 cores \
                 (got {} insns at {}c)",
                headline.instructions, headline.cores
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
