//! The 256–1024-core scale table — the first numbers this repository has
//! beyond 64 cores, now including the 100M-instruction regime.
//!
//! Every cell runs one ≥10M-dynamic-instruction workload (built once per
//! workload through the streaming trace pipeline,
//! [`TraceArena::from_program`]) on the event-driven engine at 256, 512
//! and 1024 cores, checks the functional outputs against the workload's
//! Rust oracle, and records:
//!
//! * the **pipeline** numbers — pre-execution + sectioning wall clock,
//!   sectioning throughput (instructions/s) and the arena footprint in
//!   bytes per instruction (gated at ≤ 120 B/insn; the old
//!   record-per-instruction representation cost ~250–350);
//! * the **simulation** numbers — wall clock, simulated cycles, fetch
//!   IPC, the peak per-core section count, and the **total resident
//!   footprint** (arena + simulator state, B/insn).
//!
//! Cells run in one of two modes. A **full** cell records the
//! per-instruction stage table. A **stats** cell runs stats-only
//! (`SimConfig::record_timings` off) over a *lean* arena
//! ([`TraceArena::from_program_lean`]): aggregates are bit-identical, no
//! stage table is materialised, and the total footprint is gated at
//! **≤ 80 B/insn** — the budget that lets 100M-instruction cells fit.
//!
//! Two cells are acceptance headlines:
//!
//! * `fan_chain` 1024×700 at **1024 cores, ≥10M instructions, full
//!   mode** — the deadlock detector staying silent at full chip width;
//! * `fan_chain` 1024×6600 at **1024 cores, ≥100M instructions,
//!   stats-only** — the run must complete under the 80 B/insn total
//!   budget with zero detector firings.
//!
//! Any forced stall release is reported through [`DriverError::Deadlock`]
//! and fails the run (exit 1), exactly as `ManyCoreBackend` would refuse
//! the report; the footprint gates fail the run the same way.
//!
//! The full grid also gates **chip-size scaling**: the 1024-core
//! `synth_histogram` cell must finish within 1.25× the wall clock of the
//! 512-core cell on the same arena. The pre-SoA engine regressed there —
//! doubling the modeled cores *slowed the simulator down* because the
//! per-core state was a vector of pointer-chasing structs — and this
//! gate keeps that inversion from coming back.
//!
//! Every row also records the run's cycle-attribution telemetry —
//! fetch-slot occupancy plus the chip-wide busy / stalled-by-cause /
//! parked / idle cycle totals — in the same JSON schema as
//! `BENCH_sim.json`.
//!
//! Usage: `repro_scale [--quick] [--validate] [--threads N] [--json [PATH]]
//! [--trace-out PATH]` — `--quick` shrinks the grid to one 256-core,
//! ~2M-instruction workload run in both modes for CI smoke runs
//! (default JSON path `BENCH_scale.json`); `--validate` runs every cell
//! with the full static analysis (`parsecs-check`) on, so a
//! structurally corrupt arena fails the run before it is ever
//! simulated; `--threads` runs every cell on the cluster-sharded
//! parallel engine with that many workers (`0` = auto, default follows
//! `PARSECS_THREADS`; results are bit-identical to sequential runs by
//! construction); `--trace-out` re-runs the grid's first workload at
//! its smallest chip size with a streaming
//! [`ChromeTraceWriter`] and writes a
//! Perfetto-loadable Chrome trace to `PATH`.

use std::io::BufWriter;
use std::time::Instant;

use parsecs_bench::{json, AttributionTotals};
use parsecs_core::{ChromeTraceWriter, ManyCoreSim, SimConfig, TraceArena};
use parsecs_driver::DriverError;
use parsecs_isa::Program;
use parsecs_workloads::scale;

/// Arena footprint acceptance bar, in bytes per dynamic instruction.
const ARENA_BYTES_PER_INSN_BAR: f64 = 120.0;

/// Chip-size scaling bar: the 1024-core `synth_histogram` cell may take
/// at most this multiple of the 512-core cell's wall clock.
const SCALING_BAR: f64 = 1.25;

/// Total resident footprint (arena + simulator state) bar for stats-only
/// cells, in bytes per dynamic instruction.
const TOTAL_BYTES_PER_INSN_BAR: f64 = 80.0;

struct Workload {
    name: String,
    program: Program,
    fuel: u64,
    expected: Vec<u64>,
    /// Core counts to simulate this workload at.
    cores: Vec<usize>,
    /// `false` = full mode over a full arena; `true` = stats-only over a
    /// lean arena, gated at ≤ [`TOTAL_BYTES_PER_INSN_BAR`].
    stats_only: bool,
    /// Whether the largest-cores cell is the ≥10M full-mode acceptance
    /// headline.
    headline: bool,
    /// Whether this is the ≥100M stats-only acceptance cell.
    headline_100m: bool,
}

struct Row {
    workload: String,
    mode: &'static str,
    cores: usize,
    threads: usize,
    instructions: u64,
    sections: usize,
    pre_ms: f64,
    sectioning_insns_per_sec: f64,
    arena_bytes: u64,
    arena_bytes_per_insn: f64,
    sim_ms: f64,
    sim_state_bytes: u64,
    total_bytes_per_insn: f64,
    total_cycles: u64,
    fetch_ipc: f64,
    peak_sections_per_core: usize,
    forced_stall_releases: u64,
    /// Chip-wide fetch-slot occupancy over all configured cores.
    occupancy: f64,
    /// Chip-wide sums of the per-core cycle attribution table.
    attr: AttributionTotals,
    stats_only: bool,
    headline: bool,
    headline_100m: bool,
}

fn build_grid(quick: bool) -> Vec<Workload> {
    let seed = 7;
    if quick {
        // One ~2M-instruction workload at 256 cores for CI, in both
        // modes — the quick run exercises the 80 B/insn stats gate too.
        let (keys, buckets) = (140_000, 1024);
        return [false, true]
            .into_iter()
            .map(|stats_only| Workload {
                name: format!("synth_histogram-{keys}x{buckets}"),
                program: scale::synth_histogram_program(keys, buckets, seed),
                fuel: scale::synth_histogram_fuel(keys, buckets),
                expected: scale::synth_histogram_expected(keys, buckets, seed),
                cores: vec![256],
                stats_only,
                headline: false,
                headline_100m: false,
            })
            .collect();
    }
    let (keys, buckets) = (700_000, 4096);
    let (chains, links) = (1024, 700);
    let big_links = 6600;
    vec![
        Workload {
            name: format!("synth_histogram-{keys}x{buckets}"),
            program: scale::synth_histogram_program(keys, buckets, seed),
            fuel: scale::synth_histogram_fuel(keys, buckets),
            expected: scale::synth_histogram_expected(keys, buckets, seed),
            cores: vec![256, 512, 1024],
            stats_only: false,
            headline: false,
            headline_100m: false,
        },
        Workload {
            name: format!("fan_chain-{chains}x{links}"),
            program: scale::fan_chain_program(chains, links, seed),
            fuel: scale::fan_chain_fuel(chains, links),
            expected: scale::fan_chain_expected(chains, links, seed),
            cores: vec![256, 1024],
            stats_only: false,
            headline: true,
            headline_100m: false,
        },
        // The 100M-instruction regime: only reachable stats-only — a
        // recording run would hold ~150 B/insn of simulator state (15 GB)
        // against the stats-only ~17.
        Workload {
            name: format!("fan_chain-{chains}x{big_links}"),
            program: scale::fan_chain_program(chains, big_links, seed),
            fuel: scale::fan_chain_fuel(chains, big_links),
            expected: scale::fan_chain_expected(chains, big_links, seed),
            cores: vec![1024],
            stats_only: true,
            headline: false,
            headline_100m: true,
        },
    ]
}

fn measure(workload: &Workload, validate: bool, threads: usize) -> Vec<Row> {
    // The pipeline runs once per workload; every chip size simulates the
    // same arena. Stats-only cells use the lean arena (no written-
    // locations columns — the simulators never read them).
    let start = Instant::now();
    let arena = if workload.stats_only {
        TraceArena::from_program_lean(&workload.program, workload.fuel)
    } else {
        TraceArena::from_program(&workload.program, workload.fuel)
    }
    .expect("workload halts within fuel and fits the arena");
    let pre_ms = start.elapsed().as_secs_f64() * 1e3;
    let n = arena.len();

    workload
        .cores
        .iter()
        .map(|&cores| {
            let mut config = SimConfig::with_cores(cores).with_threads(threads);
            config.record_timings = !workload.stats_only;
            if validate {
                config.validate = true;
            }
            let resolved_threads = config.effective_threads().min(cores);
            let sim = ManyCoreSim::new(config);
            let start = Instant::now();
            let result = sim.simulate_arena(&arena).expect("simulates");
            let sim_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                result.outputs, workload.expected,
                "{} @{cores}c: outputs disagree with the oracle",
                workload.name
            );
            Row {
                workload: workload.name.clone(),
                mode: if workload.stats_only { "stats" } else { "full" },
                cores,
                threads: resolved_threads,
                instructions: result.stats.instructions,
                sections: result.stats.sections,
                pre_ms,
                sectioning_insns_per_sec: n as f64 / (pre_ms / 1e3),
                arena_bytes: result.stats.trace_arena_bytes,
                arena_bytes_per_insn: result.stats.trace_bytes_per_instruction(),
                sim_ms,
                sim_state_bytes: result.sim_state_bytes(),
                total_bytes_per_insn: result.total_bytes_per_instruction(),
                total_cycles: result.stats.total_cycles,
                fetch_ipc: result.stats.fetch_ipc,
                peak_sections_per_core: result.stats.peak_sections_per_core,
                forced_stall_releases: result.stats.forced_stall_releases,
                occupancy: result.stats.occupancy(),
                attr: AttributionTotals::from_cores(&result.stats.attribution),
                stats_only: workload.stats_only,
                headline: workload.headline && cores == *workload.cores.iter().max().unwrap(),
                headline_100m: workload.headline_100m,
            }
        })
        .collect()
}

fn to_json(rows: &[Row]) -> String {
    json::array(rows.iter().map(|r| {
        let row = json::Obj::new()
            .str("workload", &r.workload)
            .str("mode", r.mode)
            .field("cores", r.cores)
            .field("threads", r.threads)
            .field("instructions", r.instructions)
            .field("sections", r.sections)
            .fixed("pre_ms", r.pre_ms, 3)
            .fixed("sectioning_insns_per_sec", r.sectioning_insns_per_sec, 0)
            .field("arena_bytes", r.arena_bytes)
            .fixed("arena_bytes_per_insn", r.arena_bytes_per_insn, 1)
            .fixed("sim_ms", r.sim_ms, 3)
            .field("sim_state_bytes", r.sim_state_bytes)
            .fixed("total_bytes_per_insn", r.total_bytes_per_insn, 1)
            .field("total_cycles", r.total_cycles)
            .fixed("fetch_ipc", r.fetch_ipc, 4)
            .field("peak_sections_per_core", r.peak_sections_per_core)
            .field("forced_stall_releases", r.forced_stall_releases);
        r.attr
            .append_fields(row, r.occupancy)
            .field("headline", r.headline)
            .field("headline_100m", r.headline_100m)
            .build()
    }))
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<26} {:>5} {:>6} {:>10} {:>8} {:>8} {:>9} {:>7} {:>7} {:>9} {:>11} {:>9} {:>7}",
        "workload",
        "mode",
        "cores",
        "insns",
        "sections",
        "pre ms",
        "Minsns/s",
        "B/insn",
        "tot B/i",
        "sim ms",
        "cycles",
        "fetchIPC",
        "forced"
    );
    for r in rows {
        println!(
            "{:<26} {:>5} {:>6} {:>10} {:>8} {:>8.0} {:>9.1} {:>7.1} {:>7.1} {:>9.0} {:>11} {:>9.1} {:>7}{}",
            r.workload,
            r.mode,
            r.cores,
            r.instructions,
            r.sections,
            r.pre_ms,
            r.sectioning_insns_per_sec / 1e6,
            r.arena_bytes_per_insn,
            r.total_bytes_per_insn,
            r.sim_ms,
            r.total_cycles,
            r.fetch_ipc,
            r.forced_stall_releases,
            if r.headline || r.headline_100m {
                "  <- headline"
            } else {
                ""
            }
        );
    }
}

fn main() {
    let mut quick = false;
    let mut validate = false;
    let mut threads = SimConfig::default().threads;
    let mut json_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--validate" => validate = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a count (0 = auto)");
            }
            "--json" => {
                json_path = Some(match args.peek() {
                    Some(path) if !path.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_scale.json".into(),
                });
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a file path"));
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (supported: --quick --validate \
                     --threads N --json [PATH] --trace-out PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    let grid = build_grid(quick);
    eprintln!(
        "scaling {} workload(s) across 256-1024 cores ({} mode{})...",
        grid.len(),
        if quick { "quick" } else { "full" },
        if validate { ", validated" } else { "" }
    );
    let rows: Vec<Row> = grid
        .iter()
        .flat_map(|w| measure(w, validate, threads))
        .collect();
    print_table(&rows);

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&rows)).expect("write BENCH_scale.json");
        eprintln!("wrote {} rows to {path}", rows.len());
    }

    // A Perfetto-loadable Chrome trace of the grid's first workload at
    // its smallest chip size, stats-only over a lean arena (the
    // telemetry never reads the stage table).
    if let Some(path) = &trace_out {
        let workload = &grid[0];
        let cores = *workload.cores.iter().min().expect("cells exist");
        let arena = TraceArena::from_program_lean(&workload.program, workload.fuel)
            .expect("workload halts within fuel and fits the arena");
        let sim = ManyCoreSim::new(SimConfig::with_cores(cores).stats_only());
        let file = std::fs::File::create(path).expect("create the --trace-out file");
        let mut writer = ChromeTraceWriter::new(BufWriter::new(file));
        let traced = sim
            .simulate_arena_probed(&arena, &mut writer)
            .expect("simulates");
        assert_eq!(traced.outputs, workload.expected);
        let events = writer.events();
        writer.finish().expect("flush the Chrome trace");
        eprintln!(
            "wrote {events} trace events for {} @{cores}c to {path}",
            workload.name
        );
    }

    // Hard gates.
    let mut failed = false;
    for row in &rows {
        if row.forced_stall_releases > 0 {
            // The same refusal ManyCoreBackend encodes: a forced release
            // means the stall/wake model broke down and no timing in this
            // table can be trusted.
            eprintln!(
                "FAIL: {} @{}c: {}",
                row.workload,
                row.cores,
                DriverError::Deadlock {
                    forced_stall_releases: row.forced_stall_releases
                }
            );
            failed = true;
        }
        if row.arena_bytes_per_insn > ARENA_BYTES_PER_INSN_BAR {
            eprintln!(
                "FAIL: {} @{}c: arena footprint {:.1} B/insn exceeds the \
                 {ARENA_BYTES_PER_INSN_BAR} B/insn bar",
                row.workload, row.cores, row.arena_bytes_per_insn
            );
            failed = true;
        }
        if row.stats_only && row.total_bytes_per_insn > TOTAL_BYTES_PER_INSN_BAR {
            eprintln!(
                "FAIL: {} @{}c [stats]: total footprint {:.1} B/insn (arena + sim \
                 state) exceeds the {TOTAL_BYTES_PER_INSN_BAR} B/insn bar",
                row.workload, row.cores, row.total_bytes_per_insn
            );
            failed = true;
        }
    }
    if !quick {
        let headline = rows.iter().find(|r| r.headline).expect("headline cell");
        if headline.cores < 1024 || headline.instructions < 10_000_000 {
            eprintln!(
                "FAIL: headline cell must be >=10M instructions at 1024 cores \
                 (got {} insns at {}c)",
                headline.instructions, headline.cores
            );
            failed = true;
        }
        let big = rows
            .iter()
            .find(|r| r.headline_100m)
            .expect("100M headline cell");
        if big.cores < 1024 || big.instructions < 100_000_000 || !big.stats_only {
            eprintln!(
                "FAIL: the 100M headline must be a >=100M-instruction stats-only \
                 cell at 1024 cores (got {} insns at {}c, mode {})",
                big.instructions, big.cores, big.mode
            );
            failed = true;
        }
        // Chip-size scaling: doubling the modeled cores from 512 to 1024
        // on the same synth_histogram arena must not slow the simulator
        // past the noise band (the pre-SoA inversion).
        let hist_at = |cores: usize| {
            rows.iter()
                .find(|r| r.workload.starts_with("synth_histogram") && r.cores == cores)
        };
        if let (Some(at_512), Some(at_1024)) = (hist_at(512), hist_at(1024)) {
            if at_1024.sim_ms > SCALING_BAR * at_512.sim_ms {
                eprintln!(
                    "FAIL: {} at 1024 cores took {:.0} ms vs {:.0} ms at 512 — \
                     {:.2}x, above the {SCALING_BAR}x chip-size scaling bar",
                    at_1024.workload,
                    at_1024.sim_ms,
                    at_512.sim_ms,
                    at_1024.sim_ms / at_512.sim_ms
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
