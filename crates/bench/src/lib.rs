//! # parsecs-bench — the reproduction harness
//!
//! One binary per evaluation artefact of the paper (run them with
//! `cargo run -p parsecs-bench --release --bin <name>`):
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `repro_table1` | Table 1 — the ten PBBS benchmarks |
//! | `repro_fig3_fig6_traces` | Figures 3, 4 and 6 — the sum traces and sections |
//! | `repro_fig7_ilp` | Figure 7 — sequential vs parallel ILP across datasets |
//! | `repro_fig10_timing` | Figure 10 — per-stage timing of `sum(t,5)` on one core per section |
//! | `repro_sec5_analytic` | §5 — closed-form model vs simulated fetch/retire IPC |
//! | `repro_ablation` | design-choice ablations (cores, NoC latency, placement, fetch stalls), run as a parallel `Sweep`; `--json [PATH]` emits `BENCH_sweep.json` |
//! | `repro_perf` | event-driven vs cycle-stepping engine wall clock on ≥1M-instruction workloads, plus the streaming-vs-two-pass front-end pipeline comparison; `--json [PATH]` emits `BENCH_sim.json` |
//! | `repro_scale` | the 256–1024-core, ≥10M-instruction scale table over the streaming arena pipeline; `--json [PATH]` emits `BENCH_scale.json` |
//!
//! The benches (`cargo bench -p parsecs-bench`) measure the throughput of
//! the three engines themselves (reference machine, ILP analyzer,
//! many-core simulator) so regressions in the reproduction infrastructure
//! are visible.
//!
//! This crate's library exposes the small amount of shared code the
//! binaries use — dataset sweeps and ILP measurement for a workload,
//! the [`json`] emission module every `BENCH_*.json` goes through, and
//! the [`AttributionTotals`] cycle-telemetry summary — built on the
//! unified [`parsecs_driver`] backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use parsecs_cc::Backend;
use parsecs_core::{CoreBreakdown, StallCause};
use parsecs_driver::{ExecutionBackend, SequentialBackend};
use parsecs_ilp::{analyze, IlpModel};
use parsecs_machine::Trace;
use parsecs_workloads::pbbs::Benchmark;

/// Fuel used for tracing the embedded benchmarks.
pub const TRACE_FUEL: u64 = 2_000_000_000;

/// Chip-wide sums of the per-core cycle attribution table
/// ([`parsecs_core::SimStats::attribution`]): where the whole chip's
/// `cores × total_cycles` budget went, additive across the four buckets
/// (`busy + stalled + parked + idle == cores × total_cycles`).
///
/// The scale binaries surface these sums — plus the fetch-slot
/// occupancy — on every JSON row through
/// [`AttributionTotals::append_fields`], so the telemetry schema stays
/// identical across `BENCH_sim.json` and `BENCH_scale.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttributionTotals {
    /// Cycles with an instruction fetch (or section dequeue) in a slot.
    pub busy: u64,
    /// In-place stall cycles, split by [`StallCause`] (indexed by
    /// [`StallCause::index`]).
    pub stalled: [u64; StallCause::COUNT],
    /// Cycles with only parked sections on a core.
    pub parked: u64,
    /// Cycles with an empty, section-less core.
    pub idle: u64,
}

impl AttributionTotals {
    /// Sums the per-core breakdowns into chip-wide totals.
    pub fn from_cores(attribution: &[CoreBreakdown]) -> AttributionTotals {
        let mut totals = AttributionTotals::default();
        for core in attribution {
            totals.busy += core.busy;
            for (sum, &cycles) in totals.stalled.iter_mut().zip(&core.stalled) {
                *sum += cycles;
            }
            totals.parked += core.parked;
            totals.idle += core.idle;
        }
        totals
    }

    /// Total in-place stall cycles across all causes.
    pub fn stalled_total(&self) -> u64 {
        self.stalled.iter().sum()
    }

    /// Appends the shared cycle-telemetry fields to a JSON row:
    /// `occupancy` (four decimals), the four bucket totals, and a nested
    /// `stall_cycles_by_cause` object keyed by [`StallCause::name`].
    pub fn append_fields(&self, row: json::Obj, occupancy: f64) -> json::Obj {
        let by_cause = StallCause::ALL
            .iter()
            .fold(json::Obj::new(), |obj, cause| {
                obj.field(cause.name(), self.stalled[cause.index()])
            })
            .build();
        row.fixed("occupancy", occupancy, 4)
            .field("busy_cycles", self.busy)
            .field("stall_cycles", self.stalled_total())
            .field("stall_cycles_by_cause", by_cause)
            .field("parked_cycles", self.parked)
            .field("idle_cycles", self.idle)
    }
}

/// The ILP of one benchmark instance under both of the paper's models.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpRow {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Problem size (elements / nodes / points).
    pub size: usize,
    /// Dynamic instructions in the trace.
    pub instructions: u64,
    /// Parallel-model ILP (the paper's numbered bars).
    pub parallel_ilp: f64,
    /// Sequential-oracle ILP (the paper's `seq` bars).
    pub sequential_ilp: f64,
}

/// Traces one benchmark instance through the [`SequentialBackend`].
///
/// # Panics
///
/// Panics if the embedded benchmark fails to compile or run, or disagrees
/// with its Rust oracle — all would be bugs in the workload definitions.
pub fn trace_benchmark(benchmark: Benchmark, size: usize, seed: u64) -> Trace {
    let program = benchmark
        .program(size, seed, Backend::Calls)
        .expect("embedded benchmarks compile");
    let report = SequentialBackend
        .execute_fueled(&program, TRACE_FUEL)
        .expect("programs halt");
    assert_eq!(
        report.outputs,
        benchmark.expected(size, seed),
        "{} disagrees with its oracle",
        benchmark.name()
    );
    match report.detail {
        parsecs_driver::ReportDetail::Trace(trace) => trace,
        other => unreachable!("sequential backend always yields a trace, got {other:?}"),
    }
}

/// Measures one benchmark instance under the paper's two ILP models.
///
/// The expensive part — the oracle-checked functional trace — runs once
/// (through [`trace_benchmark`]); both models then schedule the same
/// trace.
///
/// # Panics
///
/// Panics if the embedded benchmark fails to compile or run, or disagrees
/// with its Rust oracle — all would be bugs in the workload definitions.
pub fn ilp_row(benchmark: Benchmark, size: usize, seed: u64) -> IlpRow {
    let trace = trace_benchmark(benchmark, size, seed);
    let parallel = analyze(&trace, &IlpModel::parallel_ideal());
    let sequential = analyze(&trace, &IlpModel::sequential_oracle());
    IlpRow {
        benchmark,
        size,
        instructions: parallel.instructions,
        parallel_ilp: parallel.ilp,
        sequential_ilp: sequential.ilp,
    }
}

/// The geometric dataset sweep used by the Figure 7 reproduction: the paper
/// uses eleven sizes from 1 M to 1 G dynamic instructions; we scale the
/// sweep down (`count` sizes starting at `base`, doubling), keeping the
/// doubling structure.
pub fn dataset_sweep(base: usize, count: usize) -> Vec<usize> {
    (0..count).map(|i| base << i).collect()
}

/// Spearman rank correlation between two paired samples, with average
/// ranks for ties — the score `arena_check` gates the list-schedule
/// predictor on (`predicted_cycles` vs measured cycles).
///
/// Returns `None` when the samples are shorter than two pairs, have
/// mismatched lengths, or either side is constant (rank variance zero —
/// correlation is undefined there).
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

/// Average (fractional) ranks of `values`, 1-based; tied values share
/// the mean of the rank range they occupy.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite samples"));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let shared = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = shared;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation of two equal-length samples; `None` when either
/// side has zero variance.
fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a).powi(2);
        var_b += (y - mean_b).powi(2);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return None;
    }
    Some(cov / (var_a * var_b).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_totals_sum_cores_and_emit_the_shared_schema() {
        let mut a = CoreBreakdown {
            busy: 10,
            parked: 2,
            idle: 3,
            ..CoreBreakdown::default()
        };
        a.stalled[StallCause::RemoteRegister.index()] = 5;
        let mut b = CoreBreakdown {
            busy: 7,
            idle: 12,
            ..CoreBreakdown::default()
        };
        b.stalled[StallCause::RemoteMemory.index()] = 1;
        let totals = AttributionTotals::from_cores(&[a, b]);
        assert_eq!(totals.busy, 17);
        assert_eq!(totals.stalled_total(), 6);
        assert_eq!(totals.parked, 2);
        assert_eq!(totals.idle, 15);
        let row = totals.append_fields(json::Obj::new(), 0.42).build();
        assert!(row.contains("\"occupancy\": 0.4200"));
        assert!(row.contains("\"stall_cycles\": 6"));
        assert!(row.contains("\"remote_register\": 5"));
        assert!(row.contains("\"idle_cycles\": 15"));
    }

    #[test]
    fn sweep_doubles() {
        assert_eq!(dataset_sweep(16, 4), vec![16, 32, 64, 128]);
    }

    #[test]
    fn spearman_scores_monotone_and_reversed_relations() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let up = [10.0, 20.0, 25.0, 70.0, 300.0];
        let down = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(spearman(&a, &up), Some(1.0));
        assert_eq!(spearman(&a, &down), Some(-1.0));
        // Monotone up to one swapped pair: high but below 1.
        let nearly = [10.0, 20.0, 70.0, 25.0, 300.0];
        let rho = spearman(&a, &nearly).expect("defined");
        assert!(rho > 0.8 && rho < 1.0, "rho {rho}");
    }

    #[test]
    fn spearman_averages_tied_ranks() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 2.5, 2.5, 4.0];
        let rho = spearman(&a, &b).expect("defined");
        assert!((rho - 1.0).abs() < 1e-12, "tied ranks align exactly: {rho}");
        assert_eq!(average_ranks(&a), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_is_undefined_on_degenerate_samples() {
        assert_eq!(spearman(&[1.0], &[2.0]), None);
        assert_eq!(spearman(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn ilp_row_reproduces_the_papers_ordering() {
        let row = ilp_row(Benchmark::IntegerSort, 48, 1);
        assert!(row.parallel_ilp > row.sequential_ilp);
        assert!(row.instructions > 100);
    }

    #[test]
    fn trace_benchmark_yields_the_full_trace() {
        let trace = trace_benchmark(Benchmark::IntegerSort, 48, 1);
        assert!(trace.len() > 100);
    }
}
