//! Throughput of the many-core section simulator (Figure 10 engine):
//! simulated instructions per second at several chip sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parsecs_core::{ManyCoreSim, SimConfig, TraceArena};
use parsecs_workloads::sum;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("manycore_sim");
    let data = sum::dataset(5, 7); // 160 elements
    let program = sum::fork_program(&data);
    let arena = TraceArena::from_program(&program, 10_000_000).unwrap();
    group.throughput(Throughput::Elements(arena.len() as u64));

    for cores in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("simulate", cores), &arena, |b, t| {
            let sim = ManyCoreSim::new(SimConfig::with_cores(cores));
            b.iter(|| sim.simulate_arena(t).unwrap())
        });
    }
    group.bench_with_input(
        BenchmarkId::new("section_split", "sum160"),
        &program,
        |b, p| b.iter(|| TraceArena::from_program(p, 10_000_000).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
