//! Throughput of the functional front-end: instructions sectioned per
//! second, comparing the streaming arena pipeline (machine → sectioner →
//! arena, one pass) against the retired two-pass path (materialise the
//! trace, then run the sequential analysis) and against replaying an
//! already-materialised trace through the sectioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parsecs_core::{SectionedTrace, TraceArena};
use parsecs_machine::Machine;
use parsecs_workloads::scale;

fn bench_sectioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("sectioning");
    let elements = 20_000;
    let fuel = scale::chain_sum_fuel(elements);
    let program = scale::chain_sum_program(elements, 7);
    let (outcome, trace) = Machine::load(&program)
        .expect("loads")
        .run_traced(fuel)
        .expect("halts");
    group.throughput(Throughput::Elements(trace.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("streaming_from_program", elements),
        &program,
        |b, p| b.iter(|| TraceArena::from_program(p, fuel).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("legacy_two_pass", elements),
        &program,
        |b, p| b.iter(|| SectionedTrace::from_program(p, fuel).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("sectioner_replay", elements),
        &trace,
        |b, t| b.iter(|| TraceArena::from_trace(t, outcome.outputs.clone())),
    );
    group.finish();
}

criterion_group!(benches, bench_sectioning);
criterion_main!(benches);
