//! Throughput of the Figure 7 ILP limit analyzer: events scheduled per
//! second under the paper's two dependence models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parsecs_bench::trace_benchmark;
use parsecs_ilp::{analyze, IlpModel};
use parsecs_workloads::pbbs::Benchmark;

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_analyzer");
    for benchmark in [Benchmark::ComparisonSort, Benchmark::RemoveDuplicates] {
        let trace = trace_benchmark(benchmark, 128, 1);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("parallel_ideal", benchmark.kernel()),
            &trace,
            |b, t| b.iter(|| analyze(t, &IlpModel::parallel_ideal())),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_oracle", benchmark.kernel()),
            &trace,
            |b, t| b.iter(|| analyze(t, &IlpModel::sequential_oracle())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
