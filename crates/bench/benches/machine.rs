//! Throughput of the sequential reference machine (the substrate every
//! experiment runs on): instructions interpreted per second on the
//! call-based sum and on two PBBS-analog kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parsecs_cc::Backend;
use parsecs_machine::Machine;
use parsecs_workloads::{pbbs::Benchmark, sum};

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");

    for n in [1u32, 3, 5] {
        let data = sum::dataset(n, 7);
        let program = sum::call_program(&data);
        let instructions = Machine::load(&program)
            .unwrap()
            .run(10_000_000)
            .unwrap()
            .instructions;
        group.throughput(Throughput::Elements(instructions));
        group.bench_with_input(
            BenchmarkId::new("sum_call", data.len()),
            &program,
            |b, p| {
                b.iter(|| {
                    let mut machine = Machine::load(p).unwrap();
                    machine.run(10_000_000).unwrap()
                })
            },
        );
    }

    for benchmark in [Benchmark::IntegerSort, Benchmark::Bfs] {
        let program = benchmark.program(128, 1, Backend::Calls).unwrap();
        let instructions = Machine::load(&program)
            .unwrap()
            .run(100_000_000)
            .unwrap()
            .instructions;
        group.throughput(Throughput::Elements(instructions));
        group.bench_with_input(
            BenchmarkId::new(benchmark.kernel(), 128),
            &program,
            |b, p| {
                b.iter(|| {
                    let mut machine = Machine::load(p).unwrap();
                    machine.run(100_000_000).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
