//! An ergonomic builder for hand-written programs.
//!
//! The builder is used by the workload generators and by the mini-C
//! compiler's code emitter. It collects instructions, labels and data
//! objects and produces a resolved [`Program`].

use std::collections::BTreeMap;

use crate::{
    AluOp, Cond, DataItem, Inst, IsaError, MemRef, Operand, Program, Reg, Target, UnaryOp,
};

/// Incrementally builds a [`Program`].
///
/// # Example
///
/// ```
/// use parsecs_isa::{ProgramBuilder, Operand, Reg, AluOp};
///
/// let mut b = ProgramBuilder::new();
/// b.label("main");
/// b.movq(Operand::imm(40), Reg::Rax);
/// b.alu(AluOp::Add, Operand::imm(2), Reg::Rax);
/// b.out(Reg::Rax);
/// b.halt();
/// let program = b.build().expect("valid program");
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    insns: Vec<Inst>,
    labels: BTreeMap<String, usize>,
    pending_errors: Vec<IsaError>,
    data: Vec<DataItem>,
    data_offset: u64,
    entry: Option<usize>,
    fresh_label: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether no instruction has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Defines a code label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self.labels.insert(name.clone(), self.insns.len()).is_some() {
            self.pending_errors.push(IsaError::DuplicateLabel(name));
        }
        self
    }

    /// Returns a fresh, unique label name with the given prefix.
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        let name = format!(".{prefix}_{}", self.fresh_label);
        self.fresh_label += 1;
        name
    }

    /// Marks the current position as the program entry point.
    pub fn entry_here(&mut self) -> &mut Self {
        self.entry = Some(self.insns.len());
        self
    }

    /// Appends a 64-bit-word array to the data segment under `name`.
    pub fn global_data(&mut self, name: impl Into<String>, words: &[u64]) -> &mut Self {
        let name = name.into();
        if self.data.iter().any(|d| d.name == name) {
            self.pending_errors.push(IsaError::DuplicateSymbol(name));
            return self;
        }
        let item = DataItem {
            name,
            offset: self.data_offset,
            words: words.to_vec(),
        };
        self.data_offset += 8 * words.len().max(1) as u64;
        self.data.push(item);
        self
    }

    /// Reserves `words` zero-initialised 64-bit words under `name`.
    pub fn global_zeroed(&mut self, name: impl Into<String>, words: usize) -> &mut Self {
        let zeros = vec![0u64; words];
        self.global_data(name, &zeros)
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insns.push(inst);
        self
    }

    // ---- convenience emitters -------------------------------------------

    /// `movq src, dst`
    pub fn movq(&mut self, src: impl Into<Operand>, dst: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Mov {
            src: src.into(),
            dst: dst.into(),
        })
    }

    /// `leaq addr, dst`
    pub fn leaq(&mut self, addr: MemRef, dst: Reg) -> &mut Self {
        self.push(Inst::Lea { addr, dst })
    }

    /// `pushq src`
    pub fn pushq(&mut self, src: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Push { src: src.into() })
    }

    /// `popq dst`
    pub fn popq(&mut self, dst: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Pop { dst: dst.into() })
    }

    /// Binary ALU operation `op src, dst`.
    pub fn alu(
        &mut self,
        op: AluOp,
        src: impl Into<Operand>,
        dst: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Inst::Alu {
            op,
            src: src.into(),
            dst: dst.into(),
        })
    }

    /// `addq src, dst`
    pub fn addq(&mut self, src: impl Into<Operand>, dst: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, src, dst)
    }

    /// `subq src, dst`
    pub fn subq(&mut self, src: impl Into<Operand>, dst: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, src, dst)
    }

    /// `imulq src, dst`
    pub fn imulq(&mut self, src: impl Into<Operand>, dst: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Imul, src, dst)
    }

    /// `shrq $1, dst` — the paper's `shrq %rsi` halving idiom.
    pub fn shrq1(&mut self, dst: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shr, Operand::imm(1), dst)
    }

    /// Unary operation on `dst`.
    pub fn unary(&mut self, op: UnaryOp, dst: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Unary {
            op,
            dst: dst.into(),
        })
    }

    /// `cmpq src, dst`
    pub fn cmpq(&mut self, src: impl Into<Operand>, dst: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Cmp {
            src: src.into(),
            dst: dst.into(),
        })
    }

    /// `testq src, dst`
    pub fn testq(&mut self, src: impl Into<Operand>, dst: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Test {
            src: src.into(),
            dst: dst.into(),
        })
    }

    /// `jmp label`
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.push(Inst::Jmp {
            target: Target::label(label),
        })
    }

    /// `jcc label`
    pub fn jcc(&mut self, cond: Cond, label: impl Into<String>) -> &mut Self {
        self.push(Inst::Jcc {
            cond,
            target: Target::label(label),
        })
    }

    /// `call label`
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.push(Inst::Call {
            target: Target::label(label),
        })
    }

    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Ret)
    }

    /// `fork label`
    pub fn fork(&mut self, label: impl Into<String>) -> &mut Self {
        self.push(Inst::Fork {
            target: Target::label(label),
        })
    }

    /// `endfork`
    pub fn endfork(&mut self) -> &mut Self {
        self.push(Inst::EndFork)
    }

    /// `out src`
    pub fn out(&mut self, src: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Out { src: src.into() })
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Finalises the program: resolves labels and data symbols and
    /// validates every instruction.
    ///
    /// # Errors
    ///
    /// Returns the first structural error encountered while building
    /// (duplicate labels/symbols) or while resolving (undefined labels or
    /// symbols, out-of-range targets, invalid operand combinations).
    pub fn build(&self) -> Result<Program, IsaError> {
        if let Some(err) = self.pending_errors.first() {
            return Err(err.clone());
        }
        Program::new(
            self.insns.clone(),
            self.labels.clone(),
            self.data.clone(),
            self.entry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_label_is_reported() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.nop();
        b.label("x");
        b.halt();
        assert_eq!(b.build().unwrap_err(), IsaError::DuplicateLabel("x".into()));
    }

    #[test]
    fn duplicate_symbol_is_reported() {
        let mut b = ProgramBuilder::new();
        b.global_data("t", &[1]);
        b.global_data("t", &[2]);
        b.halt();
        assert_eq!(
            b.build().unwrap_err(),
            IsaError::DuplicateSymbol("t".into())
        );
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut b = ProgramBuilder::new();
        let l1 = b.fresh_label("loop");
        let l2 = b.fresh_label("loop");
        assert_ne!(l1, l2);
    }

    #[test]
    fn data_layout_is_contiguous() {
        let mut b = ProgramBuilder::new();
        b.global_data("a", &[1, 2]);
        b.global_zeroed("b", 3);
        b.global_data("c", &[9]);
        b.halt();
        let p = b.build().unwrap();
        let a = p.data_address("a").unwrap();
        let bb = p.data_address("b").unwrap();
        let c = p.data_address("c").unwrap();
        assert_eq!(bb, a + 16);
        assert_eq!(c, bb + 24);
        assert_eq!(p.data_size(), 48);
    }

    #[test]
    fn entry_here_overrides_main() {
        let mut b = ProgramBuilder::new();
        b.label("main");
        b.nop();
        b.entry_here();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn builder_emits_the_paper_idioms() {
        let mut b = ProgramBuilder::new();
        b.label("sum");
        b.cmpq(Operand::imm(2), Reg::Rsi);
        b.jcc(Cond::A, ".L2");
        b.movq(Operand::mem(Reg::Rdi, 0), Reg::Rax);
        b.jcc(Cond::Ne, ".L1");
        b.addq(Operand::mem(Reg::Rdi, 8), Reg::Rax);
        b.label(".L1");
        b.endfork();
        b.label(".L2");
        b.movq(Reg::Rsi, Reg::Rbx);
        b.shrq1(Reg::Rsi);
        b.fork("sum");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 10);
        assert_eq!(p.labels()[".L2"], 6);
        assert_eq!(p.get(8).unwrap().target().unwrap().resolved().unwrap(), 0);
    }
}
