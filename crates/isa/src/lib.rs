//! # parsecs-isa — the instruction set of the parsecs machine
//!
//! This crate defines the x86-64-style instruction set used throughout the
//! `parsecs` reproduction of *"Toward a Core Design to Distribute an
//! Execution on a Many-Core Processor"* (PaCT 2015).
//!
//! The paper presents its execution model on x86-64 (gas syntax) listings
//! extended with two new instructions, `fork` and `endfork`, which replace
//! `call`/`ret` pairs to let the hardware split a run into *sections*.
//! This crate provides:
//!
//! * [`Reg`] — the sixteen general purpose registers with their System V
//!   volatility classification (the paper copies non-volatile registers to
//!   the forked path).
//! * [`Operand`], [`MemRef`] — immediates, registers and
//!   `disp(base, index, scale)` memory references.
//! * [`Inst`] — the instruction set, including [`Inst::Fork`] and
//!   [`Inst::EndFork`].
//! * [`Effects`] — per-instruction architectural read/write sets, shared by
//!   the tracer, the ILP limit analyzer and the renaming hardware model.
//! * [`encode`]/[`decode`] — a fixed-width binary encoding.
//! * [`Program`] and [`ProgramBuilder`] — label-resolved program containers.
//!
//! ## Example
//!
//! ```
//! use parsecs_isa::{ProgramBuilder, Reg, Operand};
//!
//! let mut b = ProgramBuilder::new();
//! b.global_data("t", &[1, 2, 3]);
//! b.label("main");
//! b.movq(Operand::sym("t"), Reg::Rdi);
//! b.movq(Operand::mem(Reg::Rdi, 8), Reg::Rax);
//! b.out(Reg::Rax);
//! b.halt();
//! let program = b.build().expect("labels resolve");
//! assert_eq!(program.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod effects;
mod encode;
mod error;
mod flags;
mod insn;
mod operand;
mod program;
mod reg;

pub use builder::ProgramBuilder;
pub use effects::{Effects, MemEffect};
pub use encode::{decode, decode_program, encode, encode_program};
pub use error::IsaError;
pub use flags::{Cond, Flags};
pub use insn::{AluOp, Inst, Target, UnaryOp};
pub use operand::{MemRef, Operand};
pub use program::{DataItem, Program};
pub use reg::Reg;

/// Base virtual address of the initialized data segment used by the loader
/// and by [`ProgramBuilder`] symbol resolution.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Initial stack pointer value used by the reference machine and the
/// many-core simulator. The stack grows towards lower addresses.
pub const STACK_TOP: u64 = 0x7fff_ff00;
