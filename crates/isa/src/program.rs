//! Label-resolved program container.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Inst, IsaError, Operand, DATA_BASE};

/// One initialised data object in the program's data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataItem {
    /// Symbol name (e.g. `"t"`).
    pub name: String,
    /// Byte offset of the object inside the data segment.
    pub offset: u64,
    /// Initial 64-bit words.
    pub words: Vec<u64>,
}

impl DataItem {
    /// Absolute virtual address of the object.
    pub fn address(&self) -> u64 {
        DATA_BASE + self.offset
    }
}

/// A complete program: instructions, code labels, and an initialised data
/// segment with named symbols.
///
/// Code addresses are instruction indices. The entry point defaults to the
/// `main` label (or instruction 0 when there is no `main`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    insns: Vec<Inst>,
    labels: BTreeMap<String, usize>,
    data: Vec<DataItem>,
    entry: usize,
}

impl Program {
    /// Builds a program from parts and resolves every symbolic target and
    /// data symbol.
    ///
    /// # Errors
    ///
    /// Returns an error if a label or data symbol is undefined, a target is
    /// out of range, or an instruction has invalid operands.
    pub fn new(
        insns: Vec<Inst>,
        labels: BTreeMap<String, usize>,
        data: Vec<DataItem>,
        entry: Option<usize>,
    ) -> Result<Program, IsaError> {
        let entry = entry.or_else(|| labels.get("main").copied()).unwrap_or(0);
        let mut program = Program {
            insns,
            labels,
            data,
            entry,
        };
        program.resolve()?;
        Ok(program)
    }

    /// Resolves symbolic branch targets and data symbols in place and
    /// validates every instruction.
    fn resolve(&mut self) -> Result<(), IsaError> {
        let len = self.insns.len();
        let labels = self.labels.clone();
        let symbols: BTreeMap<String, u64> = self
            .data
            .iter()
            .map(|d| (d.name.clone(), d.address()))
            .collect();

        for (at, inst) in self.insns.iter_mut().enumerate() {
            inst.validate()?;
            if let Some(target) = inst.target_mut() {
                if target.index.is_none() {
                    let name = target
                        .label
                        .clone()
                        .ok_or_else(|| IsaError::UndefinedLabel("<anonymous>".into()))?;
                    let index = *labels.get(&name).ok_or(IsaError::UndefinedLabel(name))?;
                    target.index = Some(index);
                }
                let index = target.index.expect("just resolved");
                if index >= len {
                    return Err(IsaError::TargetOutOfRange {
                        at,
                        target: index,
                        len,
                    });
                }
            }
            // Resolve data symbols to absolute immediates.
            resolve_symbols(inst, &symbols)?;
        }
        if self.entry >= len && len != 0 {
            return Err(IsaError::TargetOutOfRange {
                at: 0,
                target: self.entry,
                len,
            });
        }
        Ok(())
    }

    /// The instructions of the program.
    pub fn insns(&self) -> &[Inst] {
        &self.insns
    }

    /// The instruction at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Inst> {
        self.insns.get(index)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Entry point (instruction index).
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// The code labels, sorted by name.
    pub fn labels(&self) -> &BTreeMap<String, usize> {
        &self.labels
    }

    /// The label attached to an instruction index, if any (first label in
    /// alphabetical order when several share the index).
    pub fn label_at(&self, index: usize) -> Option<&str> {
        self.labels
            .iter()
            .find(|(_, i)| **i == index)
            .map(|(name, _)| name.as_str())
    }

    /// The initialised data objects.
    pub fn data(&self) -> &[DataItem] {
        &self.data
    }

    /// Looks up a data symbol's absolute address.
    pub fn data_address(&self, name: &str) -> Option<u64> {
        self.data
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.address())
    }

    /// Total size of the initialised data segment, in bytes.
    pub fn data_size(&self) -> u64 {
        self.data
            .iter()
            .map(|d| d.offset + 8 * d.words.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over `(address, initial value)` pairs of the data segment.
    pub fn data_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.data.iter().flat_map(|d| {
            d.words
                .iter()
                .enumerate()
                .map(move |(i, w)| (d.address() + 8 * i as u64, *w))
        })
    }
}

fn resolve_symbols(inst: &mut Inst, symbols: &BTreeMap<String, u64>) -> Result<(), IsaError> {
    let fix = |op: &mut Operand| -> Result<(), IsaError> {
        if let Operand::Sym(name) = op {
            let addr = symbols
                .get(name.as_str())
                .ok_or_else(|| IsaError::UndefinedSymbol(name.clone()))?;
            *op = Operand::Imm(*addr as i64);
        }
        Ok(())
    };
    match inst {
        Inst::Mov { src, dst }
        | Inst::Alu { src, dst, .. }
        | Inst::Cmp { src, dst }
        | Inst::Test { src, dst } => {
            fix(src)?;
            fix(dst)?;
        }
        Inst::Push { src } | Inst::Out { src } => fix(src)?,
        Inst::Pop { dst } | Inst::Unary { dst, .. } => fix(dst)?,
        _ => {}
    }
    Ok(())
}

impl fmt::Display for Program {
    /// Pretty-prints the program in the gas-like layout of the paper's
    /// listings: labels in the left margin, one instruction per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.data {
            let words: Vec<String> = item.words.iter().map(u64::to_string).collect();
            writeln!(f, "{}: .quad {}", item.name, words.join(", "))?;
        }
        for (i, inst) in self.insns.iter().enumerate() {
            let label = self
                .label_at(i)
                .map(|l| format!("{l}:"))
                .unwrap_or_default();
            writeln!(f, "{label:<8}{inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond, ProgramBuilder, Reg, Target};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.global_data("t", &[10, 20, 30]);
        b.label("main");
        b.movq(Operand::sym("t"), Reg::Rdi);
        b.movq(Operand::imm(3), Reg::Rsi);
        b.label("loop");
        b.alu(AluOp::Sub, Operand::imm(1), Reg::Rsi);
        b.jcc(Cond::Ne, "loop");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn labels_and_entry_resolve() {
        let p = sample();
        assert_eq!(p.len(), 5);
        assert_eq!(p.entry(), 0);
        assert_eq!(p.labels()["loop"], 2);
        assert_eq!(p.label_at(2), Some("loop"));
        assert_eq!(p.label_at(4), None);
        let target = p.get(3).unwrap().target().unwrap();
        assert_eq!(target.resolved().unwrap(), 2);
    }

    #[test]
    fn data_symbols_resolve_to_addresses() {
        let p = sample();
        assert_eq!(p.data_address("t"), Some(DATA_BASE));
        assert_eq!(p.data_size(), 24);
        let words: Vec<(u64, u64)> = p.data_words().collect();
        assert_eq!(
            words,
            vec![(DATA_BASE, 10), (DATA_BASE + 8, 20), (DATA_BASE + 16, 30)]
        );
        // The `$t` operand became an absolute immediate.
        match p.get(0).unwrap() {
            Inst::Mov {
                src: Operand::Imm(v),
                ..
            } => assert_eq!(*v as u64, DATA_BASE),
            other => panic!("unexpected instruction {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_rejected() {
        let insns = vec![Inst::Jmp {
            target: Target::label("nowhere"),
        }];
        let err = Program::new(insns, BTreeMap::new(), Vec::new(), None).unwrap_err();
        assert_eq!(err, IsaError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn undefined_symbol_is_rejected() {
        let insns = vec![Inst::Mov {
            src: Operand::sym("ghost"),
            dst: Operand::Reg(Reg::Rax),
        }];
        let err = Program::new(insns, BTreeMap::new(), Vec::new(), None).unwrap_err();
        assert_eq!(err, IsaError::UndefinedSymbol("ghost".into()));
    }

    #[test]
    fn out_of_range_target_is_rejected() {
        let insns = vec![Inst::Jmp {
            target: Target::abs(10),
        }];
        let err = Program::new(insns, BTreeMap::new(), Vec::new(), None).unwrap_err();
        assert!(matches!(err, IsaError::TargetOutOfRange { target: 10, .. }));
    }

    #[test]
    fn invalid_operands_are_rejected_at_build_time() {
        let mem = Operand::mem(Reg::Rsp, 0);
        let insns = vec![Inst::Mov {
            src: mem.clone(),
            dst: mem,
        }];
        assert!(matches!(
            Program::new(insns, BTreeMap::new(), Vec::new(), None),
            Err(IsaError::InvalidOperands { .. })
        ));
    }

    #[test]
    fn display_shows_labels_and_data() {
        let p = sample();
        let text = p.to_string();
        assert!(text.contains("t:"));
        assert!(text.contains(".quad 10"));
        assert!(text.contains("main:"));
        assert!(text.contains("loop:"));
        assert!(text.contains("subq"));
    }

    #[test]
    fn entry_defaults_to_main() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.label("main");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.entry(), 1);
    }
}
