//! General purpose registers and their calling-convention classification.

use std::fmt;
use std::str::FromStr;

use crate::IsaError;

/// The sixteen 64-bit general purpose registers of the parsecs machine.
///
/// The set mirrors x86-64; the paper's listings only use `rax`, `rbx`,
/// `rdi`, `rsi` and `rsp`, but the compiler backend and the workloads use
/// the full set.
///
/// # Example
///
/// ```
/// use parsecs_isa::Reg;
/// assert!(Reg::Rbx.is_callee_saved());
/// assert!(!Reg::Rax.is_callee_saved());
/// assert_eq!(Reg::Rsp.to_string(), "%rsp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rbx,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rsi,
        Reg::Rdi,
        Reg::Rbp,
        Reg::Rsp,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Dense index of the register, `0..16`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Reg::index`].
    ///
    /// Returns `None` when `index >= 16`.
    pub fn from_index(index: usize) -> Option<Reg> {
        Reg::ALL.get(index).copied()
    }

    /// Callee-saved ("non volatile") registers per the System V AMD64 ABI.
    ///
    /// The paper's `fork` copies exactly these registers (plus the stack
    /// pointer) to the forked section, replacing the stack save/restore
    /// pairs of the `call` version.
    pub fn is_callee_saved(self) -> bool {
        matches!(
            self,
            Reg::Rbx | Reg::Rbp | Reg::Rsp | Reg::R12 | Reg::R13 | Reg::R14 | Reg::R15
        )
    }

    /// Caller-saved ("volatile") registers — the complement of
    /// [`Reg::is_callee_saved`].
    pub fn is_volatile(self) -> bool {
        !self.is_callee_saved()
    }

    /// Registers copied to a forked section by the paper's `fork`
    /// instruction.
    ///
    /// The paper copies "the stack pointer and the set of non volatile
    /// registers" and, in its running example, counts `%rdi` and `%rsi`
    /// among them (they are the registers the original call-based code
    /// saves and restores around calls). We therefore copy the callee-saved
    /// registers *plus* the argument registers; only the result register
    /// `%rax` and the scratch registers `%r10`/`%r11` are emptied and must
    /// be obtained through renaming — which is exactly the paper's
    /// `%rax` forwarding example.
    pub fn is_fork_copied(self) -> bool {
        self.is_callee_saved() || Reg::ARG_REGS.contains(&self)
    }

    /// The registers used to pass the first six integer arguments.
    pub const ARG_REGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];

    /// The register holding a function result.
    pub const RESULT: Reg = Reg::Rax;

    /// gas-style name without the `%` sigil (e.g. `"rax"`).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rbx => "rbx",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::Rbp => "rbp",
            Reg::Rsp => "rsp",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name())
    }
}

impl FromStr for Reg {
    type Err = IsaError;

    /// Parses a register name with or without the leading `%`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let name = s.strip_prefix('%').unwrap_or(s);
        Reg::ALL
            .iter()
            .copied()
            .find(|r| r.name() == name)
            .ok_or_else(|| IsaError::UnknownRegister(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn parse_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
            assert_eq!(r.name().parse::<Reg>().unwrap(), r);
        }
        assert!("xyz".parse::<Reg>().is_err());
        assert!("%xmm0".parse::<Reg>().is_err());
    }

    #[test]
    fn sysv_volatility() {
        let callee_saved: Vec<Reg> = Reg::ALL
            .into_iter()
            .filter(|r| r.is_callee_saved())
            .collect();
        assert_eq!(
            callee_saved,
            vec![
                Reg::Rbx,
                Reg::Rbp,
                Reg::Rsp,
                Reg::R12,
                Reg::R13,
                Reg::R14,
                Reg::R15
            ]
        );
        for r in Reg::ALL {
            assert_ne!(r.is_callee_saved(), r.is_volatile());
        }
    }

    #[test]
    fn arg_registers_are_volatile() {
        for r in Reg::ARG_REGS {
            assert!(r.is_volatile(), "{r} must be volatile");
        }
        assert!(Reg::RESULT.is_volatile());
    }

    #[test]
    fn fork_copied_set_matches_the_paper() {
        // The paper's example copies rbx, rdi, rsi and the stack pointer;
        // the result register rax travels through renaming instead.
        for r in [Reg::Rbx, Reg::Rdi, Reg::Rsi, Reg::Rsp, Reg::Rbp, Reg::R12] {
            assert!(r.is_fork_copied(), "{r} must be copied at fork");
        }
        for r in [Reg::Rax, Reg::R10, Reg::R11] {
            assert!(!r.is_fork_copied(), "{r} must be emptied at fork");
        }
    }
}
