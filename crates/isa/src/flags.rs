//! Arithmetic flags and branch condition codes.

use std::fmt;
use std::str::FromStr;

use crate::IsaError;

/// The four arithmetic flags produced by ALU and compare instructions.
///
/// They follow x86 semantics: `zf` (zero), `sf` (sign), `cf` (carry,
/// unsigned overflow) and `of` (signed overflow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Zero flag: result was zero.
    pub zf: bool,
    /// Sign flag: result was negative when interpreted as signed.
    pub sf: bool,
    /// Carry flag: unsigned overflow / borrow.
    pub cf: bool,
    /// Overflow flag: signed overflow.
    pub of: bool,
}

impl Flags {
    /// Computes the flags of a subtraction `a - b`, which is also the flag
    /// semantics of `cmp b, a` in gas operand order (`cmp src, dst` compares
    /// `dst` with `src`).
    pub fn from_sub(a: u64, b: u64) -> Flags {
        let (res, borrow) = a.overflowing_sub(b);
        let (signed_res, signed_overflow) = (a as i64).overflowing_sub(b as i64);
        debug_assert_eq!(signed_res as u64, res);
        Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf: borrow,
            of: signed_overflow,
        }
    }

    /// Computes the flags of an addition `a + b`.
    pub fn from_add(a: u64, b: u64) -> Flags {
        let (res, carry) = a.overflowing_add(b);
        let (_, signed_overflow) = (a as i64).overflowing_add(b as i64);
        Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf: carry,
            of: signed_overflow,
        }
    }

    /// Computes the flags of a logical result (`and`, `or`, `xor`, `test`,
    /// shifts): carry and overflow are cleared.
    pub fn from_logic(res: u64) -> Flags {
        Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf: false,
            of: false,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[zf={} sf={} cf={} of={}]",
            self.zf as u8, self.sf as u8, self.cf as u8, self.of as u8
        )
    }
}

/// Branch condition codes, as used by `jcc` instructions.
///
/// The names follow the x86 mnemonics: `A`/`Ae`/`B`/`Be` are unsigned
/// comparisons, `G`/`Ge`/`L`/`Le` are signed comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    /// Equal (`je`): ZF.
    E,
    /// Not equal (`jne`): !ZF.
    Ne,
    /// Unsigned above (`ja`): !CF && !ZF.
    A,
    /// Unsigned above or equal (`jae`): !CF.
    Ae,
    /// Unsigned below (`jb`): CF.
    B,
    /// Unsigned below or equal (`jbe`): CF || ZF.
    Be,
    /// Signed greater (`jg`): !ZF && SF == OF.
    G,
    /// Signed greater or equal (`jge`): SF == OF.
    Ge,
    /// Signed less (`jl`): SF != OF.
    L,
    /// Signed less or equal (`jle`): ZF || SF != OF.
    Le,
    /// Sign set (`js`): SF.
    S,
    /// Sign clear (`jns`): !SF.
    Ns,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 12] = [
        Cond::E,
        Cond::Ne,
        Cond::A,
        Cond::Ae,
        Cond::B,
        Cond::Be,
        Cond::G,
        Cond::Ge,
        Cond::L,
        Cond::Le,
        Cond::S,
        Cond::Ns,
    ];

    /// Evaluates the condition against a set of flags.
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::Ae => !f.cf,
            Cond::B => f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::G => !f.zf && (f.sf == f.of),
            Cond::Ge => f.sf == f.of,
            Cond::L => f.sf != f.of,
            Cond::Le => f.zf || (f.sf != f.of),
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }

    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::G => Cond::Le,
            Cond::Ge => Cond::L,
            Cond::L => Cond::Ge,
            Cond::Le => Cond::G,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }

    /// Suffix used in the mnemonic (e.g. `"ne"` for `jne`).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }

    /// Dense index used by the binary encoding.
    pub fn index(self) -> u8 {
        Cond::ALL
            .iter()
            .position(|c| *c == self)
            .expect("cond listed in ALL") as u8
    }

    /// Inverse of [`Cond::index`].
    pub fn from_index(index: u8) -> Option<Cond> {
        Cond::ALL.get(index as usize).copied()
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

impl FromStr for Cond {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Cond::ALL
            .iter()
            .copied()
            .find(|c| c.suffix() == s)
            .ok_or_else(|| IsaError::UnknownCondition(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_flags_match_comparisons() {
        let cases: [(u64, u64); 8] = [
            (0, 0),
            (1, 2),
            (2, 1),
            (5, 5),
            (u64::MAX, 1),
            (1, u64::MAX),
            (i64::MIN as u64, 1),
            (i64::MAX as u64, u64::MAX),
        ];
        for (a, b) in cases {
            let f = Flags::from_sub(a, b);
            assert_eq!(Cond::E.eval(f), a == b, "eq {a} {b}");
            assert_eq!(Cond::Ne.eval(f), a != b, "ne {a} {b}");
            assert_eq!(Cond::A.eval(f), a > b, "above {a} {b}");
            assert_eq!(Cond::Ae.eval(f), a >= b, "above-eq {a} {b}");
            assert_eq!(Cond::B.eval(f), a < b, "below {a} {b}");
            assert_eq!(Cond::Be.eval(f), a <= b, "below-eq {a} {b}");
            assert_eq!(Cond::G.eval(f), (a as i64) > (b as i64), "greater {a} {b}");
            assert_eq!(
                Cond::Ge.eval(f),
                (a as i64) >= (b as i64),
                "greater-eq {a} {b}"
            );
            assert_eq!(Cond::L.eval(f), (a as i64) < (b as i64), "less {a} {b}");
            assert_eq!(
                Cond::Le.eval(f),
                (a as i64) <= (b as i64),
                "less-eq {a} {b}"
            );
        }
    }

    #[test]
    fn negation_is_involutive_and_exclusive() {
        let flag_values = [
            Flags::default(),
            Flags {
                zf: true,
                ..Flags::default()
            },
            Flags {
                sf: true,
                ..Flags::default()
            },
            Flags {
                cf: true,
                ..Flags::default()
            },
            Flags {
                of: true,
                ..Flags::default()
            },
            Flags {
                sf: true,
                of: true,
                ..Flags::default()
            },
            Flags {
                zf: true,
                cf: true,
                sf: true,
                of: true,
            },
        ];
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for f in flag_values {
                assert_ne!(c.eval(f), c.negate().eval(f), "{c:?} with {f}");
            }
        }
    }

    #[test]
    fn cond_index_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_index(c.index()), Some(c));
            assert_eq!(c.suffix().parse::<Cond>().unwrap(), c);
        }
        assert_eq!(Cond::from_index(200), None);
    }

    #[test]
    fn add_and_logic_flags() {
        let f = Flags::from_add(u64::MAX, 1);
        assert!(f.zf && f.cf && !f.of);
        let f = Flags::from_add(i64::MAX as u64, 1);
        assert!(f.of && f.sf);
        let f = Flags::from_logic(0);
        assert!(f.zf && !f.cf && !f.of && !f.sf);
        let f = Flags::from_logic(u64::MAX);
        assert!(f.sf && !f.zf);
    }
}
