//! Architectural read/write effects of instructions.
//!
//! The tracer ([`parsecs-machine`](https://example.org)), the ILP limit
//! analyzer and the renaming hardware model all need to know, for every
//! instruction, which registers it reads and writes, whether it reads or
//! writes the flags, and how it touches memory. Centralising this analysis
//! here keeps the three consumers consistent.

use crate::{Inst, Operand, Reg};

/// How an instruction accesses data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEffect {
    /// No data-memory access.
    None,
    /// One 64-bit load.
    Load,
    /// One 64-bit store.
    Store,
    /// A read-modify-write access to a single location (e.g.
    /// `addq %rax, 0(%rsp)`).
    LoadStore,
}

impl MemEffect {
    /// Whether the instruction loads from memory.
    pub fn loads(self) -> bool {
        matches!(self, MemEffect::Load | MemEffect::LoadStore)
    }

    /// Whether the instruction stores to memory.
    pub fn stores(self) -> bool {
        matches!(self, MemEffect::Store | MemEffect::LoadStore)
    }
}

/// The architectural effects of one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Effects {
    /// Registers read (sources and address registers).
    pub reg_reads: Vec<Reg>,
    /// Registers written.
    pub reg_writes: Vec<Reg>,
    /// Whether the arithmetic flags are read (conditional branches).
    pub reads_flags: bool,
    /// Whether the arithmetic flags are written.
    pub writes_flags: bool,
    /// Data-memory behaviour.
    pub mem: MemEffect,
    /// Whether the instruction changes control flow.
    pub is_control: bool,
    /// Whether the only purpose of the register writes is stack-pointer
    /// bookkeeping (`push`/`pop`/`call`/`ret` rsp updates, or an ALU
    /// operation whose destination is `%rsp`).
    ///
    /// The paper (following Goossens & Parello 2013) singles these out as
    /// the dominant source of *parasitic* serialisation; the parallel-model
    /// ILP measurement excludes them.
    pub updates_stack_pointer: bool,
}

impl Effects {
    /// Computes the effects of an instruction.
    pub fn of(inst: &Inst) -> Effects {
        let mut e = Effects {
            reg_reads: Vec::new(),
            reg_writes: Vec::new(),
            reads_flags: false,
            writes_flags: false,
            mem: MemEffect::None,
            is_control: inst.is_control(),
            updates_stack_pointer: false,
        };

        let read_operand = |e: &mut Effects, op: &Operand, loads: bool| {
            e.reg_reads.extend(op.source_regs());
            if op.is_mem() && loads {
                e.mem = match e.mem {
                    MemEffect::None => MemEffect::Load,
                    other => other,
                };
            }
        };

        match inst {
            Inst::Mov { src, dst } => {
                read_operand(&mut e, src, true);
                e.write_operand(dst, false);
            }
            Inst::Lea { addr, dst } => {
                e.reg_reads.extend(addr.regs());
                e.reg_writes.push(*dst);
            }
            Inst::Push { src } => {
                read_operand(&mut e, src, true);
                e.reg_reads.push(Reg::Rsp);
                e.reg_writes.push(Reg::Rsp);
                e.mem = if e.mem.loads() {
                    MemEffect::LoadStore
                } else {
                    MemEffect::Store
                };
                e.updates_stack_pointer = true;
            }
            Inst::Pop { dst } => {
                e.reg_reads.push(Reg::Rsp);
                e.reg_writes.push(Reg::Rsp);
                e.mem = MemEffect::Load;
                e.write_operand(dst, true);
                e.updates_stack_pointer = true;
            }
            Inst::Alu { src, dst, .. } => {
                read_operand(&mut e, src, true);
                // The destination is both read and written.
                e.reg_reads.extend(dst.source_regs());
                e.write_operand(dst, true);
                e.writes_flags = true;
                if dst.as_reg() == Some(Reg::Rsp) {
                    e.updates_stack_pointer = true;
                }
            }
            Inst::Unary { dst, .. } => {
                e.reg_reads.extend(dst.source_regs());
                e.write_operand(dst, true);
                e.writes_flags = true;
                if dst.as_reg() == Some(Reg::Rsp) {
                    e.updates_stack_pointer = true;
                }
            }
            Inst::Cmp { src, dst } | Inst::Test { src, dst } => {
                read_operand(&mut e, src, true);
                read_operand(&mut e, dst, true);
                e.writes_flags = true;
            }
            Inst::Jmp { .. } => {}
            Inst::Jcc { .. } => {
                e.reads_flags = true;
            }
            Inst::Call { .. } => {
                e.reg_reads.push(Reg::Rsp);
                e.reg_writes.push(Reg::Rsp);
                e.mem = MemEffect::Store;
                e.updates_stack_pointer = true;
            }
            Inst::Ret => {
                e.reg_reads.push(Reg::Rsp);
                e.reg_writes.push(Reg::Rsp);
                e.mem = MemEffect::Load;
                e.updates_stack_pointer = true;
            }
            Inst::Fork { .. } => {
                // The forked section receives the stack pointer and the
                // non-volatile registers; the fork therefore reads them.
                e.reg_reads.push(Reg::Rsp);
                for r in Reg::ALL {
                    if r.is_fork_copied() && r != Reg::Rsp {
                        e.reg_reads.push(r);
                    }
                }
            }
            Inst::EndFork | Inst::Nop | Inst::Halt => {}
            Inst::Out { src } => {
                read_operand(&mut e, src, true);
            }
        }
        e
    }

    fn write_operand(&mut self, op: &Operand, rmw: bool) {
        match op {
            Operand::Reg(r) => self.reg_writes.push(*r),
            Operand::Mem(m) => {
                self.reg_reads.extend(m.regs());
                // A read-modify-write destination, or a store following an
                // earlier load by the same instruction, both loads and stores.
                self.mem = if rmw || self.mem.loads() {
                    MemEffect::LoadStore
                } else {
                    MemEffect::Store
                };
            }
            Operand::Imm(_) | Operand::Sym(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond, MemRef, Target, UnaryOp};

    fn effects(inst: Inst) -> Effects {
        Effects::of(&inst)
    }

    #[test]
    fn mov_register_to_register() {
        let e = effects(Inst::Mov {
            src: Operand::Reg(Reg::Rsi),
            dst: Operand::Reg(Reg::Rbx),
        });
        assert_eq!(e.reg_reads, vec![Reg::Rsi]);
        assert_eq!(e.reg_writes, vec![Reg::Rbx]);
        assert_eq!(e.mem, MemEffect::None);
        assert!(!e.writes_flags && !e.reads_flags && !e.is_control);
        assert!(!e.updates_stack_pointer);
    }

    #[test]
    fn mov_load_and_store() {
        let load = effects(Inst::Mov {
            src: Operand::mem(Reg::Rdi, 0),
            dst: Operand::Reg(Reg::Rax),
        });
        assert_eq!(load.mem, MemEffect::Load);
        assert_eq!(load.reg_reads, vec![Reg::Rdi]);
        assert_eq!(load.reg_writes, vec![Reg::Rax]);

        let store = effects(Inst::Mov {
            src: Operand::Reg(Reg::Rax),
            dst: Operand::mem(Reg::Rsp, 0),
        });
        assert_eq!(store.mem, MemEffect::Store);
        assert_eq!(store.reg_reads, vec![Reg::Rax, Reg::Rsp]);
        assert!(store.reg_writes.is_empty());
    }

    #[test]
    fn alu_memory_destination_is_rmw() {
        let e = effects(Inst::Alu {
            op: AluOp::Add,
            src: Operand::Reg(Reg::Rax),
            dst: Operand::mem(Reg::Rsp, 0),
        });
        assert_eq!(e.mem, MemEffect::LoadStore);
        assert!(e.writes_flags);
    }

    #[test]
    fn alu_memory_source_loads() {
        // addq 0(%rsp), %rax — instruction 2-12/5-1 of the paper's Figure 6.
        let e = effects(Inst::Alu {
            op: AluOp::Add,
            src: Operand::mem(Reg::Rsp, 0),
            dst: Operand::Reg(Reg::Rax),
        });
        assert_eq!(e.mem, MemEffect::Load);
        assert_eq!(e.reg_reads, vec![Reg::Rsp, Reg::Rax]);
        assert_eq!(e.reg_writes, vec![Reg::Rax]);
    }

    #[test]
    fn stack_pointer_classification() {
        assert!(
            effects(Inst::Push {
                src: Operand::Reg(Reg::Rbx)
            })
            .updates_stack_pointer
        );
        assert!(
            effects(Inst::Pop {
                dst: Operand::Reg(Reg::Rbx)
            })
            .updates_stack_pointer
        );
        assert!(
            effects(Inst::Call {
                target: Target::label("f")
            })
            .updates_stack_pointer
        );
        assert!(effects(Inst::Ret).updates_stack_pointer);
        let sub_rsp = effects(Inst::Alu {
            op: AluOp::Sub,
            src: Operand::imm(8),
            dst: Operand::Reg(Reg::Rsp),
        });
        assert!(sub_rsp.updates_stack_pointer);
        let sub_rbx = effects(Inst::Alu {
            op: AluOp::Sub,
            src: Operand::Reg(Reg::Rsi),
            dst: Operand::Reg(Reg::Rbx),
        });
        assert!(!sub_rbx.updates_stack_pointer);
    }

    #[test]
    fn push_pop_call_ret_touch_memory_and_rsp() {
        let push = effects(Inst::Push {
            src: Operand::Reg(Reg::Rbx),
        });
        assert_eq!(push.mem, MemEffect::Store);
        assert!(push.reg_reads.contains(&Reg::Rsp));
        assert_eq!(push.reg_writes, vec![Reg::Rsp]);

        let pop = effects(Inst::Pop {
            dst: Operand::Reg(Reg::Rbx),
        });
        assert_eq!(pop.mem, MemEffect::Load);
        assert_eq!(pop.reg_writes, vec![Reg::Rsp, Reg::Rbx]);

        let call = effects(Inst::Call {
            target: Target::label("f"),
        });
        assert_eq!(call.mem, MemEffect::Store);
        assert!(call.is_control);

        let ret = effects(Inst::Ret);
        assert_eq!(ret.mem, MemEffect::Load);
        assert!(ret.is_control);
    }

    #[test]
    fn branch_reads_flags_compare_writes_them() {
        let cmp = effects(Inst::Cmp {
            src: Operand::imm(2),
            dst: Operand::Reg(Reg::Rsi),
        });
        assert!(cmp.writes_flags && !cmp.reads_flags);
        assert_eq!(cmp.mem, MemEffect::None);

        let ja = effects(Inst::Jcc {
            cond: Cond::A,
            target: Target::label(".L2"),
        });
        assert!(ja.reads_flags && !ja.writes_flags);
        assert!(ja.is_control);

        let jmp = effects(Inst::Jmp {
            target: Target::label(".L1"),
        });
        assert!(!jmp.reads_flags && jmp.is_control);
    }

    #[test]
    fn fork_reads_nonvolatile_state_endfork_reads_nothing() {
        let fork = effects(Inst::Fork {
            target: Target::label("sum"),
        });
        assert!(fork.is_control);
        assert!(fork.reg_reads.contains(&Reg::Rsp));
        assert!(fork.reg_reads.contains(&Reg::Rbx));
        assert!(fork.reg_reads.contains(&Reg::R15));
        assert!(
            !fork.reg_reads.contains(&Reg::Rax),
            "volatile registers are not copied"
        );
        assert!(fork.reg_writes.is_empty());
        assert_eq!(
            fork.mem,
            MemEffect::None,
            "fork does not save a return address"
        );

        let end = effects(Inst::EndFork);
        assert!(end.is_control);
        assert!(end.reg_reads.is_empty() && end.reg_writes.is_empty());
    }

    #[test]
    fn lea_does_not_touch_memory() {
        let e = effects(Inst::Lea {
            addr: MemRef::base_index_scale(Reg::Rdi, Reg::Rsi, 8, 0),
            dst: Reg::Rdi,
        });
        assert_eq!(e.mem, MemEffect::None);
        assert_eq!(e.reg_reads, vec![Reg::Rdi, Reg::Rsi]);
        assert_eq!(e.reg_writes, vec![Reg::Rdi]);
        assert!(!e.writes_flags);
    }

    #[test]
    fn unary_and_out() {
        let inc = effects(Inst::Unary {
            op: UnaryOp::Inc,
            dst: Operand::Reg(Reg::Rcx),
        });
        assert_eq!(inc.reg_reads, vec![Reg::Rcx]);
        assert_eq!(inc.reg_writes, vec![Reg::Rcx]);
        assert!(inc.writes_flags);

        let out = effects(Inst::Out {
            src: Operand::Reg(Reg::Rax),
        });
        assert_eq!(out.reg_reads, vec![Reg::Rax]);
        assert!(out.reg_writes.is_empty());
        assert!(!out.is_control);
    }

    #[test]
    fn mem_effect_predicates() {
        assert!(MemEffect::Load.loads() && !MemEffect::Load.stores());
        assert!(MemEffect::Store.stores() && !MemEffect::Store.loads());
        assert!(MemEffect::LoadStore.loads() && MemEffect::LoadStore.stores());
        assert!(!MemEffect::None.loads() && !MemEffect::None.stores());
    }
}
