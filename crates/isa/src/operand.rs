//! Instruction operands: immediates, registers, memory references and data
//! symbols.

use std::fmt;

use crate::Reg;

/// A memory reference of the form `disp(base, index, scale)`, mirroring the
/// x86 addressing mode the paper's listings use (`8(%rdi)`,
/// `(%rdi,%rsi,8)`, `0(%rsp)` …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl MemRef {
    /// A `disp(base)` reference.
    pub fn base_disp(base: Reg, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// A `disp(base, index, scale)` reference.
    pub fn base_index_scale(base: Reg, index: Reg, scale: u8, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// An absolute reference (`disp` only), used for global data accesses.
    pub fn absolute(disp: i64) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp,
        }
    }

    /// Registers read to form the effective address.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Whether the effective address is relative to the stack pointer.
    ///
    /// The paper's renaming shortcut (statement ii of §4.2) and the ILP
    /// model's "ignore stack pointer dependencies" switch both key off this
    /// classification.
    pub fn is_stack_relative(&self) -> bool {
        self.base == Some(Reg::Rsp) || self.index == Some(Reg::Rsp)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            write!(f, "{}", self.disp)?;
        }
        match (self.base, self.index) {
            (None, None) => Ok(()),
            (Some(b), None) => write!(f, "({b})"),
            (base, Some(i)) => {
                write!(f, "(")?;
                if let Some(b) = base {
                    write!(f, "{b}")?;
                }
                write!(f, ",{i},{})", self.scale)
            }
        }
    }
}

/// An instruction operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An immediate constant (`$42`).
    Imm(i64),
    /// A register (`%rax`).
    Reg(Reg),
    /// A memory reference (`8(%rdi)`).
    Mem(MemRef),
    /// The address of a data symbol (`$t`), resolved to an absolute
    /// immediate by symbol resolution in [`crate::ProgramBuilder`].
    Sym(String),
}

impl Operand {
    /// Shorthand for an immediate operand.
    pub fn imm(value: i64) -> Operand {
        Operand::Imm(value)
    }

    /// Shorthand for a `disp(base)` memory operand.
    pub fn mem(base: Reg, disp: i64) -> Operand {
        Operand::Mem(MemRef::base_disp(base, disp))
    }

    /// Shorthand for a `disp(base, index, scale)` memory operand.
    pub fn mem_scaled(base: Reg, index: Reg, scale: u8, disp: i64) -> Operand {
        Operand::Mem(MemRef::base_index_scale(base, index, scale, disp))
    }

    /// Shorthand for a data-symbol address operand.
    pub fn sym(name: impl Into<String>) -> Operand {
        Operand::Sym(name.into())
    }

    /// Returns the register if the operand is a plain register.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the memory reference if the operand is a memory operand.
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this operand reads or writes memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }

    /// Registers read when this operand is used as a *source*.
    pub fn source_regs(&self) -> Vec<Reg> {
        match self {
            Operand::Imm(_) | Operand::Sym(_) => Vec::new(),
            Operand::Reg(r) => vec![*r],
            Operand::Mem(m) => m.regs().collect(),
        }
    }

    /// Registers read when this operand is used as a *destination*
    /// (address registers of a memory destination).
    pub fn dest_addr_regs(&self) -> Vec<Reg> {
        match self {
            Operand::Mem(m) => m.regs().collect(),
            _ => Vec::new(),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Operand {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Sym(s) => write!(f, "${s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_gas_syntax() {
        assert_eq!(Operand::imm(2).to_string(), "$2");
        assert_eq!(Operand::Reg(Reg::Rsi).to_string(), "%rsi");
        assert_eq!(Operand::mem(Reg::Rdi, 8).to_string(), "8(%rdi)");
        assert_eq!(Operand::mem(Reg::Rsp, 0).to_string(), "(%rsp)");
        assert_eq!(
            Operand::mem_scaled(Reg::Rdi, Reg::Rsi, 8, 0).to_string(),
            "(%rdi,%rsi,8)"
        );
        assert_eq!(
            Operand::mem_scaled(Reg::Rdi, Reg::Rsi, 8, 16).to_string(),
            "16(%rdi,%rsi,8)"
        );
        assert_eq!(Operand::Mem(MemRef::absolute(0x40)).to_string(), "64");
        assert_eq!(Operand::sym("t").to_string(), "$t");
    }

    #[test]
    fn source_and_address_registers() {
        let op = Operand::mem_scaled(Reg::Rdi, Reg::Rsi, 8, 0);
        assert_eq!(op.source_regs(), vec![Reg::Rdi, Reg::Rsi]);
        assert_eq!(op.dest_addr_regs(), vec![Reg::Rdi, Reg::Rsi]);
        assert_eq!(Operand::Reg(Reg::Rax).source_regs(), vec![Reg::Rax]);
        assert!(Operand::Reg(Reg::Rax).dest_addr_regs().is_empty());
        assert!(Operand::imm(7).source_regs().is_empty());
    }

    #[test]
    fn stack_relative_classification() {
        assert!(MemRef::base_disp(Reg::Rsp, 0).is_stack_relative());
        assert!(MemRef::base_disp(Reg::Rsp, 8).is_stack_relative());
        assert!(!MemRef::base_disp(Reg::Rdi, 0).is_stack_relative());
        assert!(MemRef::base_index_scale(Reg::Rax, Reg::Rsp, 1, 0).is_stack_relative());
    }

    #[test]
    fn conversions() {
        assert_eq!(Operand::from(Reg::Rbx), Operand::Reg(Reg::Rbx));
        assert_eq!(Operand::from(5i64), Operand::Imm(5));
        let m = MemRef::base_disp(Reg::Rdi, 8);
        assert_eq!(Operand::from(m), Operand::Mem(m));
        assert_eq!(Operand::Reg(Reg::Rax).as_reg(), Some(Reg::Rax));
        assert_eq!(Operand::imm(1).as_reg(), None);
        assert!(Operand::mem(Reg::Rax, 0).as_mem().is_some());
    }
}
