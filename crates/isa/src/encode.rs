//! Binary encoding and decoding of instructions and programs.
//!
//! The encoding is a simple, compact byte format used by the instruction
//! memory model of the simulators: code addresses stay instruction indices,
//! so the encoding does not need to be fixed-width, only deterministic and
//! round-trippable.

use std::collections::BTreeMap;

use crate::{
    AluOp, Cond, DataItem, Inst, IsaError, MemRef, Operand, Program, Reg, Target, UnaryOp,
};

const OP_MOV: u8 = 0;
const OP_LEA: u8 = 1;
const OP_PUSH: u8 = 2;
const OP_POP: u8 = 3;
const OP_ALU: u8 = 4;
const OP_UNARY: u8 = 5;
const OP_CMP: u8 = 6;
const OP_TEST: u8 = 7;
const OP_JMP: u8 = 8;
const OP_JCC: u8 = 9;
const OP_CALL: u8 = 10;
const OP_RET: u8 = 11;
const OP_FORK: u8 = 12;
const OP_ENDFORK: u8 = 13;
const OP_OUT: u8 = 14;
const OP_NOP: u8 = 15;
const OP_HALT: u8 = 16;

const TAG_IMM: u8 = 0;
const TAG_REG: u8 = 1;
const TAG_MEM: u8 = 2;

/// Encodes one instruction to bytes.
///
/// # Errors
///
/// Returns an error if the instruction still contains an unresolved branch
/// target or an unresolved data symbol.
pub fn encode(inst: &Inst) -> Result<Vec<u8>, IsaError> {
    let mut out = Vec::with_capacity(16);
    match inst {
        Inst::Mov { src, dst } => {
            out.push(OP_MOV);
            encode_operand(src, &mut out)?;
            encode_operand(dst, &mut out)?;
        }
        Inst::Lea { addr, dst } => {
            out.push(OP_LEA);
            encode_mem(addr, &mut out);
            out.push(dst.index() as u8);
        }
        Inst::Push { src } => {
            out.push(OP_PUSH);
            encode_operand(src, &mut out)?;
        }
        Inst::Pop { dst } => {
            out.push(OP_POP);
            encode_operand(dst, &mut out)?;
        }
        Inst::Alu { op, src, dst } => {
            out.push(OP_ALU);
            out.push(AluOp::ALL.iter().position(|o| o == op).expect("listed") as u8);
            encode_operand(src, &mut out)?;
            encode_operand(dst, &mut out)?;
        }
        Inst::Unary { op, dst } => {
            out.push(OP_UNARY);
            out.push(UnaryOp::ALL.iter().position(|o| o == op).expect("listed") as u8);
            encode_operand(dst, &mut out)?;
        }
        Inst::Cmp { src, dst } => {
            out.push(OP_CMP);
            encode_operand(src, &mut out)?;
            encode_operand(dst, &mut out)?;
        }
        Inst::Test { src, dst } => {
            out.push(OP_TEST);
            encode_operand(src, &mut out)?;
            encode_operand(dst, &mut out)?;
        }
        Inst::Jmp { target } => {
            out.push(OP_JMP);
            encode_target(target, &mut out)?;
        }
        Inst::Jcc { cond, target } => {
            out.push(OP_JCC);
            out.push(cond.index());
            encode_target(target, &mut out)?;
        }
        Inst::Call { target } => {
            out.push(OP_CALL);
            encode_target(target, &mut out)?;
        }
        Inst::Ret => out.push(OP_RET),
        Inst::Fork { target } => {
            out.push(OP_FORK);
            encode_target(target, &mut out)?;
        }
        Inst::EndFork => out.push(OP_ENDFORK),
        Inst::Out { src } => {
            out.push(OP_OUT);
            encode_operand(src, &mut out)?;
        }
        Inst::Nop => out.push(OP_NOP),
        Inst::Halt => out.push(OP_HALT),
    }
    Ok(out)
}

/// Decodes one instruction from the front of `bytes`, returning the
/// instruction and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`IsaError::Decode`] on truncated or malformed input.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), IsaError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let opcode = cursor.u8()?;
    let inst = match opcode {
        OP_MOV => Inst::Mov {
            src: cursor.operand()?,
            dst: cursor.operand()?,
        },
        OP_LEA => Inst::Lea {
            addr: cursor.mem()?,
            dst: cursor.reg()?,
        },
        OP_PUSH => Inst::Push {
            src: cursor.operand()?,
        },
        OP_POP => Inst::Pop {
            dst: cursor.operand()?,
        },
        OP_ALU => {
            let op = *AluOp::ALL
                .get(cursor.u8()? as usize)
                .ok_or_else(|| IsaError::Decode("bad alu op".into()))?;
            Inst::Alu {
                op,
                src: cursor.operand()?,
                dst: cursor.operand()?,
            }
        }
        OP_UNARY => {
            let op = *UnaryOp::ALL
                .get(cursor.u8()? as usize)
                .ok_or_else(|| IsaError::Decode("bad unary op".into()))?;
            Inst::Unary {
                op,
                dst: cursor.operand()?,
            }
        }
        OP_CMP => Inst::Cmp {
            src: cursor.operand()?,
            dst: cursor.operand()?,
        },
        OP_TEST => Inst::Test {
            src: cursor.operand()?,
            dst: cursor.operand()?,
        },
        OP_JMP => Inst::Jmp {
            target: cursor.target()?,
        },
        OP_JCC => {
            let cond = Cond::from_index(cursor.u8()?)
                .ok_or_else(|| IsaError::Decode("bad condition code".into()))?;
            Inst::Jcc {
                cond,
                target: cursor.target()?,
            }
        }
        OP_CALL => Inst::Call {
            target: cursor.target()?,
        },
        OP_RET => Inst::Ret,
        OP_FORK => Inst::Fork {
            target: cursor.target()?,
        },
        OP_ENDFORK => Inst::EndFork,
        OP_OUT => Inst::Out {
            src: cursor.operand()?,
        },
        OP_NOP => Inst::Nop,
        OP_HALT => Inst::Halt,
        other => return Err(IsaError::Decode(format!("unknown opcode {other}"))),
    };
    Ok((inst, cursor.pos))
}

/// Encodes a whole resolved program (instructions, data segment and entry
/// point). Code labels are not preserved — targets are already absolute.
///
/// # Errors
///
/// Returns an error if any instruction cannot be encoded.
pub fn encode_program(program: &Program) -> Result<Vec<u8>, IsaError> {
    let mut out = Vec::new();
    out.extend((program.entry() as u64).to_le_bytes());
    out.extend((program.len() as u64).to_le_bytes());
    for inst in program.insns() {
        let bytes = encode(inst)?;
        out.extend((bytes.len() as u16).to_le_bytes());
        out.extend(bytes);
    }
    out.extend((program.data().len() as u64).to_le_bytes());
    for item in program.data() {
        out.extend((item.name.len() as u16).to_le_bytes());
        out.extend(item.name.as_bytes());
        out.extend(item.offset.to_le_bytes());
        out.extend((item.words.len() as u64).to_le_bytes());
        for w in &item.words {
            out.extend(w.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decodes a program produced by [`encode_program`].
///
/// # Errors
///
/// Returns [`IsaError::Decode`] on malformed input, or a resolution error if
/// the decoded program is structurally invalid.
pub fn decode_program(bytes: &[u8]) -> Result<Program, IsaError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let entry = cursor.u64()? as usize;
    let count = cursor.u64()? as usize;
    let mut insns = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let len = cursor.u16()? as usize;
        let slice = cursor.slice(len)?;
        let (inst, used) = decode(slice)?;
        if used != len {
            return Err(IsaError::Decode(
                "trailing bytes in instruction record".into(),
            ));
        }
        insns.push(inst);
    }
    let data_count = cursor.u64()? as usize;
    let mut data = Vec::with_capacity(data_count.min(1 << 16));
    for _ in 0..data_count {
        let name_len = cursor.u16()? as usize;
        let name_bytes = cursor.slice(name_len)?;
        let name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| IsaError::Decode("data symbol name is not utf-8".into()))?;
        let offset = cursor.u64()?;
        let words_len = cursor.u64()? as usize;
        let mut words = Vec::with_capacity(words_len.min(1 << 20));
        for _ in 0..words_len {
            words.push(cursor.u64()?);
        }
        data.push(DataItem {
            name,
            offset,
            words,
        });
    }
    Program::new(insns, BTreeMap::new(), data, Some(entry))
}

fn encode_operand(op: &Operand, out: &mut Vec<u8>) -> Result<(), IsaError> {
    match op {
        Operand::Imm(v) => {
            out.push(TAG_IMM);
            out.extend(v.to_le_bytes());
        }
        Operand::Reg(r) => {
            out.push(TAG_REG);
            out.push(r.index() as u8);
        }
        Operand::Mem(m) => {
            out.push(TAG_MEM);
            encode_mem(m, out);
        }
        Operand::Sym(name) => return Err(IsaError::UndefinedSymbol(name.clone())),
    }
    Ok(())
}

fn encode_mem(m: &MemRef, out: &mut Vec<u8>) {
    let mut flags = 0u8;
    if m.base.is_some() {
        flags |= 1;
    }
    if m.index.is_some() {
        flags |= 2;
    }
    out.push(flags);
    out.push(m.base.map(|r| r.index() as u8).unwrap_or(0));
    out.push(m.index.map(|r| r.index() as u8).unwrap_or(0));
    out.push(m.scale);
    out.extend(m.disp.to_le_bytes());
}

fn encode_target(t: &Target, out: &mut Vec<u8>) -> Result<(), IsaError> {
    let index = t.resolved()?;
    out.extend((index as u64).to_le_bytes());
    Ok(())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn slice(&mut self, len: usize) -> Result<&'a [u8], IsaError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|e| *e <= self.bytes.len())
            .ok_or_else(|| IsaError::Decode("truncated input".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, IsaError> {
        Ok(self.slice(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, IsaError> {
        Ok(u16::from_le_bytes(
            self.slice(2)?.try_into().expect("length checked"),
        ))
    }

    fn u64(&mut self) -> Result<u64, IsaError> {
        Ok(u64::from_le_bytes(
            self.slice(8)?.try_into().expect("length checked"),
        ))
    }

    fn i64(&mut self) -> Result<i64, IsaError> {
        Ok(i64::from_le_bytes(
            self.slice(8)?.try_into().expect("length checked"),
        ))
    }

    fn reg(&mut self) -> Result<Reg, IsaError> {
        Reg::from_index(self.u8()? as usize).ok_or_else(|| IsaError::Decode("bad register".into()))
    }

    fn mem(&mut self) -> Result<MemRef, IsaError> {
        let flags = self.u8()?;
        let base_raw = self.u8()?;
        let index_raw = self.u8()?;
        let scale = self.u8()?;
        let disp = self.i64()?;
        let base = if flags & 1 != 0 {
            Some(
                Reg::from_index(base_raw as usize)
                    .ok_or_else(|| IsaError::Decode("bad base register".into()))?,
            )
        } else {
            None
        };
        let index = if flags & 2 != 0 {
            Some(
                Reg::from_index(index_raw as usize)
                    .ok_or_else(|| IsaError::Decode("bad index register".into()))?,
            )
        } else {
            None
        };
        Ok(MemRef {
            base,
            index,
            scale,
            disp,
        })
    }

    fn operand(&mut self) -> Result<Operand, IsaError> {
        match self.u8()? {
            TAG_IMM => Ok(Operand::Imm(self.i64()?)),
            TAG_REG => Ok(Operand::Reg(self.reg()?)),
            TAG_MEM => Ok(Operand::Mem(self.mem()?)),
            other => Err(IsaError::Decode(format!("unknown operand tag {other}"))),
        }
    }

    fn target(&mut self) -> Result<Target, IsaError> {
        Ok(Target::abs(self.u64()? as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0usize..16).prop_map(|i| Reg::from_index(i).unwrap())
    }

    fn mem_strategy() -> impl Strategy<Value = MemRef> {
        (
            proptest::option::of(reg_strategy()),
            proptest::option::of(reg_strategy()),
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
            -1024i64..1024,
        )
            .prop_map(|(base, index, scale, disp)| MemRef {
                base,
                index,
                scale,
                disp,
            })
    }

    fn operand_strategy() -> impl Strategy<Value = Operand> {
        prop_oneof![
            any::<i64>().prop_map(Operand::Imm),
            reg_strategy().prop_map(Operand::Reg),
            mem_strategy().prop_map(Operand::Mem),
        ]
    }

    fn target_strategy() -> impl Strategy<Value = Target> {
        (0usize..4096).prop_map(Target::abs)
    }

    fn inst_strategy() -> impl Strategy<Value = Inst> {
        prop_oneof![
            (operand_strategy(), operand_strategy()).prop_map(|(src, dst)| Inst::Mov { src, dst }),
            (mem_strategy(), reg_strategy()).prop_map(|(addr, dst)| Inst::Lea { addr, dst }),
            operand_strategy().prop_map(|src| Inst::Push { src }),
            operand_strategy().prop_map(|dst| Inst::Pop { dst }),
            (
                0usize..AluOp::ALL.len(),
                operand_strategy(),
                operand_strategy()
            )
                .prop_map(|(op, src, dst)| Inst::Alu {
                    op: AluOp::ALL[op],
                    src,
                    dst
                }),
            (0usize..UnaryOp::ALL.len(), operand_strategy()).prop_map(|(op, dst)| Inst::Unary {
                op: UnaryOp::ALL[op],
                dst
            }),
            (operand_strategy(), operand_strategy()).prop_map(|(src, dst)| Inst::Cmp { src, dst }),
            (operand_strategy(), operand_strategy()).prop_map(|(src, dst)| Inst::Test { src, dst }),
            target_strategy().prop_map(|target| Inst::Jmp { target }),
            (0usize..Cond::ALL.len(), target_strategy()).prop_map(|(c, target)| Inst::Jcc {
                cond: Cond::ALL[c],
                target
            }),
            target_strategy().prop_map(|target| Inst::Call { target }),
            Just(Inst::Ret),
            target_strategy().prop_map(|target| Inst::Fork { target }),
            Just(Inst::EndFork),
            operand_strategy().prop_map(|src| Inst::Out { src }),
            Just(Inst::Nop),
            Just(Inst::Halt),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(inst in inst_strategy()) {
            let bytes = encode(&inst).unwrap();
            let (decoded, used) = decode(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(decoded, inst);
        }

        #[test]
        fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode(&bytes);
        }
    }

    #[test]
    fn unresolved_target_cannot_be_encoded() {
        let inst = Inst::Jmp {
            target: Target::label("somewhere"),
        };
        assert!(encode(&inst).is_err());
        let inst = Inst::Mov {
            src: Operand::sym("t"),
            dst: Operand::Reg(Reg::Rax),
        };
        assert!(encode(&inst).is_err());
    }

    #[test]
    fn program_roundtrip_preserves_code_data_and_entry() {
        use crate::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        b.global_data("t", &[5, 6, 7]);
        b.nop();
        b.label("main");
        b.movq(Operand::sym("t"), Reg::Rdi);
        b.movq(Operand::mem(Reg::Rdi, 16), Reg::Rax);
        b.out(Reg::Rax);
        b.halt();
        let p = b.build().unwrap();
        let bytes = encode_program(&p).unwrap();
        let q = decode_program(&bytes).unwrap();
        assert_eq!(q.entry(), p.entry());
        assert_eq!(q.insns(), p.insns());
        assert_eq!(q.data(), p.data());
    }

    #[test]
    fn truncated_program_is_rejected() {
        use crate::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let bytes = encode_program(&p).unwrap();
        for cut in 1..bytes.len() {
            assert!(
                decode_program(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
