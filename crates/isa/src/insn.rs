//! The instruction set, including the paper's `fork`/`endfork` extension.

use std::fmt;

use crate::{Cond, IsaError, MemRef, Operand, Reg};

/// A control-flow target: a symbolic label, an absolute instruction index,
/// or both once the label has been resolved.
///
/// Code addresses in the parsecs machine are *instruction indices*; the
/// encoding is fixed-width so nothing is lost with respect to byte
/// addressing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Target {
    /// Symbolic name, kept for pretty-printing even after resolution.
    pub label: Option<String>,
    /// Absolute instruction index, present after resolution.
    pub index: Option<usize>,
}

impl Target {
    /// A symbolic, unresolved target.
    pub fn label(name: impl Into<String>) -> Target {
        Target {
            label: Some(name.into()),
            index: None,
        }
    }

    /// An absolute, already-resolved target.
    pub fn abs(index: usize) -> Target {
        Target {
            label: None,
            index: Some(index),
        }
    }

    /// Whether the target has been resolved to an instruction index.
    pub fn is_resolved(&self) -> bool {
        self.index.is_some()
    }

    /// The resolved instruction index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] when the target is still
    /// symbolic.
    pub fn resolved(&self) -> Result<usize, IsaError> {
        self.index.ok_or_else(|| {
            IsaError::UndefinedLabel(self.label.clone().unwrap_or_else(|| "<anonymous>".into()))
        })
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.label, self.index) {
            (Some(l), _) => f.write_str(l),
            (None, Some(i)) => write!(f, "@{i}"),
            (None, None) => f.write_str("<unresolved>"),
        }
    }
}

/// Binary ALU operations of the form `op src, dst` (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    Imul,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 9] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Imul,
    ];

    /// gas mnemonic with the `q` (64-bit) suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "addq",
            AluOp::Sub => "subq",
            AluOp::And => "andq",
            AluOp::Or => "orq",
            AluOp::Xor => "xorq",
            AluOp::Shl => "shlq",
            AluOp::Shr => "shrq",
            AluOp::Sar => "sarq",
            AluOp::Imul => "imulq",
        }
    }

    /// Applies the operation to two 64-bit values, returning the result.
    pub fn apply(self, dst: u64, src: u64) -> u64 {
        match self {
            AluOp::Add => dst.wrapping_add(src),
            AluOp::Sub => dst.wrapping_sub(src),
            AluOp::And => dst & src,
            AluOp::Or => dst | src,
            AluOp::Xor => dst ^ src,
            AluOp::Shl => dst.wrapping_shl((src & 63) as u32),
            AluOp::Shr => dst.wrapping_shr((src & 63) as u32),
            AluOp::Sar => ((dst as i64).wrapping_shr((src & 63) as u32)) as u64,
            AluOp::Imul => (dst as i64).wrapping_mul(src as i64) as u64,
        }
    }
}

/// Unary read-modify-write operations on a single operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Neg,
    Not,
    Inc,
    Dec,
}

impl UnaryOp {
    /// All unary operations, in encoding order.
    pub const ALL: [UnaryOp; 4] = [UnaryOp::Neg, UnaryOp::Not, UnaryOp::Inc, UnaryOp::Dec];

    /// gas mnemonic with the `q` suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "negq",
            UnaryOp::Not => "notq",
            UnaryOp::Inc => "incq",
            UnaryOp::Dec => "decq",
        }
    }

    /// Applies the operation to a 64-bit value.
    pub fn apply(self, v: u64) -> u64 {
        match self {
            UnaryOp::Neg => (v as i64).wrapping_neg() as u64,
            UnaryOp::Not => !v,
            UnaryOp::Inc => v.wrapping_add(1),
            UnaryOp::Dec => v.wrapping_sub(1),
        }
    }
}

/// A single machine instruction.
///
/// Operand order follows gas/AT&T syntax: the **rightmost** operand is the
/// destination, matching the paper's listings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `movq src, dst` — copy a 64-bit value.
    Mov {
        /// Source operand (immediate, register, memory or data symbol).
        src: Operand,
        /// Destination operand (register or memory).
        dst: Operand,
    },
    /// `leaq addr, dst` — compute an effective address without accessing
    /// memory.
    Lea {
        /// The address expression.
        addr: MemRef,
        /// Destination register.
        dst: Reg,
    },
    /// `pushq src` — decrement `%rsp` by 8 and store `src`.
    Push {
        /// Pushed value.
        src: Operand,
    },
    /// `popq dst` — load from `(%rsp)` and increment `%rsp` by 8.
    Pop {
        /// Destination operand (register or memory).
        dst: Operand,
    },
    /// Binary ALU operation `op src, dst` (`dst = dst op src`), setting
    /// the flags.
    Alu {
        /// The operation.
        op: AluOp,
        /// Source operand.
        src: Operand,
        /// Destination operand (also read).
        dst: Operand,
    },
    /// Unary read-modify-write operation, setting the flags.
    Unary {
        /// The operation.
        op: UnaryOp,
        /// Operand, both read and written.
        dst: Operand,
    },
    /// `cmpq src, dst` — set flags according to `dst - src`.
    Cmp {
        /// Right-hand side of the comparison.
        src: Operand,
        /// Left-hand side of the comparison.
        dst: Operand,
    },
    /// `testq src, dst` — set flags according to `dst & src`.
    Test {
        /// Right-hand side.
        src: Operand,
        /// Left-hand side.
        dst: Operand,
    },
    /// Unconditional jump.
    Jmp {
        /// Jump target.
        target: Target,
    },
    /// Conditional jump.
    Jcc {
        /// Branch condition.
        cond: Cond,
        /// Jump target.
        target: Target,
    },
    /// `call target` — push the return address and jump.
    Call {
        /// Callee entry point.
        target: Target,
    },
    /// `ret` — pop the return address and jump to it.
    Ret,
    /// `fork target` — the paper's section-creating instruction.
    ///
    /// Unlike `call`, no return address is saved: the *current* section
    /// continues at `target` (the callee path) while a *new* section is
    /// created that starts at the next instruction (the resume path) with a
    /// copy of the stack pointer and the non-volatile registers.
    Fork {
        /// Callee entry point.
        target: Target,
    },
    /// `endfork` — ends the current section. Unlike `ret`, control is not
    /// transferred anywhere: the hosting core simply dequeues its next
    /// section-creation message.
    EndFork,
    /// `out src` — append a 64-bit value to the machine's observation
    /// channel. Used by the workloads to expose results without modelling
    /// I/O devices.
    Out {
        /// The observed value.
        src: Operand,
    },
    /// No operation.
    Nop,
    /// Stop the machine (end of the whole run).
    Halt,
}

impl Inst {
    /// The gas mnemonic of the instruction.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Mov { .. } => "movq",
            Inst::Lea { .. } => "leaq",
            Inst::Push { .. } => "pushq",
            Inst::Pop { .. } => "popq",
            Inst::Alu { op, .. } => op.mnemonic(),
            Inst::Unary { op, .. } => op.mnemonic(),
            Inst::Cmp { .. } => "cmpq",
            Inst::Test { .. } => "testq",
            Inst::Jmp { .. } => "jmp",
            Inst::Jcc { .. } => "jcc",
            Inst::Call { .. } => "call",
            Inst::Ret => "ret",
            Inst::Fork { .. } => "fork",
            Inst::EndFork => "endfork",
            Inst::Out { .. } => "out",
            Inst::Nop => "nop",
            Inst::Halt => "halt",
        }
    }

    /// Whether the instruction changes the control flow (jump, branch,
    /// call, ret, fork, endfork, halt).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::Call { .. }
                | Inst::Ret
                | Inst::Fork { .. }
                | Inst::EndFork
                | Inst::Halt
        )
    }

    /// Whether the instruction is one of the paper's section instructions.
    pub fn is_section_boundary(&self) -> bool {
        matches!(self, Inst::Fork { .. } | Inst::EndFork)
    }

    /// The control-flow target, if the instruction has one.
    pub fn target(&self) -> Option<&Target> {
        match self {
            Inst::Jmp { target }
            | Inst::Jcc { target, .. }
            | Inst::Call { target }
            | Inst::Fork { target } => Some(target),
            _ => None,
        }
    }

    /// Mutable access to the control-flow target, if any. Used by label
    /// resolution.
    pub fn target_mut(&mut self) -> Option<&mut Target> {
        match self {
            Inst::Jmp { target }
            | Inst::Jcc { target, .. }
            | Inst::Call { target }
            | Inst::Fork { target } => Some(target),
            _ => None,
        }
    }

    /// All data symbols referenced by the instruction's operands.
    pub fn symbols(&self) -> Vec<&str> {
        self.operands()
            .into_iter()
            .filter_map(|op| match op {
                Operand::Sym(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The instruction's operands in gas order (sources first).
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Inst::Mov { src, dst }
            | Inst::Alu { src, dst, .. }
            | Inst::Cmp { src, dst }
            | Inst::Test { src, dst } => vec![src, dst],
            Inst::Push { src } | Inst::Out { src } => vec![src],
            Inst::Pop { dst } | Inst::Unary { dst, .. } => vec![dst],
            _ => Vec::new(),
        }
    }

    /// Checks structural validity of the operand combination.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidOperands`] for combinations the machine
    /// refuses to execute, such as memory-to-memory moves, immediate
    /// destinations, or a data-symbol destination.
    pub fn validate(&self) -> Result<(), IsaError> {
        let invalid = |reason: String| IsaError::InvalidOperands {
            mnemonic: self.mnemonic(),
            reason,
        };
        let check_dst = |dst: &Operand| -> Result<(), IsaError> {
            match dst {
                Operand::Imm(_) => Err(invalid("destination cannot be an immediate".into())),
                Operand::Sym(_) => Err(invalid("destination cannot be a data symbol".into())),
                _ => Ok(()),
            }
        };
        match self {
            Inst::Mov { src, dst } | Inst::Alu { src, dst, .. } => {
                check_dst(dst)?;
                if src.is_mem() && dst.is_mem() {
                    return Err(invalid(
                        "memory-to-memory operations are not allowed".into(),
                    ));
                }
                Ok(())
            }
            Inst::Cmp { src, dst } | Inst::Test { src, dst } => {
                if src.is_mem() && dst.is_mem() {
                    return Err(invalid(
                        "memory-to-memory operations are not allowed".into(),
                    ));
                }
                Ok(())
            }
            Inst::Pop { dst } | Inst::Unary { dst, .. } => check_dst(dst),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Mov { src, dst } => write!(f, "movq    {src}, {dst}"),
            Inst::Lea { addr, dst } => write!(f, "leaq    {addr}, {dst}"),
            Inst::Push { src } => write!(f, "pushq   {src}"),
            Inst::Pop { dst } => write!(f, "popq    {dst}"),
            Inst::Alu { op, src, dst } => write!(f, "{:<7} {src}, {dst}", op.mnemonic()),
            Inst::Unary { op, dst } => write!(f, "{:<7} {dst}", op.mnemonic()),
            Inst::Cmp { src, dst } => write!(f, "cmpq    {src}, {dst}"),
            Inst::Test { src, dst } => write!(f, "testq   {src}, {dst}"),
            Inst::Jmp { target } => write!(f, "jmp     {target}"),
            Inst::Jcc { cond, target } => write!(f, "j{:<6} {target}", cond.suffix()),
            Inst::Call { target } => write!(f, "call    {target}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Fork { target } => write!(f, "fork    {target}"),
            Inst::EndFork => write!(f, "endfork"),
            Inst::Out { src } => write!(f, "out     {src}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rax() -> Operand {
        Operand::Reg(Reg::Rax)
    }

    #[test]
    fn display_matches_paper_listings() {
        // Lines from Figure 2 of the paper.
        let cmp = Inst::Cmp {
            src: Operand::imm(2),
            dst: Operand::Reg(Reg::Rsi),
        };
        assert_eq!(cmp.to_string(), "cmpq    $2, %rsi");
        let ja = Inst::Jcc {
            cond: Cond::A,
            target: Target::label(".L2"),
        };
        assert_eq!(ja.to_string(), "ja      .L2");
        let mov = Inst::Mov {
            src: Operand::mem(Reg::Rdi, 0),
            dst: rax(),
        };
        assert_eq!(mov.to_string(), "movq    (%rdi), %rax");
        let add = Inst::Alu {
            op: AluOp::Add,
            src: Operand::mem(Reg::Rdi, 8),
            dst: rax(),
        };
        assert_eq!(add.to_string(), "addq    8(%rdi), %rax");
        let lea = Inst::Lea {
            addr: MemRef::base_index_scale(Reg::Rdi, Reg::Rsi, 8, 0),
            dst: Reg::Rdi,
        };
        assert_eq!(lea.to_string(), "leaq    (%rdi,%rsi,8), %rdi");
        let fork = Inst::Fork {
            target: Target::label("sum"),
        };
        assert_eq!(fork.to_string(), "fork    sum");
        assert_eq!(Inst::EndFork.to_string(), "endfork");
        let shr = Inst::Alu {
            op: AluOp::Shr,
            src: Operand::imm(1),
            dst: Operand::Reg(Reg::Rsi),
        };
        assert_eq!(shr.to_string(), "shrq    $1, %rsi");
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Ret.is_control());
        assert!(Inst::Halt.is_control());
        assert!(Inst::Fork {
            target: Target::label("f")
        }
        .is_control());
        assert!(Inst::EndFork.is_control());
        assert!(Inst::EndFork.is_section_boundary());
        assert!(!Inst::Nop.is_control());
        assert!(!Inst::Mov {
            src: rax(),
            dst: Operand::Reg(Reg::Rbx)
        }
        .is_control());
        assert!(!Inst::Call {
            target: Target::label("f")
        }
        .is_section_boundary());
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX);
        assert_eq!(AluOp::Shr.apply(5, 1), 2);
        assert_eq!(AluOp::Sar.apply((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(
            AluOp::Shl.apply(1, 65),
            2,
            "shift count is masked to 6 bits"
        );
        assert_eq!(AluOp::Imul.apply(7, 6), 42);
        assert_eq!(AluOp::Imul.apply((-7i64) as u64, 6), (-42i64) as u64);
        assert_eq!(UnaryOp::Neg.apply(5), (-5i64) as u64);
        assert_eq!(UnaryOp::Not.apply(0), u64::MAX);
        assert_eq!(UnaryOp::Inc.apply(u64::MAX), 0);
        assert_eq!(UnaryOp::Dec.apply(0), u64::MAX);
    }

    #[test]
    fn validation_rejects_bad_operand_combinations() {
        let mem = Operand::mem(Reg::Rsp, 0);
        let bad_mov = Inst::Mov {
            src: mem.clone(),
            dst: mem.clone(),
        };
        assert!(bad_mov.validate().is_err());
        let bad_dst = Inst::Mov {
            src: rax(),
            dst: Operand::imm(3),
        };
        assert!(bad_dst.validate().is_err());
        let bad_pop = Inst::Pop {
            dst: Operand::sym("t"),
        };
        assert!(bad_pop.validate().is_err());
        let good = Inst::Alu {
            op: AluOp::Add,
            src: mem,
            dst: rax(),
        };
        assert!(good.validate().is_ok());
        assert!(Inst::Ret.validate().is_ok());
    }

    #[test]
    fn target_resolution() {
        let t = Target::label("sum");
        assert!(!t.is_resolved());
        assert!(t.resolved().is_err());
        let t = Target::abs(12);
        assert_eq!(t.resolved().unwrap(), 12);
        assert_eq!(t.to_string(), "@12");
        let named = Target {
            label: Some("sum".into()),
            index: Some(3),
        };
        assert_eq!(named.to_string(), "sum");
    }

    #[test]
    fn symbols_and_operands() {
        let i = Inst::Mov {
            src: Operand::sym("t"),
            dst: rax(),
        };
        assert_eq!(i.symbols(), vec!["t"]);
        assert_eq!(i.operands().len(), 2);
        assert!(Inst::Ret.operands().is_empty());
        assert!(Inst::Ret.symbols().is_empty());
    }
}
