//! Error type of the ISA crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, resolving, encoding or decoding
/// programs and instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A register name could not be parsed.
    UnknownRegister(String),
    /// A condition-code suffix could not be parsed.
    UnknownCondition(String),
    /// A code label was referenced but never defined.
    UndefinedLabel(String),
    /// A code label was defined twice.
    DuplicateLabel(String),
    /// A data symbol was referenced but never defined.
    UndefinedSymbol(String),
    /// A data symbol was defined twice.
    DuplicateSymbol(String),
    /// A branch/call/fork target is outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The resolved, out-of-range target.
        target: usize,
        /// Number of instructions in the program.
        len: usize,
    },
    /// An instruction uses an operand combination the ISA does not allow
    /// (e.g. a memory-to-memory `mov`).
    InvalidOperands {
        /// Mnemonic of the offending instruction.
        mnemonic: &'static str,
        /// Human readable explanation.
        reason: String,
    },
    /// The byte stream passed to the decoder is malformed.
    Decode(String),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownRegister(name) => write!(f, "unknown register `{name}`"),
            IsaError::UnknownCondition(name) => write!(f, "unknown condition code `{name}`"),
            IsaError::UndefinedLabel(name) => write!(f, "undefined label `{name}`"),
            IsaError::DuplicateLabel(name) => write!(f, "label `{name}` defined more than once"),
            IsaError::UndefinedSymbol(name) => write!(f, "undefined data symbol `{name}`"),
            IsaError::DuplicateSymbol(name) => {
                write!(f, "data symbol `{name}` defined more than once")
            }
            IsaError::TargetOutOfRange { at, target, len } => write!(
                f,
                "instruction {at} targets index {target}, but the program has {len} instructions"
            ),
            IsaError::InvalidOperands { mnemonic, reason } => {
                write!(f, "invalid operands for `{mnemonic}`: {reason}")
            }
            IsaError::Decode(reason) => write!(f, "malformed instruction encoding: {reason}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            IsaError::UnknownRegister("%zz".into()),
            IsaError::UndefinedLabel("loop".into()),
            IsaError::TargetOutOfRange {
                at: 3,
                target: 99,
                len: 10,
            },
            IsaError::Decode("truncated".into()),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
