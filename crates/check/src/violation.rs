//! Typed diagnostics for broken arena invariants.

use std::fmt;

/// One violated structural invariant, with the arena indices needed to
/// locate it. Every variant's `Display` leads with the indices in the
/// same `record {seq}` / `section {id}` / `dep {j}` vocabulary, so a
/// report composes into uniform diagnostics regardless of which pass
/// found the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// The section spans do not tile the record range `[0, n)` in total
    /// order: a span starts somewhere other than where the previous one
    /// ended, is inverted, overruns the trace, or its stored id differs
    /// from its position.
    SectionSpanBroken {
        /// Position of the offending span in the section list.
        section: usize,
        /// Where the span had to start for the tiling to hold.
        expected_start: usize,
        /// The span's recorded start.
        start: usize,
        /// The span's recorded end.
        end: usize,
    },
    /// A record's section column disagrees with the span that contains
    /// its trace position.
    SectionColumnMismatch {
        /// The record's trace index.
        seq: usize,
        /// What the section column says.
        recorded: usize,
        /// The section whose span contains `seq`.
        containing: usize,
    },
    /// A section's creator link is malformed: the fork lies at or after
    /// the section start, names the wrong section, or is not a fork.
    CreatorBroken {
        /// The created section.
        section: usize,
        /// The creator section the link claims.
        creator_section: usize,
        /// The fork's claimed trace index.
        fork_seq: usize,
    },
    /// A fixed-width column desynchronised from the record count (an
    /// unclosed `begin_record`, a missing sentinel, a dangling mnemonic
    /// id, write columns on a lean arena, …).
    ColumnBroken {
        /// Which column.
        column: &'static str,
        /// The index (record, offset or length) at which it breaks.
        index: usize,
        /// What about it is broken.
        detail: &'static str,
    },
    /// A record's dependence slice `[start, end)` is inverted, overruns
    /// the shared dependence column, or claims more register-class
    /// sources than it holds entries.
    DepSliceBroken {
        /// The record's trace index.
        seq: usize,
        /// The slice's start offset.
        start: usize,
        /// The slice's end offset.
        end: usize,
        /// The claimed register-class prefix length.
        reg: usize,
        /// The shared dependence column's length.
        limit: usize,
    },
    /// A packed dependence decodes inconsistently: an invalid location or
    /// provenance tag, a producer index or section tag that does not
    /// match the producer's own columns, or a source in the wrong
    /// register/memory class slot.
    DepPackingBroken {
        /// The consumer's trace index.
        seq: usize,
        /// Position of the dependence within the consumer's slice.
        dep: usize,
        /// What about the packing is broken.
        detail: &'static str,
    },
    /// A producer at or after its consumer: the trace order must be a
    /// topological order of the dependence DAG, so every producer index
    /// strictly precedes its consumer.
    DependenceCycle {
        /// The consumer's trace index.
        seq: usize,
        /// Position of the dependence within the consumer's slice.
        dep: usize,
        /// The claimed producer's trace index.
        producer: usize,
    },
    /// The single-writer renaming discipline is broken: the dependence
    /// does not name the closest preceding writer of its location (or
    /// mis-tags the provenance the sectioner would have assigned).
    WriterDiscipline {
        /// The consumer's trace index.
        seq: usize,
        /// Position of the dependence within the consumer's slice.
        dep: usize,
        /// The producer the dependence claims (`None` for initial /
        /// fork-copy provenance).
        claimed: Option<usize>,
        /// The closest preceding writer the replay found (`None` if the
        /// location was never written).
        actual: Option<usize>,
    },
}

fn opt(seq: Option<usize>) -> String {
    match seq {
        Some(seq) => format!("record {seq}"),
        None => "no writer".to_string(),
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::SectionSpanBroken {
                section,
                expected_start,
                start,
                end,
            } => write!(
                f,
                "section {section}: span [{start}, {end}) does not tile the trace \
                 (expected to start at record {expected_start})"
            ),
            InvariantViolation::SectionColumnMismatch {
                seq,
                recorded,
                containing,
            } => write!(
                f,
                "record {seq}: section column says {recorded} but the span tiling \
                 places it in section {containing}"
            ),
            InvariantViolation::CreatorBroken {
                section,
                creator_section,
                fork_seq,
            } => write!(
                f,
                "section {section}: creator link (section {creator_section}, \
                 fork at record {fork_seq}) is malformed"
            ),
            InvariantViolation::ColumnBroken {
                column,
                index,
                detail,
            } => write!(f, "column {column} at index {index}: {detail}"),
            InvariantViolation::DepSliceBroken {
                seq,
                start,
                end,
                reg,
                limit,
            } => write!(
                f,
                "record {seq}: dep slice [{start}, {end}) with {reg} register-class \
                 sources does not fit the shared column of length {limit}"
            ),
            InvariantViolation::DepPackingBroken { seq, dep, detail } => {
                write!(f, "record {seq} dep {dep}: {detail}")
            }
            InvariantViolation::DependenceCycle { seq, dep, producer } => write!(
                f,
                "record {seq} dep {dep}: producer {producer} does not strictly \
                 precede its consumer (trace order must be topological)"
            ),
            InvariantViolation::WriterDiscipline {
                seq,
                dep,
                claimed,
                actual,
            } => write!(
                f,
                "record {seq} dep {dep}: claims {} but the closest preceding \
                 writer is {}",
                opt(*claimed),
                opt(*actual)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_lead_with_arena_indices() {
        let cases: Vec<(InvariantViolation, &str)> = vec![
            (
                InvariantViolation::SectionSpanBroken {
                    section: 3,
                    expected_start: 10,
                    start: 12,
                    end: 9,
                },
                "section 3",
            ),
            (
                InvariantViolation::SectionColumnMismatch {
                    seq: 7,
                    recorded: 1,
                    containing: 2,
                },
                "record 7",
            ),
            (
                InvariantViolation::CreatorBroken {
                    section: 2,
                    creator_section: 5,
                    fork_seq: 40,
                },
                "section 2",
            ),
            (
                InvariantViolation::ColumnBroken {
                    column: "dep_off",
                    index: 4,
                    detail: "missing trailing sentinel",
                },
                "column dep_off",
            ),
            (
                InvariantViolation::DepSliceBroken {
                    seq: 9,
                    start: 30,
                    end: 28,
                    reg: 1,
                    limit: 64,
                },
                "record 9",
            ),
            (
                InvariantViolation::DepPackingBroken {
                    seq: 5,
                    dep: 1,
                    detail: "invalid location tag",
                },
                "record 5 dep 1",
            ),
            (
                InvariantViolation::DependenceCycle {
                    seq: 6,
                    dep: 0,
                    producer: 6,
                },
                "record 6 dep 0",
            ),
            (
                InvariantViolation::WriterDiscipline {
                    seq: 8,
                    dep: 2,
                    claimed: Some(1),
                    actual: Some(4),
                },
                "record 8 dep 2",
            ),
        ];
        for (violation, prefix) in cases {
            let text = violation.to_string();
            assert!(
                text.starts_with(prefix),
                "{text:?} does not lead with {prefix:?}"
            );
        }
    }
}
