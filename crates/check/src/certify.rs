//! The parallel-drain race certifier.
//!
//! The resolver's batched drain (see `parsecs-core`'s `Resolver`)
//! processes completion in **rounds**: it swaps the wake queue out,
//! sorts it, resolves each entry, and wakes that entry's waiters into
//! the *next* round's queue. Forking a round over threads (ROADMAP
//! item 1) is sound iff the entries of one round write pairwise-disjoint
//! targets. This pass replays that round structure symbolically — a
//! record's round is its dependence-DAG level, the latest round any of
//! its producers can complete in, plus one — and certifies the
//! precondition statically:
//!
//! 1. **Distinct per-record targets.** A resolving record writes its own
//!    rows of the `complete`/`ew` columns and its own wait link
//!    (`waiter_next[seq]`); a record occupies at most one waiter list at
//!    a time, so it is woken at most once per round, and two entries of
//!    one round always carry distinct `seq` — disjoint rows.
//! 2. **Disjoint dependence slices.** Resolution reads
//!    `deps[dep_off[seq]..dep_off[seq + 1]]`; the certificate requires
//!    the slices of *all* records to be pairwise disjoint (monotone
//!    offsets), which is stronger than the per-round obligation and is
//!    what the offset representation promises.
//! 3. **Commutative stats.** The per-record `SimStats` contributions are
//!    saturating/wrapping-free `u64` counter increments, mergeable in
//!    any order; there is nothing per-arena to check, so the certificate
//!    covers it by construction.
//!
//! The result is either [`DrainSafety::Certified`] — the token the
//! future rayon fork will demand before splitting a round — or the first
//! conflicting index pair.

use parsecs_trace::{PackedDep, TraceArena};

use crate::validate::{KIND_LOCAL, KIND_REMOTE};

/// Outcome of the parallel-drain certification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DrainSafety {
    /// Every completion round's concurrent resolutions write
    /// pairwise-disjoint targets; the drain may be forked.
    Certified {
        /// Number of symbolic completion rounds (the dependence-DAG
        /// depth).
        rounds: usize,
        /// Entries in the widest round — the fork's maximum available
        /// parallelism.
        max_round_width: usize,
    },
    /// Two records whose resolve-time footprints overlap: the first
    /// conflicting index pair, in trace order.
    Conflict {
        /// Symbolic round of the later record of the pair.
        round: usize,
        /// Trace index of the earlier conflicting record.
        first: usize,
        /// Trace index of the later conflicting record.
        second: usize,
    },
    /// Certification was not attempted because the invariant validator
    /// found structural violations first.
    Unchecked,
}

impl DrainSafety {
    /// Whether the drain may be forked.
    pub fn is_certified(&self) -> bool {
        matches!(self, DrainSafety::Certified { .. })
    }
}

/// Certifies an arena the invariant validator has already passed.
pub(crate) fn certify(arena: &TraceArena) -> DrainSafety {
    let raw = arena.raw();
    certify_columns(raw.dep_off, raw.deps, arena.len())
}

/// The certifier's core, over raw offset/dependence columns (exposed so
/// corrupt columns — unreachable through [`TraceArena`]'s builder, whose
/// `end_record` derives the offsets — can still be exercised). `dep_off`
/// must hold `n + 1` entries; `n` is the record count.
pub fn certify_columns(dep_off: &[u32], deps: &[PackedDep], n: usize) -> DrainSafety {
    assert_eq!(dep_off.len(), n + 1, "one offset per record plus sentinel");
    // Symbolic rounds: level 0 resolves records with no producers (they
    // complete without ever waiting); a consumer resolves in the round
    // after its latest producer.
    let mut round = vec![0u32; n];
    for seq in 0..n {
        let (start, end) = (dep_off[seq] as usize, dep_off[seq + 1] as usize);
        if start > end || end > deps.len() {
            continue; // the overlap scan below reports it
        }
        for packed in &deps[start..end] {
            let (_, producer, section_kind) = packed.raw_parts();
            let kind = section_kind & 7;
            let p = producer as usize;
            if (kind == KIND_LOCAL || kind == KIND_REMOTE) && p < seq {
                round[seq] = round[seq].max(round[p] + 1);
            }
        }
    }
    // Overlap scan: walk the slices in trace order carrying the furthest
    // end seen; a slice starting below it aliases an earlier record's.
    // (With adjacent offset-indexed slices any aliasing shows up as an
    // inverted slice at the first offset decrease; the pair reported is
    // that record and the one whose slice it rewinds into.)
    let mut frontier = 0usize;
    let mut frontier_record = 0usize;
    for seq in 0..n {
        let (start, end) = (dep_off[seq] as usize, dep_off[seq + 1] as usize);
        if start > end || end > deps.len() || (start < frontier && start < end) {
            return DrainSafety::Conflict {
                round: round[seq] as usize,
                first: frontier_record,
                second: seq,
            };
        }
        if end > frontier {
            frontier = end;
            frontier_record = seq;
        }
    }
    let rounds = round.iter().map(|&r| r as usize + 1).max().unwrap_or(0);
    let mut width = vec![0usize; rounds];
    for &r in &round {
        width[r as usize] += 1;
    }
    DrainSafety::Certified {
        rounds,
        max_round_width: width.into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use parsecs_machine::Location;
    use parsecs_trace::{SourceDep, SourceKind};

    use super::*;

    fn local(producer: usize) -> PackedDep {
        PackedDep::new(&SourceDep {
            location: Location::Mem(8),
            kind: SourceKind::Local { producer },
        })
    }

    #[test]
    fn disjoint_slices_certify_with_dag_rounds() {
        // 0 and 1 independent; 2 consumes both; 3 consumes 2.
        let deps = [local(0), local(1), local(2)];
        let safety = certify_columns(&[0, 0, 0, 2, 3], &deps, 4);
        assert_eq!(
            safety,
            DrainSafety::Certified {
                rounds: 3,
                max_round_width: 2,
            }
        );
        assert!(safety.is_certified());
    }

    #[test]
    fn overlapping_slices_report_the_first_conflicting_pair() {
        let deps = [local(0), local(0), local(1)];
        assert_eq!(
            certify_columns(&[0, 1, 3, 3, 3], &[deps[0], deps[1], deps[2]], 4),
            DrainSafety::Certified {
                rounds: 2,
                max_round_width: 3,
            }
        );
        // Record 2's slice rewinds into record 1's [1, 3).
        let conflict = certify_columns(&[0, 1, 3, 2, 3], &deps, 4);
        match conflict {
            DrainSafety::Conflict { first, second, .. } => {
                assert_eq!((first, second), (1, 2));
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
    }

    #[test]
    fn inverted_slices_conflict_and_empty_traces_certify() {
        assert!(matches!(
            certify_columns(&[0, 2, 1], &[local(0), local(0)], 2),
            DrainSafety::Conflict { second: 1, .. }
        ));
        assert_eq!(
            certify_columns(&[0], &[], 0),
            DrainSafety::Certified {
                rounds: 0,
                max_round_width: 0,
            }
        );
    }
}
