//! The static bounds analyzer: dependence-DAG critical path and ILP
//! width.
//!
//! The analyzer computes a **configuration-independent lower bound** on
//! the engines' retirement span from the trace structure alone, using
//! only recurrences every configuration satisfies (all NoC and DMH
//! latencies are ≥ 0, cores fetch at most one instruction per cycle, and
//! stalls only ever delay):
//!
//! * *Fetch*: the root section's first fetch happens no earlier than
//!   cycle 1; fetch within a section is strictly one per cycle; a forked
//!   section's first fetch happens no earlier than two cycles after its
//!   fork (the creation message is delivered the following cycle at the
//!   earliest, and dequeuing it consumes a cycle).
//! * *Completion*: completion never precedes the fetch cycle, never
//!   precedes any producer's completion, is at least fetch + 2 for a
//!   non-memory instruction with a remote register source (the
//!   execute-writeback path), and at least fetch + 4 for a memory
//!   instruction (execute, address, then the two-cycle minimum memory
//!   round trip).
//! * *Retirement*: in-order per section, `max(completion, previous
//!   retirement) + 1`.
//!
//! `total_cycles ≥ critical_path` therefore holds for **every** chip
//! configuration; the differential tests assert it against both engines,
//! catching optimistic-timing bugs that bit-identity between the engines
//! structurally cannot.

use parsecs_trace::{SourceKind, TraceArena};

/// Whole-program static bounds (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct StaticBounds {
    /// Configuration-independent lower bound on the retirement span
    /// (`SimStats::total_cycles`) of any engine run over this arena.
    pub critical_path: u64,
    /// Depth of the dependence DAG in levels (producer-to-consumer
    /// edges only; 0 for an empty trace).
    pub dag_depth: usize,
    /// Number of records analyzed.
    pub instructions: usize,
    /// Per-section bounds, in total order.
    pub per_section: Vec<SectionBounds>,
}

impl StaticBounds {
    /// Average instruction-level parallelism the dependence DAG admits:
    /// instructions per DAG level (the paper's ILP-limit vocabulary).
    pub fn ilp_width(&self) -> f64 {
        if self.dag_depth == 0 {
            0.0
        } else {
            self.instructions as f64 / self.dag_depth as f64
        }
    }
}

/// Static bounds of one section.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SectionBounds {
    /// The section's position in total order.
    pub section: usize,
    /// Instructions in the section.
    pub len: usize,
    /// Depth of the section's *local* dependence chains (levels over
    /// `SourceKind::Local` edges only; 0 for an empty section).
    pub local_depth: usize,
}

impl SectionBounds {
    /// Instructions per local dependence level within the section.
    pub fn ilp_width(&self) -> f64 {
        if self.local_depth == 0 {
            0.0
        } else {
            self.len as f64 / self.local_depth as f64
        }
    }
}

/// Computes the bounds of a structurally valid arena (the caller — see
/// [`crate::check_arena`] — runs the invariant validator first; the
/// forward sweeps below index producers unchecked).
pub(crate) fn analyze(arena: &TraceArena) -> StaticBounds {
    let n = arena.len();
    let spans = arena.sections();
    let mut fetch_lb = vec![0u64; n];
    let mut completion_lb = vec![0u64; n];
    let mut level = vec![0u32; n];
    let mut local_level = vec![0u32; n];
    let mut critical_path = 0u64;
    let mut per_section = Vec::with_capacity(spans.len());
    for (sid, span) in spans.iter().enumerate() {
        let mut retire_last = 0u64;
        let mut local_depth = 0u32;
        for seq in span.start..span.end {
            fetch_lb[seq] = if seq == span.start {
                match span.creator {
                    Some((_, fork_seq)) => fetch_lb[fork_seq] + 2,
                    None => 1,
                }
            } else {
                fetch_lb[seq - 1] + 1
            };
            let is_mem = arena.is_load(seq) || arena.is_store(seq);
            let mut completion = fetch_lb[seq] + if is_mem { 4 } else { 0 };
            let reg = arena.reg_sources(seq).len();
            let mut remote_reg = false;
            for (j, dep) in arena.sources(seq).iter().enumerate() {
                match dep.kind() {
                    SourceKind::Local { producer } => {
                        completion = completion.max(completion_lb[producer]);
                        level[seq] = level[seq].max(level[producer] + 1);
                        local_level[seq] = local_level[seq].max(local_level[producer] + 1);
                    }
                    SourceKind::Remote { producer, .. } => {
                        completion = completion.max(completion_lb[producer]);
                        level[seq] = level[seq].max(level[producer] + 1);
                        remote_reg |= j < reg;
                    }
                    SourceKind::ForkCopy
                    | SourceKind::InitialRegister
                    | SourceKind::InitialMemory => {}
                }
            }
            if !is_mem && remote_reg {
                completion = completion.max(fetch_lb[seq] + 2);
            }
            completion_lb[seq] = completion;
            local_depth = local_depth.max(local_level[seq] + 1);
            retire_last = completion.max(retire_last) + 1;
        }
        critical_path = critical_path.max(retire_last);
        per_section.push(SectionBounds {
            section: sid,
            len: span.len(),
            local_depth: local_depth as usize,
        });
    }
    let dag_depth = level.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    StaticBounds {
        critical_path,
        dag_depth,
        instructions: n,
        per_section,
    }
}
