//! The config-aware schedule analyzer: NoC/placement-weighted lower
//! bounds and a list-schedule predictor.
//!
//! [`StaticBounds`](crate::StaticBounds) is configuration-independent:
//! its critical path charges every NoC latency at its universal minimum,
//! so it cannot discriminate between chip configurations. This pass
//! takes the missing inputs — a concrete placement (`core_of`) and a
//! [`ChipModel`] (topology, NoC timing, DMH latency, per-section hop
//! charge) — and computes two numbers per (arena × placement × chip)
//! cell:
//!
//! 1. **A certified lower bound** ([`ScheduleBounds::lb`]): the maximum
//!    of three independently sound terms.
//!
//!    * *Weighted critical path*: the same forward recurrences as the
//!      config-independent analyzer, but with every cross-core edge
//!      re-weighted by the concrete chip's costs. A forked section's
//!      first fetch is charged the creation message's transit latency
//!      plus the dequeue cycle; a `Remote` register or memory source is
//!      charged the renaming round trip (`hop` out, `hop` back, with
//!      the per-intermediate-section walk charge), exactly as the
//!      resolver prices it; memory instructions reaching the DMH are
//!      charged [`ChipModel::dmh_latency`]. Every term underestimates
//!      the engines' actual charge, so the recurrence is a pointwise
//!      lower bound on real completion cycles.
//!    * *Per-core work* (Graham bound): a core fetches at most one
//!      instruction per cycle starting no earlier than cycle 1, and the
//!      last fetch on a core still needs a retirement cycle, so a core
//!      hosting `w ≥ 1` instructions forces `w + 1` cycles.
//!    * *Ejection-port contention*: with a finite per-receiving-core
//!      ejection budget `b`, the `m` section-creation messages
//!      terminating at one core occupy at least `⌈m/b⌉` distinct
//!      arrival cycles, the first no earlier than `1 + min transit
//!      latency from the actual creator cores`; the last-delivered
//!      section still needs a dequeue cycle, its fetches and a
//!      retirement — `max(⌈m/b⌉ + min_lat, 2) + min_len + 1` cycles.
//!
//!    Every weighted term dominates its config-independent counterpart
//!    (latencies are ≥ 0 and the fork edge weight is ≥ 2), so `lb ≥
//!    StaticBounds::critical_path` holds structurally, and both engines
//!    `debug_assert` the full sandwich `critical_path ≤ lb ≤
//!    total_cycles` on every validated run.
//!
//! 2. **A deterministic AMTHA-style list-schedule predictor**
//!    ([`ScheduleBounds::predicted_cycles`]): an earliest-finish-time
//!    pass over the sections in creation order that additionally
//!    serialises each core's fetch stream (`free_at` per core), models
//!    the fetch stage's stall on control instructions whose sources are
//!    not locally complete at fetch, and replays the same weighted
//!    completion recurrences over the predicted fetch cycles. It is
//!    **not certified** — it ignores section parking and ejection
//!    contention, and can land on either side of the measured cycle
//!    count — but it tracks
//!    the configuration-sensitive structure, and the bench harness
//!    scores it: `arena_check` gates a Spearman rank correlation ≥ 0.8
//!    between `predicted_cycles` and measured cycles over the workload
//!    grid, which is what qualifies it as a design-space-exploration
//!    pruning oracle (ROADMAP item 5).
//!
//! ## Vacuous cells
//!
//! On a single-section program the placement and the NoC are irrelevant
//! — no creation message is ever sent and no source is `Remote` — so
//! the weighted path degenerates to the local chain and `lb` collapses
//! onto `StaticBounds::critical_path` (the work bound of the one
//! hosting core may still add a cycle). The bound is *correct* but
//! cannot discriminate configurations there; the same holds for any
//! cell whose sections all land on one core. This is inherent, not a
//! bug: a config-aware bound is only as sharp as the configuration
//! surface the program actually touches.

use parsecs_noc::{CoreId, NocModel};
use parsecs_trace::{SourceKind, TraceArena};

use std::fmt;

/// The static description of a chip configuration the schedule analyzer
/// prices against: the subset of the simulator's configuration that
/// affects timing bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipModel {
    /// Number of cores on the chip (placement targets `0..cores`).
    pub cores: usize,
    /// The NoC cost view: per-message transit latency and ejection
    /// budget.
    pub noc: NocModel,
    /// Cycles to reach the data memory hierarchy when a memory renaming
    /// request finds no producer.
    pub dmh_latency: u64,
    /// Extra cycles charged per intermediate section visited by a
    /// renaming request.
    pub per_section_hop: u64,
    /// Whether the modeled fetch stage stalls on a control instruction
    /// whose register sources are not locally complete at fetch time
    /// (the paper's compute-control-instead-of-predicting-it rule).
    /// Only the *predictor* consumes this — the certified lower bound
    /// stays sound either way because stalls can only add cycles.
    pub fetch_stalls: bool,
}

impl ChipModel {
    /// Latency of one leg of a renaming exchange between a consumer on
    /// `consumer_core` (section `consumer_section`) and a producer on
    /// `producer_core` (section `producer_section`) — the static twin
    /// of the resolver's request pricing.
    fn request_latency(
        &self,
        consumer_core: usize,
        producer_core: usize,
        consumer_section: usize,
        producer_section: usize,
    ) -> u64 {
        let gap = consumer_section
            .saturating_sub(producer_section)
            .saturating_sub(1) as u64;
        self.noc
            .hop_latency(CoreId(consumer_core), CoreId(producer_core))
            + self.per_section_hop * gap
    }
}

/// Which of the three lower-bound terms is the largest (ties resolve in
/// the order listed: a path-bound tie reports `Path`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BindingTerm {
    /// The NoC-weighted dependence-DAG critical path binds.
    Path,
    /// A single core's fetch work binds.
    Work,
    /// A single core's ejection-port budget binds.
    Ejection,
}

impl fmt::Display for BindingTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingTerm::Path => write!(f, "path"),
            BindingTerm::Work => write!(f, "work"),
            BindingTerm::Ejection => write!(f, "ejection"),
        }
    }
}

/// The schedule analyzer's verdict for one (arena × placement × chip)
/// cell (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ScheduleBounds {
    /// The certified lower bound on `SimStats::total_cycles`: the
    /// maximum of the three terms below. Satisfies `lb ≥
    /// StaticBounds::critical_path` structurally.
    pub lb: u64,
    /// The NoC/placement-weighted critical-path term.
    pub path_bound: u64,
    /// The largest per-core Graham work term (`0` for an empty arena).
    pub work_bound: u64,
    /// The largest per-core ejection-contention term (`0` when the
    /// ejection budget is unlimited or no core receives a creation
    /// message).
    pub ejection_bound: u64,
    /// Which term is the maximum.
    pub binding: BindingTerm,
    /// The uncertified list-schedule estimate of the cell's cycle
    /// count.
    pub predicted_cycles: u64,
}

impl ScheduleBounds {
    /// How tight the certified bound is against a measured cycle count:
    /// `cycles / lb` (≥ 1.0 on any sound run; 1.0 means the bound is
    /// exact). Returns `f64::NAN` when `lb` is zero (empty arena).
    pub fn tightness(&self, cycles: u64) -> f64 {
        if self.lb == 0 {
            f64::NAN
        } else {
            cycles as f64 / self.lb as f64
        }
    }
}

/// Computes the config-aware schedule bounds of a structurally valid
/// arena under a concrete placement (`core_of[section] = host core`)
/// and chip model.
///
/// # Panics
///
/// Panics when `core_of` does not map every section, targets a core
/// outside `0..model.cores`, or `model.cores` exceeds the topology.
pub fn bound_schedule(arena: &TraceArena, core_of: &[usize], model: &ChipModel) -> ScheduleBounds {
    let spans = arena.sections();
    assert_eq!(
        core_of.len(),
        spans.len(),
        "placement must map every section to a core"
    );
    assert!(
        model.cores <= model.noc.topology().num_cores(),
        "chip model claims more cores than its topology has"
    );
    for &core in core_of {
        assert!(
            core < model.cores,
            "placement targets core {core} on a {}-core chip",
            model.cores
        );
    }

    let n = arena.len();
    let mut fetch_lb = vec![0u64; n];
    let mut completion_lb = vec![0u64; n];
    let mut work = vec![0u64; model.cores];
    let mut path_bound = 0u64;
    for (sid, span) in spans.iter().enumerate() {
        let my_core = core_of[sid];
        work[my_core] += span.len() as u64;
        let mut retire_last = 0u64;
        for seq in span.start..span.end {
            fetch_lb[seq] = if seq == span.start {
                match span.creator {
                    Some((creator, fork_seq)) => {
                        // Creation message transit (at least the cycle
                        // boundary between send and delivery), plus the
                        // dequeue cycle.
                        let lat = model
                            .noc
                            .hop_latency(CoreId(core_of[creator.0]), CoreId(my_core));
                        fetch_lb[fork_seq] + lat.max(1) + 1
                    }
                    None => 1,
                }
            } else {
                fetch_lb[seq - 1] + 1
            };
            completion_lb[seq] = weighted_completion(
                arena,
                seq,
                sid,
                my_core,
                core_of,
                model,
                fetch_lb[seq],
                &completion_lb,
            );
            retire_last = completion_lb[seq].max(retire_last) + 1;
        }
        path_bound = path_bound.max(retire_last);
    }

    let work_bound = work
        .iter()
        .map(|&w| if w == 0 { 0 } else { w + 1 })
        .max()
        .unwrap_or(0);
    let ejection_bound = ejection_bound(spans, core_of, model);

    let lb = path_bound.max(work_bound).max(ejection_bound);
    let binding = if lb == path_bound {
        BindingTerm::Path
    } else if lb == work_bound {
        BindingTerm::Work
    } else {
        BindingTerm::Ejection
    };

    let predicted_cycles = predict(arena, core_of, model);
    ScheduleBounds {
        lb,
        path_bound,
        work_bound,
        ejection_bound,
        binding,
        predicted_cycles,
    }
}

/// The weighted completion recurrence shared by the lower-bound pass
/// and the predictor: a lower bound on `seq`'s completion cycle given a
/// lower bound `fetch` on its fetch cycle and pointwise lower bounds
/// `completion` on every earlier record's completion cycle.
///
/// Each term under-approximates the resolver's actual charge
/// (`compute_one` in the engine): a remote register source forces the
/// execute stage to wait out the round trip (`fetch + 2 + 2·hop`, and
/// the producer's value cannot return before `c_p + hop`, plus the
/// execute cycle); a memory instruction adds the execute → address →
/// memory pipeline (`+4` minimum, `+3 + dmh` via the DMH, `+3 + 2·hop`
/// for a remote memory producer).
#[allow(clippy::too_many_arguments)]
fn weighted_completion(
    arena: &TraceArena,
    seq: usize,
    my_section: usize,
    my_core: usize,
    core_of: &[usize],
    model: &ChipModel,
    fetch: u64,
    completion: &[u64],
) -> u64 {
    let is_mem = arena.is_load(seq) || arena.is_store(seq);
    let mut c = fetch + if is_mem { 4 } else { 0 };
    for dep in arena.reg_sources(seq) {
        match dep.kind() {
            SourceKind::Local { producer } => c = c.max(completion[producer]),
            SourceKind::Remote {
                producer,
                producer_section,
            } => {
                let hop = model.request_latency(
                    my_core,
                    core_of[producer_section.0],
                    my_section,
                    producer_section.0,
                );
                let term = if is_mem {
                    (completion[producer] + hop + 3).max(fetch + 4 + 2 * hop)
                } else {
                    (completion[producer] + hop + 1).max(fetch + 2 + 2 * hop)
                };
                c = c.max(term);
            }
            SourceKind::ForkCopy | SourceKind::InitialRegister | SourceKind::InitialMemory => {}
        }
    }
    if is_mem {
        for dep in arena.mem_sources(seq) {
            match dep.kind() {
                SourceKind::InitialMemory => c = c.max(fetch + 3 + model.dmh_latency),
                SourceKind::Local { producer } => c = c.max(completion[producer]),
                SourceKind::Remote {
                    producer,
                    producer_section,
                } => {
                    let hop = model.request_latency(
                        my_core,
                        core_of[producer_section.0],
                        my_section,
                        producer_section.0,
                    );
                    c = c.max((completion[producer] + hop).max(fetch + 3 + 2 * hop));
                }
                SourceKind::ForkCopy | SourceKind::InitialRegister => {}
            }
        }
    }
    c
}

/// The per-core ejection-contention term (see the module docs). Only
/// cores that receive at least one section-creation message under a
/// finite ejection budget contribute; a core hosting an empty forked
/// section is skipped (nothing retires after its delivery, so the term
/// would not be grounded in a retirement).
fn ejection_bound(
    spans: &[parsecs_trace::SectionSpan],
    core_of: &[usize],
    model: &ChipModel,
) -> u64 {
    let Some(budget) = model.noc.ejection_budget() else {
        return 0;
    };
    let mut messages = vec![0u64; model.cores];
    let mut min_lat = vec![u64::MAX; model.cores];
    let mut min_len = vec![u64::MAX; model.cores];
    for (sid, span) in spans.iter().enumerate() {
        if let Some((creator, _)) = span.creator {
            let dst = core_of[sid];
            let lat = model
                .noc
                .hop_latency(CoreId(core_of[creator.0]), CoreId(dst));
            messages[dst] += 1;
            min_lat[dst] = min_lat[dst].min(lat);
            min_len[dst] = min_len[dst].min(span.len() as u64);
        }
    }
    let mut bound = 0u64;
    for core in 0..model.cores {
        if messages[core] == 0 || min_len[core] == 0 {
            continue;
        }
        // The last of ⌈m/b⌉ distinct arrival cycles, the first of which
        // is no earlier than send (≥ 1) + the cheapest incoming transit;
        // delivery always happens strictly after the sending fetch.
        let last_delivery = (messages[core].div_ceil(budget as u64) + min_lat[core]).max(2);
        bound = bound.max(last_delivery + min_len[core] + 1);
    }
    bound
}

/// The deterministic earliest-finish list schedule (see the module
/// docs): sections in creation order, each core's fetch stream
/// serialised through `free_at`, completions via the same weighted
/// recurrences over the predicted fetch cycles.
fn predict(arena: &TraceArena, core_of: &[usize], model: &ChipModel) -> u64 {
    let spans = arena.sections();
    let n = arena.len();
    let mut fetch = vec![0u64; n];
    let mut completion = vec![0u64; n];
    let mut free_at = vec![0u64; model.cores];
    let mut predicted = 0u64;
    for (sid, span) in spans.iter().enumerate() {
        let my_core = core_of[sid];
        // Creation-order processing is well-founded: a creator's span
        // precedes its children's, so the fork's fetch is already
        // predicted.
        let delivery = match span.creator {
            Some((creator, fork_seq)) => {
                let lat = model
                    .noc
                    .hop_latency(CoreId(core_of[creator.0]), CoreId(my_core));
                fetch[fork_seq] + lat.max(1)
            }
            None => 0,
        };
        let dequeue = delivery.max(free_at[my_core]);
        let mut retire_last = 0u64;
        // The cycle the fetch stream resumes after a control stall: the
        // engine releases a stalled fetch stage strictly past the
        // stalled instruction's completion.
        let mut resume = 0u64;
        let mut last_fetch = dequeue;
        for seq in span.start..span.end {
            fetch[seq] = if seq == span.start {
                dequeue + 1
            } else {
                (fetch[seq - 1] + 1).max(resume)
            };
            completion[seq] = weighted_completion(
                arena,
                seq,
                sid,
                my_core,
                core_of,
                model,
                fetch[seq],
                &completion,
            );
            if model.fetch_stalls
                && arena.is_control(seq)
                && !predicted_computable(arena, seq, &completion, fetch[seq])
            {
                resume = completion[seq] + 1;
            }
            last_fetch = fetch[seq];
            retire_last = completion[seq].max(retire_last) + 1;
        }
        free_at[my_core] = last_fetch + 1;
        predicted = predicted.max(retire_last);
    }
    predicted
}

/// The predictor's twin of the engine's fetch-computability test:
/// whether a control instruction's register sources are all locally
/// complete by its (predicted) fetch cycle. Mirrors the engine exactly
/// — fork-copied and initial values are always in the local file, a
/// `Remote` source never is — but reads predicted completions instead
/// of resolved ones.
fn predicted_computable(
    arena: &TraceArena,
    seq: usize,
    completion: &[u64],
    fetch_cycle: u64,
) -> bool {
    arena.reg_sources(seq).iter().all(|dep| match dep.kind() {
        SourceKind::ForkCopy | SourceKind::InitialRegister | SourceKind::InitialMemory => true,
        SourceKind::Local { producer } => completion[producer] <= fetch_cycle,
        SourceKind::Remote { .. } => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsecs_noc::{NocConfig, Topology};

    fn fork_arena() -> TraceArena {
        let program = parsecs_asm::assemble(
            "t:   .quad 4, 2, 6
             main: movq $t, %rdi
                   fork leaf
                   out  %rax
                   halt
             leaf: movq (%rdi), %rax
                   addq 8(%rdi), %rax
                   addq 16(%rdi), %rax
                   endfork",
        )
        .expect("assembles");
        TraceArena::from_program(&program, 10_000).expect("runs")
    }

    fn model(cores: usize, noc: NocConfig) -> ChipModel {
        ChipModel {
            cores,
            noc: NocModel::new(Topology::crossbar(cores), noc),
            dmh_latency: 3,
            per_section_hop: 0,
            fetch_stalls: true,
        }
    }

    fn round_robin(sections: usize, cores: usize) -> Vec<usize> {
        (0..sections).map(|s| s % cores).collect()
    }

    #[test]
    fn weighted_lb_dominates_the_config_independent_critical_path() {
        let arena = fork_arena();
        let critical_path = crate::check_arena(&arena)
            .bounds
            .expect("clean")
            .critical_path;
        for cores in [1, 2, 4] {
            for base in [0, 1, 5] {
                let m = model(
                    cores,
                    NocConfig {
                        base_latency: base,
                        per_hop_latency: 1,
                        link_bandwidth: None,
                    },
                );
                let core_of = round_robin(arena.sections().len(), cores);
                let bounds = bound_schedule(&arena, &core_of, &m);
                assert!(
                    bounds.lb >= critical_path,
                    "lb {} < critical path {critical_path} at {cores} cores base {base}",
                    bounds.lb
                );
                assert_eq!(
                    bounds.lb,
                    bounds
                        .path_bound
                        .max(bounds.work_bound)
                        .max(bounds.ejection_bound)
                );
            }
        }
    }

    #[test]
    fn higher_latencies_never_lower_the_bound() {
        let arena = fork_arena();
        let core_of = round_robin(arena.sections().len(), 2);
        let mut prev = 0;
        for base in [1, 2, 4, 8] {
            let m = model(
                2,
                NocConfig {
                    base_latency: base,
                    per_hop_latency: 1,
                    link_bandwidth: None,
                },
            );
            let bounds = bound_schedule(&arena, &core_of, &m);
            assert!(
                bounds.lb >= prev,
                "raising base latency to {base} lowered the bound"
            );
            assert!(bounds.predicted_cycles >= bounds.path_bound);
            prev = bounds.lb;
        }
    }

    #[test]
    fn one_core_placements_are_work_bound() {
        // Two wide, dependence-free children squeezed onto one core: the
        // weighted path is short (each chain is independent) but the
        // core must still fetch every instruction one per cycle.
        let program = parsecs_asm::assemble(
            "main: fork a
                   fork b
                   halt
             a:    movq $1, %rax
                   movq $2, %rax
                   movq $3, %rax
                   movq $4, %rax
                   movq $5, %rax
                   movq $6, %rax
                   movq $7, %rax
                   movq $8, %rax
                   endfork
             b:    movq $1, %rbx
                   movq $2, %rbx
                   movq $3, %rbx
                   movq $4, %rbx
                   movq $5, %rbx
                   movq $6, %rbx
                   movq $7, %rbx
                   movq $8, %rbx
                   endfork",
        )
        .expect("assembles");
        let arena = TraceArena::from_program(&program, 10_000).expect("runs");
        let core_of = vec![0; arena.sections().len()];
        let m = model(1, NocConfig::default());
        let bounds = bound_schedule(&arena, &core_of, &m);
        assert_eq!(bounds.work_bound, arena.len() as u64 + 1);
        assert!(
            bounds.work_bound > bounds.path_bound,
            "work {} vs path {}",
            bounds.work_bound,
            bounds.path_bound
        );
        assert_eq!(bounds.binding, BindingTerm::Work);
        assert_eq!(bounds.lb, bounds.work_bound);
    }

    #[test]
    fn ejection_budget_contributes_only_when_finite() {
        let arena = fork_arena();
        let core_of = round_robin(arena.sections().len(), 2);
        let unlimited = bound_schedule(&arena, &core_of, &model(2, NocConfig::default()));
        assert_eq!(unlimited.ejection_bound, 0);
        let limited = bound_schedule(
            &arena,
            &core_of,
            &model(
                2,
                NocConfig {
                    link_bandwidth: Some(1),
                    ..NocConfig::default()
                },
            ),
        );
        // One creation message to core 1 for the forked continuation
        // (`out`, `halt`): ⌈1/1⌉ + lat 2 arrival, + 2 instructions, +
        // the retirement cycle.
        assert_eq!(limited.ejection_bound, 3 + 2 + 1);
        assert!(limited.lb >= unlimited.lb);
    }

    #[test]
    fn predictor_is_deterministic_and_config_sensitive() {
        let arena = fork_arena();
        let core_of = round_robin(arena.sections().len(), 2);
        let cheap = bound_schedule(&arena, &core_of, &model(2, NocConfig::default()));
        assert_eq!(
            cheap,
            bound_schedule(&arena, &core_of, &model(2, NocConfig::default()))
        );
        let slow = bound_schedule(
            &arena,
            &core_of,
            &model(
                2,
                NocConfig {
                    base_latency: 10,
                    per_hop_latency: 1,
                    link_bandwidth: None,
                },
            ),
        );
        assert!(
            slow.predicted_cycles > cheap.predicted_cycles,
            "a 10× slower NoC must raise the predicted schedule"
        );
        assert!(slow.lb > cheap.lb);
    }

    #[test]
    fn empty_arenas_bound_to_zero() {
        let arena = TraceArena::new();
        let bounds = bound_schedule(&arena, &[], &model(2, NocConfig::default()));
        assert_eq!(bounds.lb, 0);
        assert_eq!(bounds.predicted_cycles, 0);
        assert_eq!(bounds.binding, BindingTerm::Path);
        assert!(bounds.tightness(10).is_nan());
    }

    #[test]
    #[should_panic(expected = "placement must map every section")]
    fn short_placements_panic() {
        let arena = fork_arena();
        bound_schedule(&arena, &[0], &model(2, NocConfig::default()));
    }

    #[test]
    #[should_panic(expected = "targets core")]
    fn out_of_chip_placements_panic() {
        let arena = fork_arena();
        let core_of = vec![5; arena.sections().len()];
        bound_schedule(&arena, &core_of, &model(2, NocConfig::default()));
    }
}
