//! The parallel-walk certifier.
//!
//! The cluster-sharded walk (`parsecs-core`'s `cluster.rs`, ROADMAP
//! item 1) forks the per-cycle fetch walk over one thread per cluster.
//! That fork is sound iff the partition actually shards the chip:
//!
//! 1. **Windows tile the core range** — every cluster owns a contiguous
//!    `[start, start + len)` window, windows are non-empty, disjoint,
//!    and ascending, and together they cover `[0, cores)` exactly. Each
//!    core (and with it each per-core column of the SoA chip state) then
//!    belongs to exactly one walking thread.
//! 2. **Ready-queue links never cross a window** — a section's intrusive
//!    ready-queue link lives on the core the placement hosts it on, and
//!    the walk only follows links within a core's own list; certifying
//!    that every hosted core is inside the chip (and hence inside
//!    exactly one window, by 1) certifies that no thread ever follows a
//!    link into another thread's shard.
//! 3. **Cross-cluster effects commit canonically** — effects leaving a
//!    window (sends, wakes) are buffered per cluster and committed
//!    after the join in ascending cluster order; ascending disjoint
//!    windows (checked in 1) make that order canonical, so the commit
//!    sequence is independent of thread scheduling.
//!
//! The result, [`WalkSafety::Certified`], is the walk-fork precondition
//! the engine demands alongside [`crate::DrainSafety::Certified`];
//! either certificate being withheld becomes a typed fork-fallback
//! reason instead of a silent sequential run.

/// Outcome of the parallel-walk certification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalkSafety {
    /// The partition tiles the chip and every section's ready-queue
    /// link stays inside one window; the walk may be forked.
    Certified {
        /// Number of cluster windows.
        clusters: usize,
        /// Cores in the widest window — the longest walk any single
        /// thread performs per cycle.
        max_window: usize,
    },
    /// The windows do not tile `[0, cores)`: the offending cluster with
    /// what it declared and where the tiling required it to start.
    WindowsBroken {
        /// Index of the first non-tiling cluster (or the cluster count
        /// itself when coverage stops short of `cores`).
        cluster: usize,
        /// Where the window had to start to continue the tiling.
        expected_start: usize,
        /// The window's declared start.
        start: usize,
        /// The window's declared length.
        len: usize,
    },
    /// A section is hosted outside the chip, so its ready-queue link
    /// belongs to no window.
    HostOutOfWindow {
        /// The offending section (total-order index).
        section: usize,
        /// The core it claims to be hosted on.
        core: usize,
        /// The chip's core count.
        cores: usize,
    },
    /// Certification was not attempted (single-threaded run, or the
    /// validator found structural violations first).
    Unchecked,
}

impl WalkSafety {
    /// Whether the walk may be forked.
    pub fn is_certified(&self) -> bool {
        matches!(self, WalkSafety::Certified { .. })
    }
}

/// Certifies one cluster partition: `windows` as `(start, len)` pairs in
/// cluster order, `section_hosts[s]` the core hosting section `s`.
pub fn certify_walk(
    cores: usize,
    windows: &[(usize, usize)],
    section_hosts: &[usize],
) -> WalkSafety {
    let mut expected_start = 0usize;
    let mut max_window = 0usize;
    for (cluster, &(start, len)) in windows.iter().enumerate() {
        if start != expected_start || len == 0 || start + len > cores {
            return WalkSafety::WindowsBroken {
                cluster,
                expected_start,
                start,
                len,
            };
        }
        expected_start = start + len;
        max_window = max_window.max(len);
    }
    if expected_start != cores {
        return WalkSafety::WindowsBroken {
            cluster: windows.len(),
            expected_start,
            start: expected_start,
            len: 0,
        };
    }
    for (section, &core) in section_hosts.iter().enumerate() {
        if core >= cores {
            return WalkSafety::HostOutOfWindow {
                section,
                core,
                cores,
            };
        }
    }
    WalkSafety::Certified {
        clusters: windows.len(),
        max_window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_partitions_certify() {
        let safety = certify_walk(16, &[(0, 6), (6, 5), (11, 5)], &[0, 5, 15, 6]);
        assert_eq!(
            safety,
            WalkSafety::Certified {
                clusters: 3,
                max_window: 6,
            }
        );
        assert!(safety.is_certified());
        assert!(certify_walk(0, &[], &[]).is_certified());
        assert_eq!(
            certify_walk(4, &[(0, 4)], &[]),
            WalkSafety::Certified {
                clusters: 1,
                max_window: 4,
            }
        );
    }

    #[test]
    fn gaps_overlaps_and_short_coverage_are_rejected() {
        // Gap between windows.
        assert_eq!(
            certify_walk(8, &[(0, 3), (4, 4)], &[]),
            WalkSafety::WindowsBroken {
                cluster: 1,
                expected_start: 3,
                start: 4,
                len: 4,
            }
        );
        // Overlap.
        assert!(matches!(
            certify_walk(8, &[(0, 5), (3, 5)], &[]),
            WalkSafety::WindowsBroken { cluster: 1, .. }
        ));
        // Empty window.
        assert!(matches!(
            certify_walk(8, &[(0, 4), (4, 0), (4, 4)], &[]),
            WalkSafety::WindowsBroken { cluster: 1, .. }
        ));
        // Coverage stops short.
        assert_eq!(
            certify_walk(8, &[(0, 4)], &[]),
            WalkSafety::WindowsBroken {
                cluster: 1,
                expected_start: 4,
                start: 4,
                len: 0,
            }
        );
        // Window past the chip.
        assert!(matches!(
            certify_walk(8, &[(0, 9)], &[]),
            WalkSafety::WindowsBroken { cluster: 0, .. }
        ));
    }

    #[test]
    fn out_of_chip_hosts_are_rejected() {
        assert_eq!(
            certify_walk(8, &[(0, 8)], &[0, 7, 8]),
            WalkSafety::HostOutOfWindow {
                section: 2,
                core: 8,
                cores: 8,
            }
        );
    }
}
