//! The config-aware progress prover.
//!
//! The runtime deadlock detector (`forced_stall_releases` /
//! `DriverError::Deadlock`) only fires *mid-simulation*; this pass turns
//! the hazard into a pre-simulation verdict. Given the arena's
//! dependence columns plus one concrete chip configuration — a placement
//! assignment, the chip's core count and `max_sections_per_core` — it
//! builds the **section-level wait-for graph** and either proves that
//! every admission order makes progress or returns a concrete wait
//! cycle.
//!
//! The model is deliberately stricter than the engines' park/handoff
//! runtime (which frees a stalled section's fetch slot and relaxes
//! capacity when every core is full): the prover assumes the paper's
//! *hold-slot* semantics — a section occupies one of its core's
//! `max_sections_per_core` slots from admission to completion — under an
//! **adversarial admission order**. Two kinds of edges arise:
//!
//! * **Producer edges**: a section waits for every earlier section that
//!   produced one of its remote source values, and for the section that
//!   forked it (it cannot even be admitted before the fork executes).
//! * **Capacity edges**: on an over-subscribed core (more hosted
//!   sections than slots), *any* hosted section may be holding the slot
//!   another hosted section needs, so the core's sections are mutually
//!   wait-connected.
//!
//! Capacity connectivity is handled by condensation: the hosted sections
//! of each over-subscribed core collapse into one component (a
//! union-find pass), and the cycle search runs on the condensed graph of
//! components and singleton sections linked by producer edges. A cycle
//! there — including one that leaves a component through singletons and
//! returns — is a wait cycle some admission order can realize:
//! [`Progress::PotentialCycle`] with the concrete section cycle as
//! witness. If the condensed graph is acyclic, no admission order can
//! wait forever: [`Progress::Proven`], with the longest producer-edge
//! chain as the certificate's depth.
//!
//! The verdict is conservative in exactly one direction, which is the
//! direction the engines assert: a run the runtime detector flags as
//! deadlocked must never have been `Proven`. The converse does not hold —
//! `PotentialCycle` only says the *hold-slot* abstraction admits a
//! cycle; the engines' park model routinely completes such runs.

use parsecs_trace::{SourceKind, TraceArena};

/// Why one section waits on another in the wait-for graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaitKind {
    /// The waiting section consumes a value (or its own creation) from
    /// the section it waits on.
    Producer,
    /// Both sections are hosted on the same over-subscribed core: the
    /// waiting section needs a slot the other may be holding.
    Capacity {
        /// The over-subscribed core.
        core: usize,
    },
}

/// One edge of a wait cycle: `from_section` cannot finish until
/// `to_section` does (producer edge) or releases its slot (capacity
/// edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct WaitEdge {
    /// The waiting section (total-order index).
    pub from_section: usize,
    /// The section being waited on (total-order index).
    pub to_section: usize,
    /// Why the wait exists.
    pub kind: WaitKind,
}

/// Outcome of the progress proof for one (arena × placement × chip)
/// cell.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Progress {
    /// The condensed wait-for graph is acyclic: every admission order
    /// makes progress, even under hold-slot semantics.
    Proven {
        /// Producer edges on the longest wait chain (0 when no section
        /// ever waits across a section boundary).
        longest_wait_chain: usize,
    },
    /// A wait cycle exists under some adversarial admission order: the
    /// concrete section cycle, alternating producer and capacity edges,
    /// closing back on its first section.
    PotentialCycle {
        /// The cycle's edges in order; `witness.last().to_section ==
        /// witness[0].from_section`.
        witness: Vec<WaitEdge>,
    },
}

impl Progress {
    /// Whether progress is proven for this configuration.
    pub fn is_proven(&self) -> bool {
        matches!(self, Progress::Proven { .. })
    }

    /// Producer edges on the longest wait chain (`None` for a potential
    /// cycle, where no finite chain bounds the wait).
    pub fn longest_wait_chain(&self) -> Option<usize> {
        match self {
            Progress::Proven { longest_wait_chain } => Some(*longest_wait_chain),
            Progress::PotentialCycle { .. } => None,
        }
    }
}

/// Proves or refutes progress for one placement of a structurally valid
/// arena (the caller — see [`crate::check_arena`] for the validator —
/// vouches for the columns; section indices are trusted).
///
/// `core_of[s]` is the core hosting section `s` (one entry per section,
/// every entry `< cores`); `max_sections_per_core` is the chip's
/// admission capacity per core.
pub fn prove_progress(
    arena: &TraceArena,
    core_of: &[usize],
    cores: usize,
    max_sections_per_core: usize,
) -> Progress {
    let spans = arena.sections();
    assert_eq!(
        core_of.len(),
        spans.len(),
        "one hosting core per section required"
    );
    // Section-level producer edges, consumer -> producer. Fork-creation
    // edges first (a section waits for its creator's fork), then remote
    // value deps; sorted + deduped below for determinism.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for span in spans {
        if let Some((creator, _)) = span.creator {
            edges.push((span.id.0, creator.0));
        }
    }
    for seq in 0..arena.len() {
        let s = arena.section(seq).0;
        for dep in arena.sources(seq) {
            if let SourceKind::Remote {
                producer_section, ..
            } = dep.kind()
            {
                if producer_section.0 != s {
                    edges.push((s, producer_section.0));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    prove_from_edges(spans.len(), &edges, core_of, cores, max_sections_per_core)
}

/// The prover's graph core, over an explicit producer-edge list.
fn prove_from_edges(
    sections: usize,
    edges: &[(usize, usize)],
    core_of: &[usize],
    cores: usize,
    max_sections_per_core: usize,
) -> Progress {
    // Capacity condensation: the hosted sections of every over-subscribed
    // core union into one component.
    let mut uf = UnionFind::new(sections);
    let mut hosted = vec![0usize; cores];
    for &core in core_of {
        assert!(
            core < cores,
            "placement host {core} outside chip of {cores}"
        );
        hosted[core] += 1;
    }
    let mut first_on_core: Vec<Option<usize>> = vec![None; cores];
    for (s, &core) in core_of.iter().enumerate() {
        if hosted[core] > max_sections_per_core {
            match first_on_core[core] {
                Some(first) => uf.union(first, s),
                None => first_on_core[core] = Some(s),
            }
        }
    }
    // A producer edge inside one component closes a two-edge cycle on
    // its own: the consumer holds a slot while it waits, and the
    // producer may need exactly that slot.
    for &(u, v) in edges {
        if uf.find(u) == uf.find(v) {
            return Progress::PotentialCycle {
                witness: vec![
                    WaitEdge {
                        from_section: u,
                        to_section: v,
                        kind: WaitKind::Producer,
                    },
                    WaitEdge {
                        from_section: v,
                        to_section: u,
                        kind: WaitKind::Capacity { core: core_of[v] },
                    },
                ],
            };
        }
    }
    // Condensed edges in CSR form, deduped per (component, component)
    // pair keeping the lexicographically first representative sections —
    // the whole pass stays deterministic.
    let mut cedges: Vec<(usize, usize, usize, usize)> = edges
        .iter()
        .map(|&(u, v)| (uf.find(u), uf.find(v), u, v))
        .collect();
    cedges.sort_unstable();
    cedges.dedup_by_key(|e| (e.0, e.1));
    let mut lo = vec![0usize; sections + 1];
    {
        let mut at = 0usize;
        for (node, slot) in lo.iter_mut().enumerate().take(sections) {
            *slot = at;
            while at < cedges.len() && cedges[at].0 == node {
                at += 1;
            }
        }
        lo[sections] = cedges.len();
    }
    // Iterative DFS over component roots: gray-hit = cycle (reconstruct
    // the witness from the stack), otherwise memoize the longest
    // producer-edge chain on finish.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; sections];
    let mut depth = vec![0usize; sections];
    let mut longest = 0usize;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..sections {
        if color[start] != WHITE || uf.find(start) != start {
            continue;
        }
        color[start] = GRAY;
        stack.push((start, lo[start]));
        while let Some(&(node, idx)) = stack.last() {
            if idx < lo[node + 1] {
                stack.last_mut().expect("frame just read").1 += 1;
                let (_, next, _, _) = cedges[idx];
                match color[next] {
                    WHITE => {
                        color[next] = GRAY;
                        stack.push((next, lo[next]));
                    }
                    GRAY => {
                        return Progress::PotentialCycle {
                            witness: witness_from_stack(&stack, next, &cedges, core_of),
                        };
                    }
                    _ => depth[node] = depth[node].max(depth[next] + 1),
                }
            } else {
                color[node] = BLACK;
                longest = longest.max(depth[node]);
                stack.pop();
                if let Some(&(parent, _)) = stack.last() {
                    depth[parent] = depth[parent].max(depth[node] + 1);
                }
            }
        }
    }
    Progress::Proven {
        longest_wait_chain: longest,
    }
}

/// Rebuilds the concrete section cycle from the DFS stack once a gray
/// component is re-entered. The stack holds the component path; each
/// entry's cursor points one past the edge it followed, so the
/// representative producer edge of every hop is recoverable, and
/// capacity edges are inserted wherever a hop arrives at and departs
/// from different sections of one (over-subscribed-core) component.
fn witness_from_stack(
    stack: &[(usize, usize)],
    reentered: usize,
    cedges: &[(usize, usize, usize, usize)],
    core_of: &[usize],
) -> Vec<WaitEdge> {
    let pos = stack
        .iter()
        .position(|&(node, _)| node == reentered)
        .expect("re-entered component is gray, hence on the stack");
    // Representative (from_section, to_section) of each hop around the
    // component cycle stack[pos] -> ... -> stack[last] -> stack[pos].
    let mut hops: Vec<(usize, usize)> = Vec::with_capacity(stack.len() - pos);
    for window in stack[pos..].windows(2) {
        let (_, cursor) = window[0];
        let (_, _, u, v) = cedges[cursor - 1];
        debug_assert_eq!(cedges[cursor - 1].1, window[1].0);
        hops.push((u, v));
    }
    let (_, closing_cursor) = stack[stack.len() - 1];
    let (_, _, u, v) = cedges[closing_cursor - 1];
    debug_assert_eq!(cedges[closing_cursor - 1].1, reentered);
    hops.push((u, v));
    let mut witness = Vec::with_capacity(hops.len() * 2);
    for (i, &(u, v)) in hops.iter().enumerate() {
        witness.push(WaitEdge {
            from_section: u,
            to_section: v,
            kind: WaitKind::Producer,
        });
        let next_from = hops[(i + 1) % hops.len()].0;
        if v != next_from {
            witness.push(WaitEdge {
                from_section: v,
                to_section: next_from,
                kind: WaitKind::Capacity { core: core_of[v] },
            });
        }
    }
    witness
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Union by smaller root so component representatives are stable
    /// (the lowest member), keeping witnesses deterministic.
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_edges(sections: usize) -> Vec<(usize, usize)> {
        (1..sections).map(|s| (s, s - 1)).collect()
    }

    fn round_robin(sections: usize, cores: usize) -> Vec<usize> {
        (0..sections).map(|s| s % cores).collect()
    }

    fn assert_closed(witness: &[WaitEdge]) {
        assert!(!witness.is_empty());
        for pair in witness.windows(2) {
            assert_eq!(pair[0].to_section, pair[1].from_section);
        }
        assert_eq!(
            witness.last().unwrap().to_section,
            witness[0].from_section,
            "witness must close on its first section"
        );
    }

    #[test]
    fn under_capacity_chains_are_proven_with_their_length() {
        // 8 chained sections on 64 cores: no over-subscription, the
        // longest wait chain is the 7 producer edges of the chain.
        let progress = prove_from_edges(8, &chain_edges(8), &round_robin(8, 64), 64, 1);
        assert_eq!(
            progress,
            Progress::Proven {
                longest_wait_chain: 7
            }
        );
        assert!(progress.is_proven());
        assert_eq!(progress.longest_wait_chain(), Some(7));
    }

    #[test]
    fn independent_sections_wait_zero() {
        let progress = prove_from_edges(16, &[], &round_robin(16, 4), 4, 8);
        assert_eq!(
            progress,
            Progress::Proven {
                longest_wait_chain: 0
            }
        );
    }

    #[test]
    fn colocated_producer_and_consumer_close_a_two_edge_cycle() {
        // Sections 0 and 1 both on core 0 with one slot; 1 consumes 0.
        let progress = prove_from_edges(2, &[(1, 0)], &[0, 0], 1, 1);
        let Progress::PotentialCycle { witness } = progress else {
            panic!("over-subscribed dependent pair must cycle");
        };
        assert_closed(&witness);
        assert_eq!(witness.len(), 2);
        assert_eq!(witness[0].kind, WaitKind::Producer);
        assert_eq!(witness[1].kind, WaitKind::Capacity { core: 0 });
    }

    #[test]
    fn capacity_starved_round_robin_chain_cycles_through_singletons() {
        // 70 chained sections round-robin on 64 single-slot cores: cores
        // 0..6 host two sections each. The cycle leaves an
        // over-subscribed component, descends the chain through
        // singleton sections and returns.
        let progress = prove_from_edges(70, &chain_edges(70), &round_robin(70, 64), 64, 1);
        let Progress::PotentialCycle { witness } = progress else {
            panic!("capacity-starved chain must cycle");
        };
        assert_closed(&witness);
        assert!(
            witness
                .iter()
                .any(|e| matches!(e.kind, WaitKind::Capacity { .. })),
            "a capacity hop must appear in {witness:?}"
        );
        assert!(
            witness.iter().any(|e| e.kind == WaitKind::Producer),
            "a producer hop must appear in {witness:?}"
        );
    }

    #[test]
    fn exactly_at_capacity_stays_proven() {
        // 128 chained sections on 64 cores with two slots each: full but
        // not over-subscribed.
        let progress = prove_from_edges(128, &chain_edges(128), &round_robin(128, 64), 64, 2);
        assert_eq!(
            progress,
            Progress::Proven {
                longest_wait_chain: 127
            }
        );
    }

    #[test]
    fn over_subscription_without_cross_deps_is_harmless() {
        // 70 independent sections on 64 single-slot cores: capacity
        // components exist but no producer edge ever enters one.
        let progress = prove_from_edges(70, &[], &round_robin(70, 64), 64, 1);
        assert_eq!(
            progress,
            Progress::Proven {
                longest_wait_chain: 0
            }
        );
    }

    #[test]
    fn witnesses_are_deterministic() {
        let a = prove_from_edges(70, &chain_edges(70), &round_robin(70, 64), 64, 1);
        let b = prove_from_edges(70, &chain_edges(70), &round_robin(70, 64), 64, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn arena_proof_covers_fork_and_remote_edges() {
        let program = parsecs_asm::assemble(
            "t:   .quad 4, 2, 6
             main: movq $t, %rdi
                   fork leaf
                   out  %rax
                   halt
             leaf: movq (%rdi), %rax
                   addq 8(%rdi), %rax
                   addq 16(%rdi), %rax
                   endfork",
        )
        .expect("assembles");
        let arena = parsecs_trace::TraceArena::from_program(&program, 10_000).expect("runs");
        let sections = arena.sections().len();
        assert!(sections >= 2, "fork must split the trace");
        // Spread placement with ample capacity: proven, and the
        // fork/remote chain spans at least one producer edge.
        let spread = round_robin(sections, sections);
        let proven = prove_progress(&arena, &spread, sections, 8);
        match proven {
            Progress::Proven { longest_wait_chain } => {
                assert!(longest_wait_chain >= 1, "chain {longest_wait_chain}")
            }
            other => panic!("ample capacity must prove progress, got {other:?}"),
        }
        // Everything piled on one single-slot core: the fork/consume
        // edges close a cycle with the capacity component.
        let piled = vec![0usize; sections];
        let starved = prove_progress(&arena, &piled, 1, 1);
        let Progress::PotentialCycle { witness } = starved else {
            panic!("piled placement must cycle");
        };
        assert_closed(&witness);
    }
}
