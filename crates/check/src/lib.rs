//! # parsecs-check — static analysis over sectioned trace arenas
//!
//! The execution model rests on structural invariants of the sectioned
//! trace — section spans tiling the record range, one writer per
//! location version, producers strictly preceding consumers — that the
//! engines historically enforced only with scattered `assert!`s. This
//! crate makes them a first-class analysis with three layers:
//!
//! 1. **Invariant validator** ([`check_arena`], [`InvariantViolation`]):
//!    pure passes over the raw columns checking section well-formedness,
//!    dep-slice bounds and 16-byte packing integrity, the single-writer
//!    renaming discipline, dependence acyclicity and lean-arena column
//!    consistency — returning typed per-violation diagnostics instead of
//!    aborting.
//! 2. **Race certifier** ([`DrainSafety`], [`certify_columns`]): a
//!    symbolic replay of the resolver's batched completion rounds that
//!    certifies the parallel-drain precondition (pairwise-disjoint write
//!    targets within a round). The planned rayon fork of the drain
//!    (ROADMAP item 1) requires [`DrainSafety::Certified`].
//! 3. **Static bounds analyzer** ([`StaticBounds`]): per-section and
//!    whole-program dependence-DAG critical path and ILP width;
//!    `total_cycles ≥ critical_path` holds for every configuration and
//!    is cross-checked against both engines in the differential tests.
//! 4. **Progress prover** ([`Progress`], [`prove_progress`]): given one
//!    concrete (placement × chip) configuration, proves the section
//!    wait-for graph (producer deps ∪ capacity edges of over-subscribed
//!    cores) admits no cycle, or returns a concrete witness cycle. A
//!    run the runtime deadlock detector flags must never have been
//!    [`Progress::Proven`]; both engines assert exactly that.
//! 5. **Walk certifier** ([`WalkSafety`], [`certify_walk`]): certifies
//!    that a cluster partition tiles the core range and that no
//!    section's ready-queue link crosses a window — the parallel-walk
//!    fork precondition alongside [`DrainSafety::Certified`].
//! 6. **Schedule analyzer** ([`ScheduleBounds`], [`bound_schedule`]):
//!    given a concrete (placement × chip) configuration, a **certified**
//!    NoC/placement-weighted lower bound on the cycle count (critical
//!    path re-weighted with per-hop latencies, maxed against per-core
//!    work and ejection-port contention, `critical_path ≤ lb ≤ cycles`
//!    asserted by both engines) plus an **uncertified** AMTHA-style
//!    list-schedule predictor ([`ScheduleBounds::predicted_cycles`])
//!    whose rank correlation against measured cycles the bench harness
//!    gates — the zero-simulation objective evaluator for design-space
//!    exploration.
//!
//! The engines run the whole analysis before simulating when
//! `SimConfig::validate` is set; the `arena_check` binary runs it over
//! every workload generator.
//!
//! ## Example
//!
//! ```
//! use parsecs_check::check_arena;
//! use parsecs_trace::TraceArena;
//!
//! let program = parsecs_asm::assemble(
//!     "t:   .quad 4, 2
//!      main: movq $t, %rdi
//!            fork leaf
//!            out  %rax
//!            halt
//!      leaf: movq (%rdi), %rax
//!            addq 8(%rdi), %rax
//!            endfork",
//! ).expect("assembles");
//! let arena = TraceArena::from_program(&program, 1_000).expect("runs");
//! let report = check_arena(&arena);
//! assert!(report.is_clean());
//! assert!(report.drain.is_certified());
//! let bounds = report.bounds.expect("clean arenas are analyzed");
//! assert!(bounds.critical_path > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod certify;
mod progress;
mod schedule;
mod validate;
mod violation;
mod walk;

use std::fmt;

use parsecs_trace::TraceArena;

pub use bounds::{SectionBounds, StaticBounds};
pub use certify::{certify_columns, DrainSafety};
pub use progress::{prove_progress, Progress, WaitEdge, WaitKind};
pub use schedule::{bound_schedule, BindingTerm, ChipModel, ScheduleBounds};
pub use violation::InvariantViolation;
pub use walk::{certify_walk, WalkSafety};

/// Diagnostics stored per report before further ones are only counted
/// (a systematically corrupt chip-scale arena must not make the report
/// itself unbounded).
pub const MAX_VIOLATIONS: usize = 256;

/// The result of the full static analysis of one arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Invariant violations found, in pass order (capped at
    /// [`MAX_VIOLATIONS`]; see [`CheckReport::truncated`]).
    pub violations: Vec<InvariantViolation>,
    /// Whether violations past the cap were dropped from the list.
    pub truncated: bool,
    /// The parallel-drain certificate ([`DrainSafety::Unchecked`] when
    /// the validator found structural violations first).
    pub drain: DrainSafety,
    /// Static timing bounds (`None` when the validator found violations;
    /// bounds over a lying arena would ground nothing).
    pub bounds: Option<StaticBounds>,
    /// The configuration-aware progress proof (`None` until an engine
    /// attaches it: unlike the passes above it needs a concrete
    /// placement and chip, which [`check_arena`] does not have).
    pub progress: Option<Progress>,
    /// The configuration-aware schedule bounds (`None` until an engine
    /// attaches them — like [`CheckReport::progress`], the pass needs
    /// the concrete placement and chip model).
    pub schedule: Option<ScheduleBounds>,
    /// The parallel-walk certificate ([`WalkSafety::Unchecked`] until an
    /// engine attaches its cluster partition).
    pub walk: WalkSafety,
    /// Records in the analyzed arena.
    pub instructions: usize,
    /// Sections in the analyzed arena.
    pub sections: usize,
    /// Whether the single-writer renaming replay ran (`false` for lean
    /// arenas, which drop the write columns it needs, and when the
    /// structural passes already failed).
    pub writer_discipline_checked: bool,
}

impl CheckReport {
    /// No violations found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }

    /// The first violation found, if any.
    pub fn first_violation(&self) -> Option<&InvariantViolation> {
        self.violations.first()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(first) = self.first_violation() {
            let extra = if self.truncated { "+" } else { "" };
            write!(
                f,
                "{} violation(s){extra} across {} instruction(s); first: {first}",
                self.violations.len(),
                self.instructions
            )
        } else {
            match (&self.drain, &self.bounds) {
                (
                    DrainSafety::Conflict {
                        round,
                        first,
                        second,
                    },
                    _,
                ) => write!(
                    f,
                    "invariants hold but drain round {round} conflicts on records \
                     {first} and {second}"
                ),
                (drain, Some(bounds)) => {
                    write!(
                        f,
                        "clean: {} instruction(s), {} section(s), drain {}, \
                         critical path ≥ {}, ILP width {:.2}",
                        self.instructions,
                        self.sections,
                        if drain.is_certified() {
                            "certified"
                        } else {
                            "unchecked"
                        },
                        bounds.critical_path,
                        bounds.ilp_width()
                    )?;
                    match &self.progress {
                        Some(Progress::Proven { longest_wait_chain }) => {
                            write!(f, ", progress proven (wait chain {longest_wait_chain})")?;
                        }
                        Some(Progress::PotentialCycle { witness }) => {
                            write!(f, ", potential wait cycle ({} edge(s))", witness.len())?;
                        }
                        None => {}
                    }
                    if let WalkSafety::Certified {
                        clusters,
                        max_window,
                    } = self.walk
                    {
                        write!(f, ", walk certified ({clusters}×≤{max_window})")?;
                    }
                    if let Some(schedule) = &self.schedule {
                        write!(
                            f,
                            ", schedule lb ≥ {} ({} bound), predicted {}",
                            schedule.lb, schedule.binding, schedule.predicted_cycles
                        )?;
                    }
                    Ok(())
                }
                (_, None) => write!(
                    f,
                    "clean: {} instruction(s), {} section(s)",
                    self.instructions, self.sections
                ),
            }
        }
    }
}

/// Runs the full static analysis: the invariant validator always; the
/// race certifier and the bounds analyzer only once the validator comes
/// back clean (both index the columns through the offsets the validator
/// vouches for).
pub fn check_arena(arena: &TraceArena) -> CheckReport {
    let mut col = validate::Collector::new(MAX_VIOLATIONS);
    let shape_ok = validate::column_shape(arena, &mut col);
    if shape_ok {
        validate::sections(arena, &mut col);
        validate::deps(arena, &mut col);
    }
    let mut writer_discipline_checked = false;
    if shape_ok && col.out.is_empty() && arena.records_writes() {
        validate::writer_discipline(arena, &mut col);
        writer_discipline_checked = true;
    }
    let clean = col.out.is_empty() && !col.truncated;
    let (drain, bounds) = if clean {
        (certify::certify(arena), Some(bounds::analyze(arena)))
    } else {
        (DrainSafety::Unchecked, None)
    };
    CheckReport {
        violations: col.out,
        truncated: col.truncated,
        drain,
        bounds,
        progress: None,
        schedule: None,
        walk: WalkSafety::Unchecked,
        instructions: arena.len(),
        sections: arena.sections().len(),
        writer_discipline_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_arena() -> TraceArena {
        let program = parsecs_asm::assemble(
            "t:   .quad 4, 2, 6
             main: movq $t, %rdi
                   fork leaf
                   out  %rax
                   halt
             leaf: movq (%rdi), %rax
                   addq 8(%rdi), %rax
                   addq 16(%rdi), %rax
                   endfork",
        )
        .expect("assembles");
        TraceArena::from_program(&program, 10_000).expect("runs")
    }

    #[test]
    fn clean_arenas_certify_and_bound() {
        let report = check_arena(&sum_arena());
        assert!(report.is_clean(), "{report}");
        assert!(report.writer_discipline_checked);
        assert!(report.drain.is_certified());
        let bounds = report.bounds.as_ref().expect("bounds");
        // The three-instruction add chain in `leaf` forces at least four
        // dependence levels (movq feeds addq feeds addq, plus main's
        // movq $t).
        assert!(bounds.dag_depth >= 4, "depth {}", bounds.dag_depth);
        assert!(bounds.critical_path as usize >= bounds.dag_depth);
        assert!(bounds.ilp_width() > 0.0);
        assert_eq!(bounds.per_section.len(), report.sections);
        assert!(report.to_string().contains("clean"));
    }

    #[test]
    fn lean_arenas_skip_only_the_writer_replay() {
        let program = parsecs_asm::assemble(
            "main: movq $7, %rax
                   out %rax
                   halt",
        )
        .expect("assembles");
        let arena = parsecs_trace::TraceArena::from_program_lean(&program, 1_000).expect("runs");
        let report = check_arena(&arena);
        assert!(report.is_clean(), "{report}");
        assert!(!report.writer_discipline_checked);
        assert!(report.drain.is_certified());
        assert!(report.bounds.is_some());
    }

    #[test]
    fn display_renders_attached_schedule_bounds() {
        use parsecs_noc::{NocConfig, NocModel, Topology};

        let arena = sum_arena();
        let mut report = check_arena(&arena);
        assert!(
            !report.to_string().contains("schedule lb"),
            "no schedule clause before an engine attaches one"
        );
        let model = ChipModel {
            cores: 2,
            noc: NocModel::new(Topology::crossbar(2), NocConfig::default()),
            dmh_latency: 3,
            per_section_hop: 0,
            fetch_stalls: true,
        };
        let core_of: Vec<usize> = (0..report.sections).map(|s| s % 2).collect();
        let schedule = bound_schedule(&arena, &core_of, &model);
        report.schedule = Some(schedule.clone());
        let text = report.to_string();
        assert!(
            text.contains(&format!(
                "schedule lb ≥ {} ({} bound), predicted {}",
                schedule.lb, schedule.binding, schedule.predicted_cycles
            )),
            "diagnostics must render the schedule verdict: {text}"
        );
        // The one-line diagnostic stays bounded whatever the cell size.
        assert!(text.len() < 400, "diagnostic ballooned: {text}");
    }

    #[test]
    fn empty_arenas_are_clean() {
        let report = check_arena(&TraceArena::new());
        assert!(report.is_clean());
        assert_eq!(report.instructions, 0);
        assert_eq!(
            report.bounds.expect("bounds").critical_path,
            0,
            "an empty trace retires nothing"
        );
    }
}
