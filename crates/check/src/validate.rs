//! The invariant validator: pure passes over the raw arena columns.
//!
//! The passes run in dependency order — column shape first (so later
//! passes may index the fixed-width columns), then section tiling, then
//! the dependence slices and their 16-byte packings, and finally (full
//! arenas only, and only once everything structural is clean) a replay
//! of the sectioner's single-writer renaming discipline.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use parsecs_isa::Reg;
use parsecs_machine::TraceKind;
use parsecs_trace::{AddrHasher, TraceArena};

use crate::violation::InvariantViolation;

/// Mirrors of the arena's packed-location tags (low three bits of a
/// packed location) and provenance tags (low three bits of
/// `section_kind`). Pinned against [`parsecs_trace::PackedDep::new`] by
/// the `packing_constants_match_the_arena` test, so an encoding change
/// in the arena fails loudly here instead of silently passing corrupt
/// packings.
pub(crate) const LOC_MEM: u64 = 0;
pub(crate) const LOC_REG: u64 = 1;
pub(crate) const LOC_FLAGS: u64 = 2;
pub(crate) const KIND_LOCAL: u32 = 0;
pub(crate) const KIND_REMOTE: u32 = 1;
pub(crate) const KIND_FORK_COPY: u32 = 2;
pub(crate) const KIND_INITIAL_REG: u32 = 3;
pub(crate) const KIND_INITIAL_MEM: u32 = 4;

/// Bounded violation sink: diagnostics past the cap are counted, not
/// stored, so a systematically corrupt chip-scale arena cannot make the
/// report itself unbounded.
pub(crate) struct Collector {
    pub(crate) out: Vec<InvariantViolation>,
    pub(crate) truncated: bool,
    cap: usize,
}

impl Collector {
    pub(crate) fn new(cap: usize) -> Collector {
        Collector {
            out: Vec::new(),
            truncated: false,
            cap,
        }
    }

    pub(crate) fn push(&mut self, violation: InvariantViolation) {
        if self.out.len() < self.cap {
            self.out.push(violation);
        } else {
            self.truncated = true;
        }
    }
}

/// Checks that every fixed-width column has one entry per record, that
/// the offset columns carry their sentinels, and that the write columns
/// match the arena's lean-ness. Returns `false` when later passes must
/// not index the columns.
pub(crate) fn column_shape(arena: &TraceArena, col: &mut Collector) -> bool {
    let raw = arena.raw();
    let n = raw.ip.len();
    let before = col.out.len();
    let per_record: [(&'static str, usize); 4] = [
        ("mnemonic_id", raw.mnemonic_id.len()),
        ("section", raw.section.len()),
        ("kind_flags", raw.kind_flags.len()),
        ("reg_deps", raw.reg_deps.len()),
    ];
    for (column, len) in per_record {
        if len != n {
            col.push(InvariantViolation::ColumnBroken {
                column,
                index: len,
                detail: "length differs from the record count",
            });
        }
    }
    if raw.dep_off.len() != n + 1 {
        col.push(InvariantViolation::ColumnBroken {
            column: "dep_off",
            index: raw.dep_off.len(),
            detail: "expected one offset per record plus a trailing sentinel",
        });
    } else {
        if raw.dep_off[0] != 0 {
            col.push(InvariantViolation::ColumnBroken {
                column: "dep_off",
                index: 0,
                detail: "first offset is not zero",
            });
        }
        if raw.dep_off[n] as usize != raw.deps.len() {
            col.push(InvariantViolation::ColumnBroken {
                column: "dep_off",
                index: n,
                detail: "trailing sentinel differs from the shared slice's length",
            });
        }
    }
    if arena.records_writes() {
        if raw.write_off.len() != n + 1 {
            col.push(InvariantViolation::ColumnBroken {
                column: "write_off",
                index: raw.write_off.len(),
                detail: "expected one offset per record plus a trailing sentinel",
            });
        } else {
            if raw.write_off[0] != 0 {
                col.push(InvariantViolation::ColumnBroken {
                    column: "write_off",
                    index: 0,
                    detail: "first offset is not zero",
                });
            }
            if raw.write_off[n] as usize != raw.writes.len() {
                col.push(InvariantViolation::ColumnBroken {
                    column: "write_off",
                    index: n,
                    detail: "trailing sentinel differs from the shared slice's length",
                });
            }
            for seq in 0..n {
                if raw.write_off[seq] > raw.write_off[seq + 1] {
                    col.push(InvariantViolation::ColumnBroken {
                        column: "write_off",
                        index: seq,
                        detail: "offsets are not monotone",
                    });
                }
            }
        }
        for (index, &w) in raw.writes.iter().enumerate() {
            if !valid_location(w) {
                col.push(InvariantViolation::ColumnBroken {
                    column: "writes",
                    index,
                    detail: "invalid packed location",
                });
            }
        }
    } else if raw.write_off != [0] || !raw.writes.is_empty() {
        col.push(InvariantViolation::ColumnBroken {
            column: "write_off",
            index: raw.writes.len(),
            detail: "lean arenas must keep the write columns empty",
        });
    }
    for (seq, &id) in raw.mnemonic_id.iter().enumerate() {
        if id as usize >= raw.mnemonics.len() {
            col.push(InvariantViolation::ColumnBroken {
                column: "mnemonic_id",
                index: seq,
                detail: "id points past the mnemonic table",
            });
        }
    }
    col.out.len() == before && !col.truncated
}

fn valid_location(packed: u64) -> bool {
    match packed & 7 {
        LOC_MEM => true,
        LOC_REG => (packed >> 3) < Reg::COUNT as u64,
        LOC_FLAGS => packed == LOC_FLAGS,
        _ => false,
    }
}

/// Checks that the section spans tile `[0, n)` in total order, that the
/// per-record section column agrees with the tiling, and that every
/// creator link names a fork in an earlier section.
pub(crate) fn sections(arena: &TraceArena, col: &mut Collector) {
    let raw = arena.raw();
    let n = arena.len();
    let spans = arena.sections();
    let mut expected = 0usize;
    for (i, span) in spans.iter().enumerate() {
        let well_formed =
            span.id.0 == i && span.start == expected && span.end >= span.start && span.end <= n;
        if !well_formed {
            col.push(InvariantViolation::SectionSpanBroken {
                section: i,
                expected_start: expected,
                start: span.start,
                end: span.end,
            });
        }
        // Resynchronise so one bad span yields one diagnostic, not a
        // cascade over every span after it.
        expected = span.end.clamp(expected, n);
        if well_formed {
            for seq in span.start..span.end {
                let recorded = raw.section[seq] as usize;
                if recorded != i {
                    col.push(InvariantViolation::SectionColumnMismatch {
                        seq,
                        recorded,
                        containing: i,
                    });
                }
            }
        }
        if let Some((creator, fork_seq)) = span.creator {
            let linked = creator.0 < i
                && fork_seq < span.start
                && fork_seq < n
                && raw.section[fork_seq] as usize == creator.0
                && arena.kind(fork_seq) == TraceKind::Fork;
            if !linked {
                col.push(InvariantViolation::CreatorBroken {
                    section: i,
                    creator_section: creator.0,
                    fork_seq,
                });
            }
        }
    }
    if expected != n {
        // Trailing records no span covers (or, if the spans overran, the
        // loop above already reported them; `clamp` keeps `expected ≤ n`).
        col.push(InvariantViolation::SectionSpanBroken {
            section: spans.len(),
            expected_start: expected,
            start: n,
            end: n,
        });
    }
}

/// Checks every record's dependence slice bounds, every 16-byte packing,
/// and the acyclicity topological invariant (producer strictly precedes
/// consumer in trace order).
pub(crate) fn deps(arena: &TraceArena, col: &mut Collector) {
    let raw = arena.raw();
    let n = arena.len();
    for seq in 0..n {
        let start = raw.dep_off[seq] as usize;
        let end = raw.dep_off[seq + 1] as usize;
        let reg = raw.reg_deps[seq] as usize;
        if start > end || end > raw.deps.len() || reg > end - start {
            col.push(InvariantViolation::DepSliceBroken {
                seq,
                start,
                end,
                reg,
                limit: raw.deps.len(),
            });
            continue;
        }
        for (dep, packed) in raw.deps[start..end].iter().enumerate() {
            let (loc, producer, section_kind) = packed.raw_parts();
            let tag = loc & 7;
            let kind = section_kind & 7;
            let producer_section = (section_kind >> 3) as usize;
            let reg_class = dep < reg;
            let loc_detail = match tag {
                LOC_MEM if reg_class => Some("memory location in the register-class slice"),
                LOC_REG | LOC_FLAGS if !reg_class => {
                    Some("register-class location in the memory slice")
                }
                LOC_REG if (loc >> 3) >= Reg::COUNT as u64 => Some("register index out of range"),
                LOC_FLAGS if loc != LOC_FLAGS => Some("flags location carries stray bits"),
                LOC_MEM | LOC_REG | LOC_FLAGS => None,
                _ => Some("invalid location tag"),
            };
            if let Some(detail) = loc_detail {
                col.push(InvariantViolation::DepPackingBroken { seq, dep, detail });
            }
            match kind {
                KIND_LOCAL | KIND_REMOTE => {
                    let p = producer as usize;
                    if p >= n {
                        col.push(InvariantViolation::DepPackingBroken {
                            seq,
                            dep,
                            detail: "producer index out of range",
                        });
                        continue;
                    }
                    if p >= seq {
                        col.push(InvariantViolation::DependenceCycle {
                            seq,
                            dep,
                            producer: p,
                        });
                        continue;
                    }
                    let producer_column = raw.section[p] as usize;
                    let my_column = raw.section[seq] as usize;
                    if kind == KIND_LOCAL && producer_column != my_column {
                        col.push(InvariantViolation::DepPackingBroken {
                            seq,
                            dep,
                            detail: "local producer in a different section",
                        });
                    }
                    if kind == KIND_REMOTE {
                        if producer_section != producer_column {
                            col.push(InvariantViolation::DepPackingBroken {
                                seq,
                                dep,
                                detail:
                                    "remote section tag disagrees with the producer's section column",
                            });
                        } else if producer_column == my_column {
                            col.push(InvariantViolation::DepPackingBroken {
                                seq,
                                dep,
                                detail: "remote producer in the consumer's own section",
                            });
                        }
                    }
                }
                KIND_FORK_COPY if tag != LOC_REG => {
                    col.push(InvariantViolation::DepPackingBroken {
                        seq,
                        dep,
                        detail: "fork-copy provenance on a non-register location",
                    });
                }
                KIND_INITIAL_REG if tag == LOC_MEM => {
                    col.push(InvariantViolation::DepPackingBroken {
                        seq,
                        dep,
                        detail: "initial-register provenance on a memory location",
                    });
                }
                KIND_INITIAL_MEM if tag != LOC_MEM => {
                    col.push(InvariantViolation::DepPackingBroken {
                        seq,
                        dep,
                        detail: "initial-memory provenance on a register-class location",
                    });
                }
                KIND_FORK_COPY | KIND_INITIAL_REG | KIND_INITIAL_MEM => {}
                _ => {
                    col.push(InvariantViolation::DepPackingBroken {
                        seq,
                        dep,
                        detail: "invalid provenance tag",
                    });
                }
            }
        }
    }
}

/// `(producer trace index, producer section)`; `u32::MAX` marks an
/// unwritten location — the sectioner's own convention.
const NO_WRITER: (u32, u32) = (u32::MAX, u32::MAX);
const FLAGS_SLOT: usize = Reg::COUNT;

/// Replays the sectioner's renaming (`StreamingSectioner::resolve`)
/// against the recorded writes and checks every dependence names exactly
/// the producer — and carries exactly the provenance — the replay
/// derives. Requires a full arena (lean arenas drop the write columns)
/// and structurally clean columns; the caller gates on both.
pub(crate) fn writer_discipline(arena: &TraceArena, col: &mut Collector) {
    let raw = arena.raw();
    let n = arena.len();
    let spans = arena.sections();
    let mut reg_writer = [NO_WRITER; Reg::COUNT + 1];
    let mut mem_writer: HashMap<u64, (u32, u32), BuildHasherDefault<AddrHasher>> =
        HashMap::default();
    for seq in 0..n {
        let current = raw.section[seq];
        let has_creator = spans[current as usize].creator.is_some();
        for (dep, packed) in arena.sources(seq).iter().enumerate() {
            let (loc, producer, section_kind) = packed.raw_parts();
            let tag = loc & 7;
            let kind = section_kind & 7;
            let writer = match tag {
                LOC_REG => reg_writer[(loc >> 3) as usize],
                LOC_FLAGS => reg_writer[FLAGS_SLOT],
                _ => mem_writer.get(&loc).copied().unwrap_or(NO_WRITER),
            };
            let (expected_kind, expected_producer) = if writer == NO_WRITER {
                let kind = if tag == LOC_MEM {
                    KIND_INITIAL_MEM
                } else {
                    KIND_INITIAL_REG
                };
                (kind, None)
            } else if writer.1 == current {
                (KIND_LOCAL, Some(writer.0 as usize))
            } else {
                let copied = tag == LOC_REG && Reg::ALL[(loc >> 3) as usize].is_fork_copied();
                if copied && has_creator {
                    (KIND_FORK_COPY, None)
                } else {
                    (KIND_REMOTE, Some(writer.0 as usize))
                }
            };
            let claimed = if kind == KIND_LOCAL || kind == KIND_REMOTE {
                Some(producer as usize)
            } else {
                None
            };
            if kind != expected_kind || claimed != expected_producer {
                col.push(InvariantViolation::WriterDiscipline {
                    seq,
                    dep,
                    claimed,
                    actual: (writer != NO_WRITER).then_some(writer.0 as usize),
                });
            }
        }
        let writes = &raw.writes[raw.write_off[seq] as usize..raw.write_off[seq + 1] as usize];
        for &w in writes {
            let writer = (seq as u32, current);
            match w & 7 {
                LOC_REG => reg_writer[(w >> 3) as usize] = writer,
                LOC_FLAGS => reg_writer[FLAGS_SLOT] = writer,
                _ => {
                    mem_writer.insert(w, writer);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use parsecs_machine::Location;
    use parsecs_trace::{PackedDep, SectionId, SourceDep, SourceKind};

    use super::*;

    /// Pins the mirrored tag constants to the arena's actual encoding.
    #[test]
    fn packing_constants_match_the_arena() {
        let cases = [
            (
                SourceDep {
                    location: Location::Mem(0x40),
                    kind: SourceKind::InitialMemory,
                },
                0x40 | LOC_MEM,
                0,
                KIND_INITIAL_MEM,
            ),
            (
                SourceDep {
                    location: Location::Reg(Reg::Rbx),
                    kind: SourceKind::InitialRegister,
                },
                ((Reg::Rbx.index() as u64) << 3) | LOC_REG,
                0,
                KIND_INITIAL_REG,
            ),
            (
                SourceDep {
                    location: Location::Flags,
                    kind: SourceKind::Local { producer: 7 },
                },
                LOC_FLAGS,
                7,
                KIND_LOCAL,
            ),
            (
                SourceDep {
                    location: Location::Reg(Reg::Rsp),
                    kind: SourceKind::ForkCopy,
                },
                ((Reg::Rsp.index() as u64) << 3) | LOC_REG,
                0,
                KIND_FORK_COPY,
            ),
            (
                SourceDep {
                    location: Location::Reg(Reg::Rax),
                    kind: SourceKind::Remote {
                        producer: 9,
                        producer_section: SectionId(2),
                    },
                },
                ((Reg::Rax.index() as u64) << 3) | LOC_REG,
                9,
                (2 << 3) | KIND_REMOTE,
            ),
        ];
        for (dep, loc, producer, section_kind) in cases {
            assert_eq!(
                PackedDep::new(&dep).raw_parts(),
                (loc, producer, section_kind),
                "{dep:?}"
            );
        }
    }
}
