//! Vendored offline stand-in for the crates.io `criterion` crate.
//!
//! See `README.md`: only the API subset used by this workspace's benches
//! is provided — warm-up plus median-of-samples timing, printed one line
//! per benchmark, with no statistical machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`: a short warm-up, then a fixed number of timed
    /// samples, each over enough iterations to be observable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration calibration: aim for samples of
        // at least ~10 ms without spending more than ~1 s calibrating.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        const SAMPLES: usize = 11;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters.max(1) as u32);
        }
        self.samples.sort();
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            Duration::ZERO
        } else {
            self.samples[self.samples.len() / 2]
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work each subsequent benchmark performs per
    /// iteration, enabling a throughput column.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Times `routine` against `input`, printing one result line.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        routine(&mut bencher, input);
        let per_iter = bencher.median();
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        let rate = self.throughput.map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = if per_iter.is_zero() {
                f64::INFINITY
            } else {
                count as f64 / per_iter.as_secs_f64()
            };
            format!("  {:>14.0} {unit}/s", per_sec)
        });
        println!(
            "{label:<56} {:>12.3?}/iter{}",
            per_iter,
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group (prints a separating blank line).
    pub fn finish(self) {
        println!();
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }
}

/// Bundles benchmark functions into one runner function, as in the real
/// criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }
}
