//! The completion drain: dependence resolution shared by both engines.
//!
//! Stage timestamps are pure functions of the fetch cycles and the
//! producers' completion cycles, so resolution runs ahead of the clock:
//! [`Resolver::drain`] computes every timestamp that has become
//! computable and parks the rest on producer→consumer wake-up lists — no
//! instruction is ever rescanned while its inputs are still unknown.
//!
//! The drain is **batched**: each round takes the whole pending set — the
//! cycle's fetches first, then the consumers woken by the previous
//! round's completions — sorts it, and sweeps each instruction's packed
//! dep slice in ascending trace order. On top of the batching, a large
//! round can *fork*: resolution splits into a pure, read-only
//! [`Resolver::compute_one`] and a mutating commit, so the compute pass
//! runs over the scoped pool with each worker filling its own outcome
//! buffer, and the commits replay sequentially in ascending batch order.
//! An entry whose compute observed a producer as incomplete that a
//! *earlier* batch entry's commit then resolved is recomputed in the
//! ascending retry sweep — producers precede consumers in the sorted
//! batch, so the sweep restores exactly the sequential round's view and
//! the fork is bit-identical to the sequential drain (the differential
//! suites assert this across both engines and both stats modes).
//!
//! The fork is only reached when the caller passes a pool, which the
//! orchestrator only does for arenas whose static analysis returned
//! [`parsecs_check::DrainSafety::Certified`] — the machine-checked
//! guarantee that a round's dep slices are well-formed (in particular
//! acyclic, producers strictly before consumers), which is what the retry
//! sweep's one-pass argument rests on.

use std::sync::Mutex;

use parsecs_noc::{CoreId, Network};
use parsecs_obs::SimProbe;
use parsecs_pool::Pool;
use parsecs_trace::TraceArena;

use crate::{SectionId, SimConfig, SourceKind};

/// Sentinel for a cycle that has not been computed yet (the resolver's
/// columns are flat `u64`s instead of `Option<u64>`s — half the memory,
/// and the timing columns `rr`/`ar`/`ma` are derived rather than stored).
pub(crate) const UNKNOWN: u64 = u64::MAX;

/// Tag bit of the resolver's `complete` column: an entry at or above this
/// value is *not yet complete*. A fetched-but-unresolved instruction
/// stores `INCOMPLETE | fetch_cycle`, so the column doubles as the fetch
/// record and the resolver needs no separate per-instruction `fd` column
/// in stats-only runs (simulated cycle counts stay far below 2^63 — the
/// convergence guard caps them at ~200× the instruction count). `UNKNOWN`
/// (all ones) also has the bit set: a never-fetched instruction is
/// "not complete" under the same test.
pub(crate) const INCOMPLETE: u64 = 1 << 63;

/// Empty wake-list link.
const NO_WAITER: u32 = u32::MAX;

/// Minimum sorted-batch size worth forking over the pool: below this the
/// broadcast's wake/barrier overhead beats the per-entry dep-sweep work.
const PAR_ROUND_MIN: usize = 64;

/// The completion cycle recorded in a tagged `complete` column entry, if
/// already resolved.
#[inline]
pub(crate) fn completion_of(complete: &[u64], seq: usize) -> Option<u64> {
    match complete[seq] {
        cycle if cycle < INCOMPLETE => Some(cycle),
        _ => None,
    }
}

/// The pure result of one resolution attempt (no resolver state touched).
enum Outcome {
    Resolved(Resolved),
    /// Blocked on this producer's completion.
    Waiting(u32),
}

/// Everything a successful resolution commits: the computed stage cycles
/// plus this instruction's renaming-counter increments.
#[derive(Clone, Copy)]
struct Resolved {
    ew: u64,
    completion: u64,
    remote_reg: u32,
    remote_mem: u32,
    fork_copied: u32,
    dmh: u32,
}

/// The dependence-resolution engine shared by the event-driven and the
/// reference simulators.
///
/// The always-resident per-instruction state is **one** tagged `u64`
/// column plus two `u32` wake-list links (16 B/instruction): the
/// `complete` column holds `INCOMPLETE | fetch_cycle` between fetch and
/// resolution and the completion cycle after, `rr` is always `fd + 1`,
/// `ar` always `ew + 1`, and `ma` always the completion cycle of a memory
/// instruction. The `fd`/`ew`/`ret` stage columns (another
/// 24 B/instruction) are only kept when the run records the per-row stage
/// table; stats-only runs skip them and accumulate `max_fd`/`max_ret`
/// streaming. Retirement is in order within a section, so it needs no
/// per-instruction bookkeeping either: a per-*section* cursor
/// (`retire_next`, `retire_last`) cascades over the completed prefix of
/// the section.
pub(crate) struct Resolver<'a> {
    config: &'a SimConfig,
    arena: &'a TraceArena,
    /// Whether the per-instruction stage columns (`fd`/`ew`/`ret`) are
    /// kept for the reported timing table.
    record: bool,
    pub(crate) fd: Vec<u64>,
    pub(crate) ew: Vec<u64>,
    pub(crate) ret: Vec<u64>,
    pub(crate) complete: Vec<u64>,
    /// Head of the per-producer list of consumers waiting for its
    /// completion (`u32::MAX` = empty). An instruction waits on at most
    /// one producer at a time, so one `waiter_next` link per instruction
    /// threads every list — no per-wait allocation.
    waiter_head: Vec<u32>,
    /// Next consumer in the same producer's waiting list.
    waiter_next: Vec<u32>,
    /// Per-section retirement cursor: the next trace index to retire.
    retire_next: Vec<u32>,
    /// Per-section retirement cursor: the previous retirement cycle.
    retire_last: Vec<u64>,
    /// Instructions ready for a resolution attempt (newly fetched, or
    /// woken by a completion discovered in the current drain round).
    queue: Vec<u32>,
    /// Scratch for the drain's batched rounds.
    batch: Vec<u32>,
    /// Per-worker outcome buffers of the forked compute pass (interior
    /// mutability so workers fill them through a shared `&Resolver`; each
    /// worker locks only its own slot, so the locks never contend).
    par_out: Vec<Mutex<Vec<Outcome>>>,
    /// Scratch for the forked round's ascending retry sweep.
    retry: Vec<u32>,
    /// Latest fetch cycle seen (streaming `SimStats::fetch_cycles`).
    pub(crate) max_fd: u64,
    /// Latest retirement cycle seen (streaming `SimStats::total_cycles`).
    pub(crate) max_ret: u64,
    pub(crate) resolved: usize,
    pub(crate) remote_register_requests: u64,
    pub(crate) remote_memory_requests: u64,
    pub(crate) fork_copied_sources: u64,
    pub(crate) dmh_accesses: u64,
}

impl<'a> Resolver<'a> {
    pub(crate) fn new(config: &'a SimConfig, arena: &'a TraceArena, n: usize) -> Resolver<'a> {
        let record = config.record_timings;
        let sections = arena.sections();
        Resolver {
            config,
            arena,
            record,
            fd: if record { vec![UNKNOWN; n] } else { Vec::new() },
            ew: if record { vec![UNKNOWN; n] } else { Vec::new() },
            ret: if record { vec![UNKNOWN; n] } else { Vec::new() },
            complete: vec![UNKNOWN; n],
            waiter_head: vec![NO_WAITER; n],
            waiter_next: vec![NO_WAITER; n],
            retire_next: sections.iter().map(|s| s.start as u32).collect(),
            retire_last: vec![0; sections.len()],
            queue: Vec::new(),
            batch: Vec::new(),
            par_out: Vec::new(),
            retry: Vec::new(),
            max_fd: 0,
            max_ret: 0,
            resolved: 0,
            remote_register_requests: 0,
            remote_memory_requests: 0,
            fork_copied_sources: 0,
            dmh_accesses: 0,
        }
    }

    /// Records the fetch of `seq` at `cycle` and queues it for resolution.
    pub(crate) fn fetch(&mut self, seq: usize, cycle: u64) {
        debug_assert_eq!(self.complete[seq], UNKNOWN, "fetched once");
        self.complete[seq] = INCOMPLETE | cycle;
        if self.record {
            self.fd[seq] = cycle;
        }
        if cycle > self.max_fd {
            self.max_fd = cycle;
        }
        self.queue.push(seq as u32);
    }

    /// The completion cycle of `seq`, if already resolved.
    #[inline]
    pub(crate) fn completion(&self, seq: usize) -> Option<u64> {
        completion_of(&self.complete, seq)
    }

    /// Latency of one leg (request or response) of a renaming exchange
    /// between the consumer's and the producer's cores, including the
    /// optional per-intermediate-section charge for the backward walk.
    fn request_latency(
        &self,
        network: &Network<SectionId>,
        consumer: CoreId,
        producer: CoreId,
        consumer_section: SectionId,
        producer_section: SectionId,
    ) -> u64 {
        let gap = consumer_section
            .0
            .saturating_sub(producer_section.0)
            .saturating_sub(1) as u64;
        network.latency(consumer, producer) + self.config.per_section_hop * gap
    }

    /// Resolves everything that has become computable, in two decoupled
    /// steps.
    ///
    /// Step 1 (value completion): an instruction's result becomes
    /// available as soon as its own sources are — it does *not* wait for
    /// older instructions of its section to retire. This is the
    /// out-of-order execute/memory behaviour of the paper's core.
    ///
    /// Step 2 (retirement): retirement is in order within a section, so
    /// the retire cycle additionally waits for the previous instruction's
    /// retire cycle; a per-section cursor cascades over the completed
    /// prefix ([`Resolver::advance_retirement`]).
    ///
    /// Every newly computed completion is appended to `completions` as
    /// `(seq, completion_cycle)` so the event-driven scheduler can wake
    /// fetch stages stalled on that value.
    ///
    /// With a pool, rounds at or above [`PAR_ROUND_MIN`] fork their
    /// read-only compute pass across the workers (see the module docs);
    /// the caller gates the pool on the arena's `Certified` verdict.
    ///
    /// `cycle` is the simulated cycle being drained and `probe` observes
    /// each round's width and fork decision plus section retirements —
    /// both from this sequential orchestration layer only, never from
    /// inside a forked compute pass.
    pub(crate) fn drain<P: SimProbe>(
        &mut self,
        network: &Network<SectionId>,
        core_of: &[CoreId],
        completions: &mut Vec<(usize, u64)>,
        pool: Option<&Pool>,
        cycle: u64,
        probe: &mut P,
    ) {
        let mut round_index = 0usize;
        while !self.queue.is_empty() {
            let mut batch = std::mem::take(&mut self.batch);
            std::mem::swap(&mut self.queue, &mut batch);
            batch.sort_unstable();
            let forked =
                pool.is_some_and(|pool| pool.threads() > 1 && batch.len() >= PAR_ROUND_MIN);
            if P::ENABLED {
                probe.on_drain_round(cycle, round_index, batch.len(), forked);
            }
            if forked {
                let pool = pool.expect("a forked round has a pool");
                self.round_forked(&batch, network, core_of, completions, pool, probe);
            } else {
                self.round(&batch, network, core_of, completions, probe);
            }
            round_index += 1;
            batch.clear();
            self.batch = batch;
        }
    }

    /// One sequential drain round over the sorted `batch`.
    fn round<P: SimProbe>(
        &mut self,
        batch: &[u32],
        network: &Network<SectionId>,
        core_of: &[CoreId],
        completions: &mut Vec<(usize, u64)>,
        probe: &mut P,
    ) {
        for &seq in batch {
            let seq = seq as usize;
            match self.compute_one(seq, network, core_of) {
                Outcome::Resolved(r) => self.commit_resolved(seq, r, completions, probe),
                Outcome::Waiting(dep) => self.register_waiter(seq, dep as usize),
            }
        }
    }

    /// One forked drain round: parallel read-only compute, sequential
    /// ascending commit, then the ascending retry sweep for entries whose
    /// blocking producer resolved during the commits.
    fn round_forked<P: SimProbe>(
        &mut self,
        batch: &[u32],
        network: &Network<SectionId>,
        core_of: &[CoreId],
        completions: &mut Vec<(usize, u64)>,
        pool: &Pool,
        probe: &mut P,
    ) {
        let workers = pool.threads();
        if self.par_out.len() < workers {
            self.par_out.resize_with(workers, || Mutex::new(Vec::new()));
        }
        let chunk = batch.len().div_ceil(workers);
        {
            let shared: &Resolver<'_> = self;
            pool.broadcast(&|worker| {
                let mut out = shared.par_out[worker].lock().expect("no panicking jobs");
                out.clear();
                let lo = (worker * chunk).min(batch.len());
                let hi = ((worker + 1) * chunk).min(batch.len());
                for &seq in &batch[lo..hi] {
                    out.push(shared.compute_one(seq as usize, network, core_of));
                }
            });
        }
        let mut retry = std::mem::take(&mut self.retry);
        for worker in 0..workers {
            let out = std::mem::take(&mut *self.par_out[worker].lock().expect("uncontended"));
            let lo = (worker * chunk).min(batch.len());
            let hi = ((worker + 1) * chunk).min(batch.len());
            for (&seq, outcome) in batch[lo..hi].iter().zip(out.iter()) {
                let seq = seq as usize;
                match *outcome {
                    Outcome::Resolved(r) => self.commit_resolved(seq, r, completions, probe),
                    Outcome::Waiting(dep) => {
                        if self.complete[dep as usize] < INCOMPLETE {
                            // An earlier commit of this round resolved
                            // the producer this compute saw as
                            // incomplete: recompute below, in order.
                            retry.push(seq as u32);
                        } else {
                            self.register_waiter(seq, dep as usize);
                        }
                    }
                }
            }
            *self.par_out[worker].lock().expect("uncontended") = out;
        }
        // Ascending retry sweep. Producers precede consumers in the
        // sorted batch, so by the time an entry is retried every batch
        // producer it can observe has reached its final state for this
        // round — one pass restores the sequential view exactly.
        for &seq in &retry {
            let seq = seq as usize;
            match self.compute_one(seq, network, core_of) {
                Outcome::Resolved(r) => self.commit_resolved(seq, r, completions, probe),
                Outcome::Waiting(dep) => self.register_waiter(seq, dep as usize),
            }
        }
        retry.clear();
        self.retry = retry;
    }

    /// Parks `seq` on `dep`'s completion wake list.
    #[inline]
    fn register_waiter(&mut self, seq: usize, dep: usize) {
        self.waiter_next[seq] = self.waiter_head[dep];
        self.waiter_head[dep] = seq as u32;
    }

    /// One **pure** resolution attempt: a single forward sweep over
    /// `seq`'s packed dep slice, touching no resolver state. Returns
    /// `Waiting` at the first incomplete producer; on success returns the
    /// computed cycles and counter increments for
    /// [`Resolver::commit_resolved`].
    fn compute_one(&self, seq: usize, network: &Network<SectionId>, core_of: &[CoreId]) -> Outcome {
        let arena = self.arena;
        let tagged = self.complete[seq];
        debug_assert!(
            tagged >= INCOMPLETE && tagged != UNKNOWN,
            "queued instructions are fetched and unresolved"
        );
        let my_fd = tagged & !INCOMPLETE;
        let my_section = arena.section(seq);
        let my_rr = my_fd + 1;
        let my_core = core_of[my_section.0];

        let mut remote_reg = 0u32;
        let mut fork_copied = 0u32;
        let mut reg_ready = 0u64;
        let mut available_at_fetch = true;
        for dep in arena.reg_sources(seq) {
            let t = match dep.kind() {
                SourceKind::ForkCopy => {
                    fork_copied += 1;
                    0
                }
                SourceKind::InitialRegister | SourceKind::InitialMemory => 0,
                SourceKind::Local { producer } => match self.complete[producer] {
                    c if c >= INCOMPLETE => return Outcome::Waiting(producer as u32),
                    c => {
                        if c > my_fd {
                            available_at_fetch = false;
                        }
                        c
                    }
                },
                SourceKind::Remote {
                    producer,
                    producer_section,
                } => {
                    available_at_fetch = false;
                    let c = match self.complete[producer] {
                        c if c >= INCOMPLETE => return Outcome::Waiting(producer as u32),
                        c => c,
                    };
                    remote_reg += 1;
                    let hop = self.request_latency(
                        network,
                        my_core,
                        core_of[producer_section.0],
                        my_section,
                        producer_section,
                    );
                    c.max(my_rr + hop) + hop
                }
            };
            reg_ready = reg_ready.max(t);
        }

        let is_mem = arena.is_load(seq) || arena.is_store(seq);
        let my_ew = if !is_mem && available_at_fetch && reg_ready <= my_fd {
            // Computed directly in the fetch-decode stage.
            my_fd
        } else {
            reg_ready.max(my_rr) + 1
        };

        let mut remote_mem = 0u32;
        let mut dmh = 0u32;
        let completion = if is_mem {
            let a = my_ew + 1;
            let mut mem_ready = a + 1;
            for dep in arena.mem_sources(seq) {
                let t = match dep.kind() {
                    SourceKind::InitialMemory => {
                        dmh += 1;
                        a + self.config.dmh_latency
                    }
                    SourceKind::Local { producer } => match self.complete[producer] {
                        c if c >= INCOMPLETE => return Outcome::Waiting(producer as u32),
                        c => c.max(a + 1),
                    },
                    SourceKind::Remote {
                        producer,
                        producer_section,
                    } => {
                        let c = match self.complete[producer] {
                            c if c >= INCOMPLETE => return Outcome::Waiting(producer as u32),
                            c => c,
                        };
                        remote_mem += 1;
                        let hop = self.request_latency(
                            network,
                            my_core,
                            core_of[producer_section.0],
                            my_section,
                            producer_section,
                        );
                        c.max(a + hop) + hop
                    }
                    SourceKind::ForkCopy | SourceKind::InitialRegister => a + 1,
                };
                mem_ready = mem_ready.max(t);
            }
            // `ar`/`ma` are derived at reporting time: `ar` is `ew + 1`
            // and `ma` is this completion cycle.
            mem_ready
        } else {
            my_ew
        };

        Outcome::Resolved(Resolved {
            ew: my_ew,
            completion,
            remote_reg,
            remote_mem,
            fork_copied,
            dmh,
        })
    }

    /// Commits a successful resolution: stage cycles, counters, the
    /// completion event, the woken consumers (they join the next round's
    /// batch instead of being resolved depth-first) and the retirement
    /// cascade.
    fn commit_resolved<P: SimProbe>(
        &mut self,
        seq: usize,
        r: Resolved,
        completions: &mut Vec<(usize, u64)>,
        probe: &mut P,
    ) {
        if self.record {
            self.ew[seq] = r.ew;
        }
        self.complete[seq] = r.completion;
        self.remote_register_requests += u64::from(r.remote_reg);
        self.remote_memory_requests += u64::from(r.remote_mem);
        self.fork_copied_sources += u64::from(r.fork_copied);
        self.dmh_accesses += u64::from(r.dmh);
        completions.push((seq, r.completion));
        let mut waiter = std::mem::replace(&mut self.waiter_head[seq], NO_WAITER);
        while waiter != NO_WAITER {
            self.queue.push(waiter);
            waiter = std::mem::replace(&mut self.waiter_next[waiter as usize], NO_WAITER);
        }
        self.advance_retirement(seq, probe);
    }

    /// Step 2 of dependence resolution: in-order retirement within a
    /// section. When `seq` is its section's next-to-retire, retires it
    /// and cascades over the already-complete successors — each retired
    /// instruction's cycle is `max(completion, previous retirement) + 1`.
    /// The cascade replaces per-instruction successor bookkeeping with a
    /// per-section cursor and feeds the streaming `max_ret` accumulator.
    fn advance_retirement<P: SimProbe>(&mut self, seq: usize, probe: &mut P) {
        let sid = self.arena.section(seq).0;
        if self.retire_next[sid] as usize != seq {
            return;
        }
        let end = self.arena.sections()[sid].end;
        let mut cursor = seq;
        let mut last = self.retire_last[sid];
        while cursor < end {
            let completion = self.complete[cursor];
            if completion >= INCOMPLETE {
                break;
            }
            last = completion.max(last) + 1;
            if self.record {
                self.ret[cursor] = last;
            }
            self.resolved += 1;
            cursor += 1;
        }
        self.retire_next[sid] = cursor as u32;
        self.retire_last[sid] = last;
        if last > self.max_ret {
            self.max_ret = last;
        }
        // The cascade crosses a section's end at most once (later calls
        // early-return on the cursor), so this fires exactly once per
        // non-empty section, at its last instruction's retirement cycle.
        if P::ENABLED && cursor == end {
            probe.on_section_retire(sid as u32, last);
        }
    }
}

/// Whether a control instruction can be computed by the fetch-decode stage
/// at fetch time: all of its register/flags sources are already full in the
/// local register file (fork-copied, initial, or produced locally and
/// complete no later than the fetch cycle). The `complete` column's
/// incomplete encodings (`UNKNOWN`, `INCOMPLETE | fd`) both sit at or
/// above 2^63 — far past any reachable fetch cycle — so the one
/// comparison below covers them without unpacking.
pub(crate) fn fetch_computable(
    arena: &TraceArena,
    seq: usize,
    complete: &[u64],
    fetch_cycle: u64,
) -> bool {
    if arena.is_load(seq) || arena.is_store(seq) {
        return false;
    }
    arena.reg_sources(seq).iter().all(|dep| match dep.kind() {
        SourceKind::ForkCopy | SourceKind::InitialRegister | SourceKind::InitialMemory => true,
        SourceKind::Local { producer } => complete[producer] <= fetch_cycle,
        SourceKind::Remote { .. } => false,
    })
}
