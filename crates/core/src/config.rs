//! Configuration of the many-core simulator.

use std::sync::Arc;

use parsecs_noc::{NocConfig, Topology};

use crate::placement::{ChipView, Placement, PlacementPolicy};

/// Parameters of the many-core timing model.
///
/// The defaults follow the assumptions of the paper's Figure 10 analysis:
/// one instruction per pipeline stage per cycle, an always-hitting L1
/// instruction cache, and a small fixed cost for reaching a remote producer
/// over the NoC.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores on the chip.
    pub cores: usize,
    /// Interconnect topology. The number of cores of the topology bounds
    /// `cores`; by default a crossbar with `cores` ports is used so that
    /// remote-operand latency matches the paper's flat 1-hop charge.
    pub topology: Option<Topology>,
    /// NoC timing.
    pub noc: NocConfig,
    /// Section placement policy. Built-in policies live in [`Placement`]
    /// and [`crate::LoadAware`]; any [`PlacementPolicy`] implementation
    /// can be plugged in via [`SimConfig::with_placement`].
    pub placement: Arc<dyn PlacementPolicy>,
    /// Maximum number of sections placed on a single core
    /// (`max_section` in the paper). The round-robin placement spills to
    /// the next core with free capacity; when every core is at capacity the
    /// limit is relaxed so the run can still complete.
    pub max_sections_per_core: usize,
    /// Cycles to reach the data memory hierarchy (the loader / DMH) when a
    /// memory renaming request reaches the oldest section without finding a
    /// producer. The paper's example charges 3 cycles.
    pub dmh_latency: u64,
    /// Extra cycles charged per intermediate section visited by a renaming
    /// request (the backward walk of §4.2). The paper's shortcuts make this
    /// small; 0 models perfectly effective shortcuts and caching.
    pub per_section_hop: u64,
    /// Maximum number of dynamic instructions to pre-execute functionally.
    pub fuel: u64,
    /// Whether the fetch stage stalls when a control-flow instruction
    /// cannot be computed in the fetch stage (its sources are not yet
    /// full). The paper computes control in order; `true` models the stall,
    /// `false` models an idealised fetch that never waits on control.
    pub fetch_stalls_on_unresolved_control: bool,
    /// Whether the simulation materialises the per-instruction stage
    /// table ([`crate::SimResult::timings`], the paper's Figure 10 rows).
    ///
    /// With this off the run is **stats-only**: every aggregate in
    /// [`crate::SimStats`] — fetch/total cycles, IPCs, renaming counters,
    /// NoC statistics — is accumulated streaming during the simulation
    /// and comes out bit-identical to a recording run, but
    /// `SimResult::timings` is empty and the per-row accessors
    /// ([`crate::SimResult::section_timings`],
    /// `RunReport::timings()` in the driver, `format_figure10`) return
    /// empty views. Stats-only runs also drop the resolver's three stage
    /// columns, cutting the simulator's per-instruction resident state
    /// from ~150 to ~17 bytes — the switch that lets 100M-instruction
    /// chip-scale cells fit. On by default.
    pub record_timings: bool,
    /// Whether the engines run the full static analysis of
    /// `parsecs-check` over the arena before simulating: the invariant
    /// validator, the parallel-drain race certifier and the critical-path
    /// bounds (debug builds additionally assert
    /// `total_cycles ≥ critical_path` against the finished run). A
    /// violation surfaces as [`crate::SimError::Invariant`]; a clean
    /// analysis is attached to [`crate::SimResult::check`]. Off by
    /// default — the simulation paths are untouched when disabled — and
    /// forced on by setting the `PARSECS_VALIDATE` environment variable
    /// to anything but `0` (how CI runs the whole suite validated).
    pub validate: bool,
    /// Worker threads for the event-driven engine: `1` (the default)
    /// runs fully sequential; above one, the cores are sharded into that
    /// many clusters and the fetch walk and large drain rounds fork over
    /// a scoped thread pool — **bit-identical** to the sequential run,
    /// and only when the arena's static drain analysis is
    /// [`crate::DrainSafety::Certified`] *and* the cluster partition is
    /// [`crate::WalkSafety::Certified`] (otherwise the run is sequential
    /// and carries a typed [`crate::ForkFallback`] on
    /// [`crate::SimResult::fork_fallback`]). `0` means auto: one thread
    /// per available CPU. The
    /// default follows the `PARSECS_THREADS` environment variable when it
    /// parses as an integer. The reference engine ignores this field.
    pub threads: usize,
}

impl PartialEq for SimConfig {
    fn eq(&self, other: &SimConfig) -> bool {
        self.cores == other.cores
            && self.topology == other.topology
            && self.noc == other.noc
            && self.placement.name() == other.placement.name()
            && self.max_sections_per_core == other.max_sections_per_core
            && self.dmh_latency == other.dmh_latency
            && self.per_section_hop == other.per_section_hop
            && self.fuel == other.fuel
            && self.fetch_stalls_on_unresolved_control == other.fetch_stalls_on_unresolved_control
            && self.record_timings == other.record_timings
            && self.validate == other.validate
            && self.threads == other.threads
    }
}

/// The default of [`SimConfig::validate`]: off, unless the
/// `PARSECS_VALIDATE` environment variable is set to anything but `0`.
fn validate_default() -> bool {
    std::env::var_os("PARSECS_VALIDATE").is_some_and(|v| v != "0")
}

/// The default of [`SimConfig::threads`]: `1`, unless the
/// `PARSECS_THREADS` environment variable parses as an integer (where
/// `0` means auto-detect).
fn threads_default() -> usize {
    std::env::var("PARSECS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            cores: 64,
            topology: None,
            noc: NocConfig {
                base_latency: 1,
                per_hop_latency: 1,
                link_bandwidth: None,
            },
            placement: Arc::new(Placement::RoundRobin),
            max_sections_per_core: 8,
            dmh_latency: 3,
            per_section_hop: 0,
            fuel: 50_000_000,
            fetch_stalls_on_unresolved_control: true,
            record_timings: true,
            validate: validate_default(),
            threads: threads_default(),
        }
    }
}

impl SimConfig {
    /// A configuration with `cores` cores and the other parameters at their
    /// defaults.
    pub fn with_cores(cores: usize) -> SimConfig {
        SimConfig {
            cores,
            ..SimConfig::default()
        }
    }

    /// Replaces the placement policy (builder style).
    pub fn with_placement(mut self, policy: impl PlacementPolicy + 'static) -> SimConfig {
        self.placement = Arc::new(policy);
        self
    }

    /// Turns off the per-instruction stage table (builder style): the run
    /// becomes stats-only — see [`SimConfig::record_timings`].
    pub fn stats_only(mut self) -> SimConfig {
        self.record_timings = false;
        self
    }

    /// Turns on the pre-simulation static analysis (builder style) — see
    /// [`SimConfig::validate`] (the field; [`SimConfig::validate()`] the
    /// method checks the configuration itself).
    pub fn validated(mut self) -> SimConfig {
        self.validate = true;
        self
    }

    /// Sets the worker-thread count (builder style) — see
    /// [`SimConfig::threads`].
    pub fn with_threads(mut self, threads: usize) -> SimConfig {
        self.threads = threads;
        self
    }

    /// The resolved worker-thread count: [`SimConfig::threads`], with
    /// `0` (auto) replaced by the number of available CPUs.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
    }

    /// The effective topology: the configured one, or a crossbar over
    /// `cores`.
    pub fn effective_topology(&self) -> Topology {
        self.topology
            .unwrap_or(Topology::Crossbar { size: self.cores })
    }

    /// The static cost model handed to the schedule analyzer
    /// (`parsecs_check::bound_schedule`): the subset of this
    /// configuration that prices communication and memory latency.
    pub fn chip_model(&self) -> parsecs_check::ChipModel {
        parsecs_check::ChipModel {
            cores: self.cores,
            noc: parsecs_noc::NocModel::new(self.effective_topology(), self.noc),
            dmh_latency: self.dmh_latency,
            per_section_hop: self.per_section_hop,
            fetch_stalls: self.fetch_stalls_on_unresolved_control,
        }
    }

    /// The chip description handed to the placement policy.
    pub fn chip_view(&self) -> ChipView {
        ChipView {
            cores: self.cores,
            max_sections_per_core: self.max_sections_per_core,
            topology: self.effective_topology(),
            noc: self.noc,
        }
    }

    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration cannot be simulated (zero
    /// cores, zero section capacity, or a topology smaller than `cores`).
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("the chip needs at least one core".into());
        }
        if self.max_sections_per_core == 0 {
            return Err("each core must be able to host at least one section".into());
        }
        if self.effective_topology().num_cores() < self.cores {
            return Err(format!(
                "topology {} has fewer cores than the requested {}",
                self.effective_topology(),
                self.cores
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::LoadAware;

    #[test]
    fn defaults_are_valid() {
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::with_cores(5).validate().is_ok());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(SimConfig::with_cores(0).validate().is_err());
        let c = SimConfig {
            max_sections_per_core: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = SimConfig::with_cores(16);
        c.topology = Some(Topology::mesh(2, 2));
        assert!(c.validate().is_err());
    }

    #[test]
    fn effective_topology_defaults_to_crossbar() {
        let c = SimConfig::with_cores(7);
        assert_eq!(c.effective_topology(), Topology::Crossbar { size: 7 });
        let mut c = SimConfig::with_cores(4);
        c.topology = Some(Topology::mesh(2, 2));
        assert_eq!(c.effective_topology(), Topology::mesh(2, 2));
    }

    #[test]
    fn equality_distinguishes_placement_policies_by_name() {
        let a = SimConfig::with_cores(8);
        let b = SimConfig::with_cores(8);
        assert_eq!(a, b);
        let c = SimConfig::with_cores(8).with_placement(LoadAware);
        assert_ne!(a, c);
        let d = SimConfig::with_cores(8).with_placement(Placement::RoundRobin);
        assert_eq!(a, d);
    }
}
