//! # parsecs-core — the sectioned parallel execution model
//!
//! This crate implements the contribution of *"Toward a Core Design to
//! Distribute an Execution on a Many-Core Processor"* (Goossens, Parello,
//! Porada, Rahmoune — PaCT 2015): an execution model that distributes a
//! single sequential program over the cores of a many-core chip by cutting
//! its run into **sections** at `fork`/`endfork` instructions, and a
//! cycle-level model of the six-stage core pipeline the paper proposes
//! (fetch-decode / register-rename / execute-write-back / address-rename /
//! memory-access / retire).
//!
//! The main entry points are:
//!
//! * [`SectionedTrace`] — splits the dynamic trace of a fork program into
//!   the paper's totally-ordered sections and resolves every
//!   producer→consumer pair (register *and* memory renaming);
//! * [`ManyCoreSim`] — the timing model: sections are placed on cores, each
//!   core fetches one instruction per cycle along its current section and
//!   computes control instead of predicting it, remote operands are
//!   obtained through renaming requests travelling over the NoC, and each
//!   section retires in order. The result is a per-instruction, per-stage
//!   cycle table — the reproduction of the paper's Figure 10 — plus
//!   aggregate fetch/retire IPC.
//! * [`analytic`] — the closed-form §5 model of the `sum` example
//!   (instruction count, fetch time, retirement time).
//!
//! ## Example
//!
//! ```
//! use parsecs_core::{ManyCoreSim, SimConfig};
//!
//! // The paper's Figure 5: sum with fork/endfork, summing 5 elements.
//! let program = parsecs_asm::assemble(
//!     "t:   .quad 4, 2, 6, 4, 5
//!      main: movq $t, %rdi
//!            movq $5, %rsi
//!            fork sum
//!            out  %rax
//!            halt
//!      sum:  cmpq $2, %rsi
//!            ja .L2
//!            movq (%rdi), %rax
//!            jne .L1
//!            addq 8(%rdi), %rax
//!      .L1:  endfork
//!      .L2:  movq %rsi, %rbx
//!            shrq %rsi
//!            fork sum
//!            subq $8, %rsp
//!            movq %rax, 0(%rsp)
//!            leaq (%rdi,%rsi,8), %rdi
//!            subq %rsi, %rbx
//!            movq %rbx, %rsi
//!            fork sum
//!            addq 0(%rsp), %rax
//!            addq $8, %rsp
//!            endfork",
//! ).expect("assembles");
//! let sim = ManyCoreSim::new(SimConfig::default());
//! let result = sim.run(&program).expect("simulates");
//! assert_eq!(result.outputs, vec![21]);
//! assert!(result.stats.sections >= 5);
//! assert!(result.stats.fetch_ipc > 1.0, "parallel fetch exceeds one instruction per cycle");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod chip;
mod cluster;
mod config;
mod drain;
mod error;
mod placement;
mod reference;
mod rename;
mod section;
mod sim;
mod timing;

pub use cluster::cluster_windows;
pub use config::SimConfig;
pub use error::{FallbackReason, ForkFallback, SimError};
pub use placement::{ChainAffine, ChipView, LoadAware, Placement, PlacementPolicy, SectionDeps};
pub use rename::{verify_single_assignment, MemoryAliasTable, RegisterAliasTable, RenameTag};
pub use section::{InstRecord, SectionId, SectionSpan, SectionedTrace, SourceDep, SourceKind};
pub use sim::{ManyCoreSim, SimResult};
pub use timing::{format_figure10, InstTiming, SimStats};
// The static-analysis vocabulary of `parsecs-check`; re-exported so
// callers of the validated simulation paths ([`SimConfig::validate`],
// [`SimResult::check`], [`SimError::Invariant`]) can consume the reports
// without a separate dependency.
pub use parsecs_check::{
    bound_schedule, certify_walk, check_arena, prove_progress, BindingTerm, CheckReport, ChipModel,
    DrainSafety, InvariantViolation, Progress, ScheduleBounds, StaticBounds, WaitEdge, WaitKind,
    WalkSafety,
};
// The streaming trace pipeline this crate's engines consume; re-exported
// so simulator callers can build arenas without a separate dependency.
pub use parsecs_trace::{PackedDep, StreamingSectioner, TraceArena, TraceError};
// The telemetry vocabulary of `parsecs-obs`; re-exported so callers of
// the probed simulation paths ([`ManyCoreSim::simulate_arena_probed`],
// [`SimStats::attribution`]) can consume probes and breakdowns without a
// separate dependency.
pub use parsecs_obs::{
    ChromeTraceWriter, CoreBreakdown, CountingProbe, CycleAttribution, NoopProbe, SimProbe,
    StallCause, TickGauges, TimeSeries,
};
