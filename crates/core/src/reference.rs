//! The retained cycle-stepping reference simulator.
//!
//! This is the original timing loop of [`crate::ManyCoreSim`]: the chip
//! advances one cycle at a time and every core is visited every cycle —
//! apply due stall-handoff requeues, deliver section-creation messages,
//! fetch one instruction per active core, resolve dependences, and park
//! the fetch stalls whose release cycle is still unknown.
//!
//! The fetch-stall semantics are the in-order handoff model shared with
//! the event-driven engine through [`crate::chip::StallTable`]: a stall
//! with a known completion waits in place and releases just past it; a
//! stall with an unknown completion parks its section and hands the core
//! to its queued sections, to be requeued by an explicit event when the
//! completion is discovered. A forced release can only happen through the
//! deadlock *detector* (a malformed trace); it is counted in
//! [`crate::SimStats::forced_stall_releases`] and surfaced as an error by
//! the driver layer.
//!
//! The event-driven engine in [`crate::sim`] replaces this loop on the hot
//! path, but the loop is kept (over the shared [`crate::chip::ChipState`]
//! columns, [`crate::drain::Resolver`] and the same [`TraceArena`]) as the
//! oracle: differential tests and the `repro_perf` benchmark assert that
//! both engines produce bit-identical [`crate::SimResult`]s. The reference
//! always drains sequentially ([`SimConfig::threads`] is an event-engine
//! knob), so it also anchors the threaded runs' bit-identity.
//!
//! [`SimConfig::threads`]: crate::SimConfig::threads

use parsecs_machine::TraceKind;
use parsecs_noc::CoreId;
use parsecs_obs::{CycleAttribution, SimProbe, TickGauges};
use parsecs_trace::TraceArena;

use crate::chip::{ChipState, StallTable, NO_SECTION, NO_STALL};
use crate::drain::{fetch_computable, Resolver};
use crate::sim::{stall_cause, Prepared};
use crate::{ManyCoreSim, SimError, SimResult};

/// Simulates an arena-backed trace by stepping the chip one cycle at a
/// time (see the module docs). The probe observes the same section/stall
/// seams as the event engine's, so per-core event streams match across
/// engines; only the per-cycle gauges are engine-specific views.
pub(crate) fn simulate<P: SimProbe>(
    sim: &ManyCoreSim,
    arena: &TraceArena,
    probe: &mut P,
) -> Result<SimResult, SimError> {
    let config = sim.config();
    config.validate().map_err(SimError::Config)?;
    let mut check = sim.precheck(arena)?;
    let sections = arena.sections();
    let n = arena.len();

    let prepared = sim.prepare(arena)?;
    // The reference never forks, but it computes (and reports) the same
    // fork verdict as the event engine, so [`SimResult`]s stay
    // bit-identical — including the typed fallback and the attached
    // progress/walk verdicts.
    let (_, fork_fallback) = sim.fork_decision(arena, check.as_deref(), &prepared.core_of);
    sim.attach_verdicts(arena, check.as_deref_mut(), &prepared.core_of);
    let Prepared {
        core_of,
        mut network,
        created_by,
    } = prepared;
    let mut resolver = Resolver::new(config, arena, n);
    let mut chip = ChipState::new(config.cores, sections.len());
    let mut stalls = StallTable::new(sections.len());
    let mut completions: Vec<(usize, u64)> = Vec::new();
    let mut newly_stalled: Vec<usize> = Vec::new();
    let mut forced_stall_releases = 0u64;
    // Always-on cycle attribution, fed from the same deterministic
    // section/stall events as the event engine's (see `crate::sim`).
    let mut attr = CycleAttribution::new(config.cores);

    // The initial section is live from cycle 0 on its core.
    if !sections.is_empty() {
        let root_core = core_of[0].0;
        chip.current[root_core] = 0;
        chip.next_seq[root_core] = sections[0].start as u32;
        chip.sections_hosted[root_core] = 1;
        attr.begin_root(root_core);
        if P::ENABLED {
            probe.on_section_begin(root_core, 0, 0, false);
        }
    }

    let mut fetched = 0usize;
    let mut cycle: u64 = 0;
    let safety = 200 * n as u64 + 10_000;

    while fetched < n || resolver.resolved < n {
        cycle += 1;
        if cycle >= safety {
            return Err(SimError::Diverged {
                reason: "did not converge",
                cycle,
                resolved: resolver.resolved as u64,
                instructions: n as u64,
            });
        }
        let progress_before = fetched + resolver.resolved;

        // Parked sections whose stall released rejoin their ready queue.
        while let Some((idx, sid)) = stalls.pop_due(cycle) {
            chip.queue_push(idx, sid.0 as u32);
            attr.requeue(idx, cycle);
            if P::ENABLED {
                probe.on_section_requeue(idx, sid.0 as u32, cycle);
            }
        }

        // Section-creation messages arriving this cycle.
        for envelope in network.deliver(cycle) {
            chip.queue_push(envelope.dst.0, envelope.payload.0 as u32);
            chip.sections_hosted[envelope.dst.0] += 1;
            if P::ENABLED {
                probe.on_noc_deliver(envelope.dst.0, envelope.payload.0 as u32, cycle);
            }
        }

        if P::ENABLED {
            // The reference's per-cycle gauges: it walks every core every
            // cycle with no calendar queue, so `running` counts the cores
            // holding a section and `calendar_depth` is zero — the gauges
            // are engine-specific views, unlike the section/stall events.
            let running = (0..config.cores)
                .filter(|&c| chip.current[c] != NO_SECTION)
                .count();
            probe.on_tick(TickGauges {
                cycle,
                running: running as u64,
                calendar_depth: 0,
                noc_in_flight: network.in_flight() as u64,
                parked: stalls.parked() as u64,
            });
            probe.on_walk(cycle, 1, running, false);
        }

        // Fetch-decode: one instruction per core per cycle.
        for core_index in 0..config.cores {
            if chip.current[core_index] == NO_SECTION {
                // Dequeuing the next ready section consumes this cycle;
                // fetch starts on the next one.
                if let Some(next) = chip.queue_pop(core_index) {
                    let resumed = stalls.resume_points()[next as usize] != usize::MAX;
                    stalls.begin_section(&mut chip, core_index, sections, next);
                    attr.begin(core_index, cycle);
                    if P::ENABLED {
                        probe.on_section_begin(core_index, next, cycle, resumed);
                    }
                }
                continue;
            }
            if chip.stall_on[core_index] != NO_STALL {
                match resolver.completion(chip.stall_on[core_index] as usize) {
                    Some(c) if c < cycle => chip.stall_on[core_index] = NO_STALL,
                    Some(_) => continue,
                    // A stall with an unknown completion parks at the end
                    // of its stall cycle; it never holds the fetch slot
                    // across cycles.
                    None => unreachable!("an in-place stall has a known completion"),
                }
            }
            let sid = chip.current[core_index] as usize;
            let span = &sections[sid];
            if chip.next_seq[core_index] as usize >= span.end {
                chip.current[core_index] = NO_SECTION;
                attr.end_nofetch(core_index, cycle);
                if P::ENABLED {
                    probe.on_section_end(core_index, sid as u32, cycle, false);
                }
                continue;
            }
            let seq = chip.next_seq[core_index] as usize;
            let kind = arena.kind(seq);
            resolver.fetch(seq, cycle);
            fetched += 1;
            chip.next_seq[core_index] += 1;

            // A fork sends a section-creation message to the host core
            // of the created section.
            if kind == TraceKind::Fork {
                if let Some(&child) = created_by.get(&seq) {
                    let dst = core_of[child.0];
                    network.send(CoreId(core_index), dst, child, cycle);
                    if P::ENABLED {
                        probe.on_noc_send(core_index, dst.0, child.0 as u32, cycle);
                    }
                }
            }

            let ends_section = kind == TraceKind::EndFork
                || kind == TraceKind::Halt
                || chip.next_seq[core_index] as usize >= span.end;
            if ends_section {
                chip.current[core_index] = NO_SECTION;
                attr.end_fetch(core_index, cycle);
                if P::ENABLED {
                    probe.on_section_end(core_index, sid as u32, cycle, true);
                }
            } else if config.fetch_stalls_on_unresolved_control
                && arena.is_control(seq)
                && !fetch_computable(arena, seq, &resolver.complete, cycle)
            {
                // The fetch stage could not compute this control
                // instruction (empty sources): the IP stays empty until
                // the instruction executes.
                chip.stall_on[core_index] = seq as u32;
                newly_stalled.push(core_index);
            }
        }

        // Dependence resolution (the engine shared with the event-driven
        // simulator; the reference never forks it).
        completions.clear();
        resolver.drain(&network, &core_of, &mut completions, None, cycle, probe);

        // A completion that a parked section stalls on is its modeled
        // release event: requeue the section on the first cycle after both
        // the completion is known and its cycle is past.
        if stalls.parked() > 0 {
            for &(seq, completion) in &completions {
                if let Some(idx) = stalls.unpark(seq) {
                    stalls.push_requeue((cycle + 1).max(completion + 1), idx, arena.section(seq));
                }
            }
        }
        // Dispatch the stalls created this cycle: a known completion
        // (possibly resolved within this very cycle's drain) stalls in
        // place — the per-cycle check above releases it once its cycle is
        // past — while an unknown one hands the core off to its queued
        // sections and parks.
        for idx in newly_stalled.drain(..) {
            if chip.stall_on[idx] == NO_STALL {
                continue;
            }
            let seq = chip.stall_on[idx] as usize;
            match resolver.completion(seq) {
                Some(c) => {
                    // Waits in place; the per-cycle check above releases
                    // it — and resumes the fetch — just past `c`.
                    attr.stall(idx, cycle, c, stall_cause(arena, seq, true));
                    if P::ENABLED {
                        probe.on_fetch_stall(
                            idx,
                            seq,
                            stall_cause(arena, seq, true),
                            cycle,
                            (cycle + 1).max(c + 1),
                        );
                    }
                }
                None => {
                    // `park` clears the core's current section, so read
                    // the section id for the probe first.
                    let sid = chip.current[idx];
                    attr.park(idx, cycle);
                    if P::ENABLED {
                        probe.on_section_park(idx, sid, seq, cycle, stall_cause(arena, seq, false));
                    }
                    stalls.park(idx, &mut chip, seq);
                }
            }
        }

        // Deadlock detector. Under the handoff model every stall has a
        // modeled release event, so a cycle can only make no progress with
        // nothing in flight, nothing queued and no requeue pending if the
        // trace is malformed. The detector escapes by abandoning the
        // parked stalls (the branches resolve out of order in the execute
        // stage) and counts the firing; the driver layer surfaces any
        // non-zero count as an error.
        if fetched + resolver.resolved == progress_before
            && stalls.parked() > 0
            && fetched < n
            && network.in_flight() == 0
            && !stalls.pending_requeues()
            && (0..config.cores)
                .all(|c| chip.current[c] == NO_SECTION && chip.queue_head[c] == NO_SECTION)
        {
            forced_stall_releases += stalls.force_release(cycle + 1, arena);
        }
    }

    let hosted: Vec<usize> = chip.sections_hosted.iter().map(|&h| h as usize).collect();
    let attribution = attr.finish(resolver.max_ret);
    sim.finish(
        arena,
        resolver,
        core_of,
        &hosted,
        network.stats(),
        forced_stall_releases,
        check,
        fork_fallback,
        attribution,
    )
}
