//! The retained cycle-stepping reference simulator.
//!
//! This is the original timing loop of [`crate::ManyCoreSim`]: the chip
//! advances one cycle at a time and every core is visited every cycle —
//! apply due stall-handoff requeues, deliver section-creation messages,
//! fetch one instruction per active core, resolve dependences, and park
//! the fetch stalls whose release cycle is still unknown.
//!
//! The fetch-stall semantics are the in-order handoff model shared with
//! the event-driven engine through [`crate::sim::StallTable`]: a stall
//! with a known completion waits in place and releases just past it; a
//! stall with an unknown completion parks its section and hands the core
//! to its queued sections, to be requeued by an explicit event when the
//! completion is discovered. A forced release can only happen through the
//! deadlock *detector* (a malformed trace); it is counted in
//! [`crate::SimStats::forced_stall_releases`] and surfaced as an error by
//! the driver layer.
//!
//! The event-driven engine in [`crate::sim`] replaces this loop on the hot
//! path, but the loop is kept (over the shared [`crate::sim::Resolver`]
//! and the same [`TraceArena`] columns) as the oracle: differential tests
//! and the `repro_perf` benchmark assert that both engines produce
//! bit-identical [`crate::SimResult`]s.

use parsecs_machine::TraceKind;
use parsecs_noc::CoreId;
use parsecs_trace::TraceArena;

use crate::sim::{fetch_computable, CoreState, ManyCoreSim, Prepared, Resolver, StallTable};
use crate::{SectionId, SimError, SimResult};

/// Simulates an arena-backed trace by stepping the chip one cycle at a
/// time (see the module docs).
pub(crate) fn simulate(sim: &ManyCoreSim, arena: &TraceArena) -> Result<SimResult, SimError> {
    let config = sim.config();
    config.validate().map_err(SimError::Config)?;
    let check = sim.precheck(arena)?;
    let sections = arena.sections();
    let n = arena.len();

    let Prepared {
        core_of,
        mut network,
        created_by,
    } = sim.prepare(arena)?;
    let mut resolver = Resolver::new(config, arena, n);
    let mut stalls = StallTable::new(sections.len());
    let mut completions: Vec<(usize, u64)> = Vec::new();
    let mut newly_stalled: Vec<usize> = Vec::new();

    let mut cores: Vec<CoreState> = (0..config.cores).map(|_| CoreState::default()).collect();
    let mut forced_stall_releases = 0u64;

    // The initial section is live from cycle 0 on its core.
    if !sections.is_empty() {
        let root_core = core_of[0].0;
        cores[root_core].current = Some(SectionId(0));
        cores[root_core].next_seq = sections[0].start;
        cores[root_core].sections_hosted = 1;
    }

    let mut fetched = 0usize;
    let mut cycle: u64 = 0;
    let safety = 200 * n as u64 + 10_000;

    while fetched < n || resolver.resolved < n {
        cycle += 1;
        if cycle >= safety {
            return Err(SimError::Diverged {
                reason: "did not converge",
                cycle,
                resolved: resolver.resolved as u64,
                instructions: n as u64,
            });
        }
        let progress_before = fetched + resolver.resolved;

        // Parked sections whose stall released rejoin their ready queue.
        while let Some((idx, sid)) = stalls.pop_due(cycle) {
            cores[idx].queue.push_back(sid);
        }

        // Section-creation messages arriving this cycle.
        for envelope in network.deliver(cycle) {
            let core = &mut cores[envelope.dst.0];
            core.queue.push_back(envelope.payload);
            core.sections_hosted += 1;
        }

        // Fetch-decode: one instruction per core per cycle.
        for (core_index, core) in cores.iter_mut().enumerate() {
            if core.current.is_none() {
                // Dequeuing the next ready section consumes this cycle;
                // fetch starts on the next one.
                if let Some(next) = core.queue.pop_front() {
                    stalls.begin_section(core, sections, next);
                }
                continue;
            }
            if let Some(stalled_on) = core.stall_on {
                match resolver.completion(stalled_on) {
                    Some(c) if c < cycle => core.stall_on = None,
                    Some(_) => continue,
                    // A stall with an unknown completion parks at the end
                    // of its stall cycle; it never holds the fetch slot
                    // across cycles.
                    None => unreachable!("an in-place stall has a known completion"),
                }
            }
            let sid = core.current.expect("checked above");
            let span = &sections[sid.0];
            if core.next_seq >= span.end {
                core.current = None;
                continue;
            }
            let seq = core.next_seq;
            let kind = arena.kind(seq);
            resolver.fetch(seq, cycle);
            fetched += 1;
            core.next_seq += 1;

            // A fork sends a section-creation message to the host core
            // of the created section.
            if kind == TraceKind::Fork {
                if let Some(&child) = created_by.get(&seq) {
                    network.send(CoreId(core_index), core_of[child.0], child, cycle);
                }
            }

            let ends_section =
                kind == TraceKind::EndFork || kind == TraceKind::Halt || core.next_seq >= span.end;
            if ends_section {
                core.current = None;
            } else if config.fetch_stalls_on_unresolved_control
                && arena.is_control(seq)
                && !fetch_computable(arena, seq, &resolver.complete, cycle)
            {
                // The fetch stage could not compute this control
                // instruction (empty sources): the IP stays empty until
                // the instruction executes.
                core.stall_on = Some(seq);
                newly_stalled.push(core_index);
            }
        }

        // Dependence resolution (the engine shared with the event-driven
        // simulator).
        completions.clear();
        resolver.drain(&network, &core_of, &mut completions);

        // A completion that a parked section stalls on is its modeled
        // release event: requeue the section on the first cycle after both
        // the completion is known and its cycle is past.
        if stalls.parked() > 0 {
            for &(seq, completion) in &completions {
                if let Some(idx) = stalls.unpark(seq) {
                    stalls.push_requeue((cycle + 1).max(completion + 1), idx, arena.section(seq));
                }
            }
        }
        // Dispatch the stalls created this cycle: a known completion
        // (possibly resolved within this very cycle's drain) stalls in
        // place — the per-cycle check above releases it once its cycle is
        // past — while an unknown one hands the core off to its queued
        // sections and parks.
        for idx in newly_stalled.drain(..) {
            let Some(seq) = cores[idx].stall_on else {
                continue;
            };
            if resolver.completion(seq).is_none() {
                stalls.park(idx, &mut cores[idx], seq);
            }
        }

        // Deadlock detector. Under the handoff model every stall has a
        // modeled release event, so a cycle can only make no progress with
        // nothing in flight, nothing queued and no requeue pending if the
        // trace is malformed. The detector escapes by abandoning the
        // parked stalls (the branches resolve out of order in the execute
        // stage) and counts the firing; the driver layer surfaces any
        // non-zero count as an error.
        if fetched + resolver.resolved == progress_before
            && stalls.parked() > 0
            && fetched < n
            && network.in_flight() == 0
            && !stalls.pending_requeues()
            && cores
                .iter()
                .all(|c| c.current.is_none() && c.queue.is_empty())
        {
            forced_stall_releases += stalls.force_release(cycle + 1, arena);
        }
    }

    let hosted: Vec<usize> = cores.iter().map(|c| c.sections_hosted).collect();
    sim.finish(
        arena,
        resolver,
        core_of,
        &hosted,
        network.stats(),
        forced_stall_releases,
        check,
    )
}
