//! The retained cycle-stepping reference simulator.
//!
//! This is the original timing loop of [`crate::ManyCoreSim`]: the chip
//! advances one cycle at a time and every core is visited every cycle —
//! deliver section-creation messages, fetch one instruction per active
//! core, resolve dependences, and apply the deadlock-avoidance heuristic
//! when a cycle makes no progress while nothing is in flight.
//!
//! The event-driven engine in [`crate::sim`] replaces this loop on the hot
//! path, but the loop is kept verbatim (over the shared
//! [`crate::sim::Resolver`]) as the oracle: differential tests and the
//! `repro_perf` benchmark assert that both engines produce bit-identical
//! [`crate::SimResult`]s.

use std::collections::VecDeque;

use parsecs_machine::TraceKind;
use parsecs_noc::CoreId;

use crate::sim::{fetch_computable, ManyCoreSim, Prepared, Resolver};
use crate::{SectionId, SectionedTrace, SimError, SimResult};

#[derive(Debug, Default)]
struct CoreState {
    queue: VecDeque<SectionId>,
    current: Option<SectionId>,
    next_seq: usize,
    stall_on: Option<usize>,
    sections_hosted: usize,
}

/// Simulates an already-sectioned trace by stepping the chip one cycle at
/// a time (see the module docs).
pub(crate) fn simulate(sim: &ManyCoreSim, trace: &SectionedTrace) -> Result<SimResult, SimError> {
    let config = sim.config();
    config.validate().map_err(SimError::Config)?;
    let records = trace.records();
    let sections = trace.sections();
    let n = records.len();

    let Prepared {
        core_of,
        mut network,
        created_by,
    } = sim.prepare(sections)?;
    let mut resolver = Resolver::new(config, records, n);
    let mut completions: Vec<(usize, u64)> = Vec::new();

    let mut cores: Vec<CoreState> = (0..config.cores).map(|_| CoreState::default()).collect();
    let mut forced_stall_releases = 0u64;

    // The initial section is live from cycle 0 on its core.
    if !sections.is_empty() {
        let root_core = core_of[0].0;
        cores[root_core].current = Some(SectionId(0));
        cores[root_core].next_seq = sections[0].start;
        cores[root_core].sections_hosted = 1;
    }

    let mut fetched = 0usize;
    let mut cycle: u64 = 0;
    let safety = 200 * n as u64 + 10_000;

    while fetched < n || resolver.resolved < n {
        cycle += 1;
        assert!(
            cycle < safety,
            "many-core simulation did not converge after {cycle} cycles"
        );
        let progress_before = fetched + resolver.resolved;

        // Section-creation messages arriving this cycle.
        for envelope in network.deliver(cycle) {
            let core = &mut cores[envelope.dst.0];
            core.queue.push_back(envelope.payload);
            core.sections_hosted += 1;
        }

        // Fetch-decode: one instruction per core per cycle.
        for (core_index, core) in cores.iter_mut().enumerate() {
            if core.current.is_none() {
                // Dequeuing the next section-creation message consumes
                // this cycle; fetch starts on the next one.
                if let Some(next) = core.queue.pop_front() {
                    core.current = Some(next);
                    core.next_seq = sections[next.0].start;
                }
                continue;
            }
            if let Some(stalled_on) = core.stall_on {
                match resolver.complete[stalled_on] {
                    Some(c) if c < cycle => core.stall_on = None,
                    _ => continue,
                }
            }
            let sid = core.current.expect("checked above");
            let span = &sections[sid.0];
            if core.next_seq >= span.end {
                core.current = None;
                continue;
            }
            let seq = core.next_seq;
            let record = &records[seq];
            resolver.fetch(seq, cycle);
            fetched += 1;
            core.next_seq += 1;

            // A fork sends a section-creation message to the host core
            // of the created section.
            if record.kind == TraceKind::Fork {
                if let Some(&child) = created_by.get(&seq) {
                    network.send(CoreId(core_index), core_of[child.0], child, cycle);
                }
            }

            let ends_section = record.kind == TraceKind::EndFork
                || record.kind == TraceKind::Halt
                || core.next_seq >= span.end;
            if ends_section {
                core.current = None;
            } else if config.fetch_stalls_on_unresolved_control
                && record.is_control
                && !fetch_computable(record, &resolver.complete, cycle)
            {
                // The fetch stage could not compute this control
                // instruction (empty sources): the IP stays empty until
                // the instruction executes.
                core.stall_on = Some(seq);
            }
        }

        // Dependence resolution (the engine shared with the event-driven
        // simulator); the completion list only matters to that engine.
        completions.clear();
        resolver.drain(&network, &core_of, &mut completions);

        // Deadlock avoidance. A fetch stall can wait on a value produced
        // by a section that is queued *behind* the stalled section on
        // the same core (the "devil in the details" case the paper
        // acknowledges). The chip is genuinely deadlocked only when a
        // whole cycle makes no progress, no message is in flight *and* no
        // stalled fetch stage has a known release cycle ahead of it — a
        // stall whose control instruction already has a completion cycle
        // releases by itself, and letting the heuristic fire early would
        // silently produce optimistic timings. Only then release the
        // stalled fetch stages: the stalled branches resolve out of order
        // in the execute stage, as a real implementation must allow.
        if fetched + resolver.resolved == progress_before && network.in_flight() == 0 && fetched < n
        {
            let release_is_pending = cores
                .iter()
                .any(|c| matches!(c.stall_on, Some(seq) if resolver.complete[seq].is_some()));
            if !release_is_pending {
                for core in &mut cores {
                    if core.stall_on.is_some() {
                        core.stall_on = None;
                        forced_stall_releases += 1;
                    }
                }
            }
        }
    }

    let hosted: Vec<usize> = cores.iter().map(|c| c.sections_hosted).collect();
    Ok(sim.finish(
        trace,
        resolver,
        core_of,
        &hosted,
        network.stats(),
        forced_stall_releases,
    ))
}
