//! The closed-form performance model of §5 of the paper.
//!
//! Section 5 analyses the `sum` running example by hand and gives closed
//! forms for an array of `5 · 2ⁿ` elements:
//!
//! * number of (sum) instructions: `45·2ⁿ + 14·(2ⁿ − 1)`;
//! * fetch time: `30 + 12·n` cycles;
//! * retirement time: `43 + 15·n` cycles.
//!
//! For 1280 elements (n = 8) this gives 15 090 instructions fetched in 126
//! cycles (≈ 120 instructions per cycle) and retired in 163 cycles (≈ 92
//! instructions per cycle) — the paper's headline claim that parallel,
//! computed fetch outperforms any speculative fetcher even at modest data
//! sizes. This module provides those formulas so the benches can print the
//! analytic rows next to the simulated ones.

/// The analytic figures for `sum` over an array of `5 · 2ⁿ` elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumModel {
    /// The doubling exponent `n`.
    pub n: u32,
    /// Array length `5 · 2ⁿ`.
    pub elements: u64,
    /// Dynamic instructions of the `sum` computation (excluding any
    /// `main`/output wrapper).
    pub instructions: u64,
    /// Cycles needed to fetch the whole run (§5: `30 + 12n`).
    pub fetch_cycles: u64,
    /// Cycles needed to retire the whole run (§5: `43 + 15n`).
    pub retire_cycles: u64,
}

impl SumModel {
    /// Fetch throughput in instructions per cycle.
    pub fn fetch_ipc(&self) -> f64 {
        self.instructions as f64 / self.fetch_cycles as f64
    }

    /// Retirement throughput in instructions per cycle.
    pub fn retire_ipc(&self) -> f64 {
        self.instructions as f64 / self.retire_cycles as f64
    }
}

/// Evaluates the §5 closed forms for a given doubling exponent `n`
/// (array of `5 · 2ⁿ` elements).
///
/// # Example
///
/// ```
/// let m = parsecs_core::analytic::sum_model(0);
/// assert_eq!(m.elements, 5);
/// assert_eq!(m.instructions, 45);
/// assert_eq!(m.fetch_cycles, 30);
/// assert_eq!(m.retire_cycles, 43);
/// ```
pub fn sum_model(n: u32) -> SumModel {
    let pow = 1u64 << n;
    SumModel {
        n,
        elements: 5 * pow,
        instructions: 45 * pow + 14 * (pow - 1),
        fetch_cycles: 30 + 12 * n as u64,
        retire_cycles: 43 + 15 * n as u64,
    }
}

/// The number of dynamic instructions of the *call* version of `sum` for an
/// array of `5 · 2ⁿ` elements (Figure 3 counts 59 for five elements).
///
/// Derivation: the call version spends 25 instructions per internal node of
/// the recursion tree (the `n > 2` path of Figure 2), 6 per `n = 2` leaf
/// and 5 per `n = 1` leaf; for 5·2ⁿ elements the tree has `2ⁿ⁺¹` leaves of
/// which `2ⁿ` sum two elements and ... the closed form below reproduces the
/// recurrence `f(5·2ⁿ) = 2·f(5·2ⁿ⁻¹) + 25` with `f(5) = 59`.
pub fn sum_call_instructions(n: u32) -> u64 {
    let pow = 1u64 << n;
    59 * pow + 25 * (pow - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_quoted_numbers() {
        // §5 quotes 45 instructions for sum(t,5) and 104 for sum(t,10).
        assert_eq!(sum_model(0).instructions, 45);
        assert_eq!(sum_model(1).instructions, 104);
        assert_eq!(sum_model(1).fetch_cycles, 42);
        // For 1280 elements: 15090 instructions, 126 fetch cycles,
        // 163 retirement cycles, ≈120 / ≈92 IPC.
        let m = sum_model(8);
        assert_eq!(m.elements, 1280);
        assert_eq!(m.instructions, 15_090);
        assert_eq!(m.fetch_cycles, 126);
        assert_eq!(m.retire_cycles, 163);
        assert!((m.fetch_ipc() - 119.76).abs() < 0.1);
        assert!((m.retire_ipc() - 92.58).abs() < 0.1);
    }

    #[test]
    fn call_version_matches_figure3() {
        assert_eq!(sum_call_instructions(0), 59);
        // Recurrence check: f(2k) = 2 f(k) + 25.
        for n in 1..6 {
            assert_eq!(
                sum_call_instructions(n),
                2 * sum_call_instructions(n - 1) + 25
            );
        }
    }

    #[test]
    fn fork_version_executes_fewer_instructions_than_call_version() {
        for n in 0..10 {
            assert!(sum_model(n).instructions < sum_call_instructions(n));
        }
    }
}
